//! # icomm — optimizing CPU-iGPU communication on embedded platforms
//!
//! A from-scratch Rust reproduction of *"A Framework for Optimizing
//! CPU-iGPU Communication on Embedded Platforms"* (DAC 2021): a decision
//! framework that, given an application and an embedded shared-memory SoC,
//! predicts which CPU-iGPU communication model — **standard copy (SC)**,
//! **unified memory (UM)** or **zero copy (ZC)** — is fastest, and by how
//! much.
//!
//! Because the paper's artifact requires NVIDIA Jetson hardware, this
//! workspace substitutes a deterministic transaction-level SoC simulator
//! calibrated to the paper's measured device characteristics. See
//! `DESIGN.md` for the substitution argument and `EXPERIMENTS.md` for the
//! paper-vs-measured comparison of every table and figure.
//!
//! ## Crate map
//!
//! | Re-export | Crate | Role |
//! |-----------|-------|------|
//! | [`soc`] | `icomm-soc` | SoC simulator substrate (caches, DRAM, CPU, GPU, devices) |
//! | [`trace`] | `icomm-trace` | memory-access patterns and tracing |
//! | [`models`] | `icomm-models` | SC / UM / ZC + the tiled zero-copy pattern |
//! | [`profile`] | `icomm-profile` | profiler emulation |
//! | [`microbench`] | `icomm-microbench` | the paper's three micro-benchmarks |
//! | [`footprint`] | `icomm-footprint` | memory-footprint models, per-board budgets, charge/release ledger |
//! | [`core`] | `icomm-core` | performance model (Eqns. 1–4) + decision flow (Fig. 2) |
//! | [`apps`] | `icomm-apps` | Shack–Hartmann, ORB and lane-detection case studies |
//! | [`persist`] | `icomm-persist` | JSON persistence for characterizations and reports |
//! | [`serve`] | `icomm-serve` | concurrent tuning service: sharded registry, worker pool, TCP front end |
//! | [`adapt`] | `icomm-adapt` | online phase-aware adaptation: drift detector + switch controller |
//! | [`chaos`] | `icomm-chaos` | deterministic fault injection across the profile→adapt→serve→persist stack |
//! | [`fleet`] | `icomm-fleet` | fleet-scale load generation, federated characterization transfer, admission-control validation |
//! | [`sched`] | `icomm-sched` | multi-tenant co-run scheduler: joint model assignment, interference-aware virtual-time engine, bandwidth budgets |
//! | [`synth`] | `icomm-synth` | auto-synthesized algebraic decision rules distilled from simulator sweeps |
//!
//! ## Quickstart
//!
//! ```no_run
//! use icomm::apps::ShwfsApp;
//! use icomm::core::Tuner;
//! use icomm::models::CommModelKind;
//! use icomm::soc::DeviceProfile;
//!
//! // Characterize the board (runs the three micro-benchmarks)...
//! let tuner = Tuner::new(DeviceProfile::jetson_agx_xavier());
//! // ...profile an application under its current model...
//! let workload = ShwfsApp::default().workload();
//! let outcome = tuner.recommend(&workload, CommModelKind::StandardCopy);
//! // ...and read the verdict.
//! println!("{}", outcome.recommendation.rationale);
//! ```

#![warn(missing_docs)]

pub use icomm_adapt as adapt;
pub use icomm_apps as apps;
pub use icomm_chaos as chaos;
pub use icomm_core as core;
pub use icomm_fleet as fleet;
pub use icomm_footprint as footprint;
pub use icomm_microbench as microbench;
pub use icomm_models as models;
pub use icomm_net as net;
pub use icomm_persist as persist;
pub use icomm_profile as profile;
pub use icomm_resilience as resilience;
pub use icomm_sched as sched;
pub use icomm_serve as serve;
pub use icomm_soc as soc;
pub use icomm_synth as synth;
pub use icomm_trace as trace;
