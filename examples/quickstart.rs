//! Quickstart: characterize a device, profile an application, and get a
//! communication-model recommendation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use icomm::core::Tuner;
use icomm::microbench::characterize_device;
use icomm::models::{CommModelKind, GpuPhase, Workload};
use icomm::soc::cache::AccessKind;
use icomm::soc::units::ByteSize;
use icomm::soc::DeviceProfile;
use icomm::trace::Pattern;

fn main() {
    // 1. Pick a board. Three Jetson-class presets ship with the library;
    //    any other SoC can be described with a custom DeviceProfile.
    let device = DeviceProfile::jetson_agx_xavier();
    println!(
        "characterizing {} (runs the three micro-benchmarks)...",
        device.name
    );
    let characterization = characterize_device(&device);
    println!(
        "  peak GPU cache throughput : {:>8.2} GB/s",
        characterization.gpu_cache_max_throughput / 1e9
    );
    println!(
        "  zero-copy path throughput : {:>8.2} GB/s",
        characterization.gpu_zc_throughput / 1e9
    );
    println!(
        "  GPU cache threshold       : {:>7.1} %",
        characterization.gpu_cache_threshold_pct
    );
    println!(
        "  CPU cache threshold       : {:>7.1} %",
        characterization.cpu_cache_threshold_pct
    );
    println!(
        "  max SC->ZC speedup        : {:>7.2} x",
        characterization.sc_zc_max_speedup
    );
    println!(
        "  max ZC->SC speedup        : {:>7.2} x",
        characterization.zc_sc_max_speedup
    );

    // 2. Describe the application: here, a camera-style streaming kernel
    //    (1 MiB in, compute-dominated, no cache reuse).
    let bytes = 1u64 << 20;
    let workload = Workload::builder("camera-stream")
        .bytes_to_gpu(ByteSize(bytes))
        .gpu(GpuPhase {
            compute_work: 1 << 26,
            shared_accesses: Pattern::Linear {
                start: 0,
                bytes,
                txn_bytes: 64,
                kind: AccessKind::Read,
            },
            private_accesses: None,
        })
        .overlappable(true)
        .iterations(4)
        .build();

    // 3. Ask the framework whether the current standard-copy
    //    implementation should switch.
    let tuner = Tuner::with_characterization(device, characterization);
    let outcome = tuner.recommend(&workload, CommModelKind::StandardCopy);
    let rec = &outcome.recommendation;
    println!(
        "\nprofile: CPU usage {:.1}%, GPU usage {:.1}% ({})",
        rec.cpu_usage_pct, rec.gpu_usage_pct, rec.zone
    );
    println!("verdict: use {}", rec.recommended);
    if let Some(est) = rec.estimated_speedup {
        println!(
            "estimated speedup: {:+.0}% (device bound {:.2}x)",
            est.as_percent(),
            est.max_bound
        );
    }
    println!("rationale: {}", rec.rationale);

    // 4. Validate against ground truth: run every model on the simulator.
    println!("\nground truth:");
    for run in tuner.evaluate_all(&workload) {
        println!(
            "  {:>2}: {:>9.2} us/frame (kernel {:>8.2} us, copies {:>8.2} us)",
            run.model.abbrev(),
            run.time_per_iteration().as_micros_f64(),
            run.kernel_time_per_iteration().as_micros_f64(),
            run.copy_time_per_iteration().as_micros_f64(),
        );
    }
}
