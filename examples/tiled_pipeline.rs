//! The zero-copy communication pattern (Fig. 4): tiled, phase-alternating
//! producer/consumer access with race-freedom by construction.
//!
//! ```sh
//! cargo run --release --example tiled_pipeline
//! ```

use icomm::models::overlap::{overlapped_wall, OverlapInputs};
use icomm::models::tiling::{PhaseSchedule, TileOwner, TiledBuffer, TilingConfig};
use icomm::soc::units::Picos;
use icomm::soc::DeviceProfile;

fn main() {
    let device = DeviceProfile::jetson_agx_xavier();
    let config = TilingConfig::for_device(&device);
    let buffer = TiledBuffer::new(64 * 1024, config.tile_bytes);
    let schedule = PhaseSchedule::new(buffer, config.phases);
    println!(
        "buffer: 64 KiB in {} tiles of {} B; {} phases per iteration",
        buffer.tile_count(),
        config.tile_bytes,
        schedule.phases()
    );

    // Show the alternating ownership for the first few tiles.
    println!("\nownership (first 8 tiles):");
    for phase in 0..2 {
        let owners: Vec<&str> = (0..8)
            .map(|t| match schedule.owner(phase, t) {
                TileOwner::Cpu => "CPU",
                TileOwner::Gpu => "GPU",
            })
            .collect();
        println!("  phase {phase}: {}", owners.join(" "));
    }

    // Verify the pattern's two safety properties over many phases.
    for phase in 0..16 {
        assert!(
            schedule.is_race_free(phase),
            "race detected in phase {phase}"
        );
        assert!(
            schedule.covers_all_tiles(phase),
            "coverage hole starting at phase {phase}"
        );
    }
    println!("\nverified: no tile is touched by both agents in any phase,");
    println!("and every tile is visited by both agents across each phase pair.");

    // What the overlap buys: a balanced iteration with the device's
    // barrier cost.
    let out = overlapped_wall(OverlapInputs {
        cpu_time: Picos::from_micros(120),
        gpu_time: Picos::from_micros(110),
        cpu_dram_occupancy: Picos::from_micros(15),
        gpu_dram_occupancy: Picos::from_micros(20),
        phases: config.phases,
        barrier_cost: config.barrier_cost,
    });
    println!(
        "\nbalanced 120/110 us iteration: serial 230 us -> pipelined {:.0} us (saved {:.0} us, {} barriers)",
        out.wall.as_micros_f64(),
        out.saved.as_micros_f64(),
        config.phases
    );
    if out.contention_bound {
        println!("note: wall time was set by DRAM contention, not by the slower agent");
    }
}
