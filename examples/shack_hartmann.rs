//! The Shack–Hartmann adaptive-optics case study, end to end: extract
//! real centroids from a synthetic sensor frame, then tune the
//! communication model on all three Jetson-class boards (the paper's
//! Tables II and III).
//!
//! ```sh
//! cargo run --release --example shack_hartmann
//! ```

use icomm::apps::shwfs::{compute_slopes, extract_centroids, generate_frame, rms_error, ShwfsApp};
use icomm::core::Tuner;
use icomm::microbench::characterize_device;
use icomm::models::{run_model, CommModelKind};
use icomm::soc::hierarchy::MemSpace;
use icomm::soc::DeviceProfile;
use icomm::trace::NullTracer;

fn main() {
    // --- The real algorithm: numbers first. ---
    let app = ShwfsApp::default();
    let (frame, truth) = generate_frame(&app.sensor);
    let centroids = extract_centroids(
        &frame,
        &app.sensor,
        app.threshold,
        &mut NullTracer,
        MemSpace::Cached,
    );
    let slopes = compute_slopes(&centroids, &app.sensor, &mut NullTracer, MemSpace::Cached);
    let mean_sx: f64 = slopes.iter().map(|s| s.sx).sum::<f64>() / slopes.len() as f64;
    let mean_sy: f64 = slopes.iter().map(|s| s.sy).sum::<f64>() / slopes.len() as f64;
    println!(
        "frame {}x{} px, {} subapertures",
        frame.width(),
        frame.height(),
        centroids.len()
    );
    println!(
        "rms centroid error vs ground truth: {:.3} px",
        rms_error(&centroids, &truth)
    );
    println!(
        "recovered mean tilt: ({mean_sx:+.2}, {mean_sy:+.2}) px (injected ({:+.2}, {:+.2}))",
        app.sensor.tilt.0, app.sensor.tilt.1
    );

    // --- Tuning on each board (Tables II / III). ---
    let workload = app.workload();
    for device in DeviceProfile::all_boards() {
        println!("\n=== {} ===", device.name);
        let characterization = characterize_device(&device);
        let tuner = Tuner::with_characterization(device.clone(), characterization);
        let outcome = tuner.recommend(&workload, CommModelKind::StandardCopy);
        let rec = &outcome.recommendation;
        println!(
            "profile: CPU usage {:.1}% (thr {:.1}%), GPU usage {:.1}% (thr {:.1}%)",
            rec.cpu_usage_pct, rec.cpu_threshold_pct, rec.gpu_usage_pct, rec.gpu_threshold_pct
        );
        println!("verdict: use {}", rec.recommended);
        let sc = run_model(CommModelKind::StandardCopy, &device, &workload);
        for kind in [CommModelKind::UnifiedMemory, CommModelKind::ZeroCopy] {
            let run = run_model(kind, &device, &workload);
            println!(
                "  {}: {:>8.2} us/frame (kernel {:>7.2} us, CPU {:>7.2} us) -> {:+.0}% vs SC",
                kind.abbrev(),
                run.time_per_iteration().as_micros_f64(),
                run.kernel_time_per_iteration().as_micros_f64(),
                run.cpu_time_per_iteration().as_micros_f64(),
                run.speedup_vs_percent(&sc),
            );
        }
        println!(
            "  SC: {:>8.2} us/frame (kernel {:>7.2} us, CPU {:>7.2} us)",
            sc.time_per_iteration().as_micros_f64(),
            sc.kernel_time_per_iteration().as_micros_f64(),
            sc.cpu_time_per_iteration().as_micros_f64(),
        );
        // Energy comparison (the paper's 0.12 J/s on Xavier).
        let zc = run_model(CommModelKind::ZeroCopy, &device, &workload);
        let saved = sc.power_watts() - zc.power_watts();
        println!(
            "  energy: SC {:.2} W vs ZC {:.2} W ({saved:+.2} J/s)",
            sc.power_watts(),
            zc.power_watts()
        );
    }
}
