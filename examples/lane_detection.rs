//! The ADAS lane-detection pipeline (the paper's motivating application
//! class): detect real lanes on a synthetic road, then compare all four
//! communication models — the paper's three plus this library's
//! double-buffered SC extension — across the built-in boards.
//!
//! ```sh
//! cargo run --release --example lane_detection -p icomm
//! ```

use icomm::apps::lane::{
    extract_lanes, generate_road, hough_vote, sobel_edges, LaneApp, LaneDetectorConfig,
};
use icomm::models::{run_model, CommModelKind};
use icomm::soc::hierarchy::MemSpace;
use icomm::soc::DeviceProfile;
use icomm::trace::NullTracer;

fn main() {
    // --- The real algorithm: numbers first. ---
    let app = LaneApp::default();
    let (road, (true_left, true_right)) = generate_road(&app.road);
    let det = LaneDetectorConfig::default();
    let edges = sobel_edges(&road, &det, &mut NullTracer, MemSpace::Cached);
    let lines = hough_vote(
        &edges,
        road.width(),
        road.height(),
        &det,
        &mut NullTracer,
        MemSpace::Cached,
    );
    let lanes =
        extract_lanes(&lines, road.width(), road.height()).expect("road scene has two lanes");
    println!(
        "road {}x{}: {} edge pixels, {} candidate lines",
        road.width(),
        road.height(),
        edges.iter().filter(|&&e| e).count(),
        lines.len()
    );
    println!(
        "detected lanes at bottom row: left {:.1} px (truth {true_left:.1}), right {:.1} px (truth {true_right:.1})",
        lanes.left_x, lanes.right_x
    );

    // --- Communication-model comparison (incl. the SC+ extension). ---
    let workload = app.workload();
    for device in [
        DeviceProfile::jetson_nano(),
        DeviceProfile::jetson_tx2(),
        DeviceProfile::jetson_agx_xavier(),
        DeviceProfile::orin_like(),
    ] {
        println!("\n=== {} ===", device.name);
        let sc = run_model(CommModelKind::StandardCopy, &device, &workload);
        for kind in CommModelKind::EXTENDED {
            let run = run_model(kind, &device, &workload);
            let delta = if kind == CommModelKind::StandardCopy {
                "      -".to_string()
            } else {
                format!("{:+6.0}%", run.speedup_vs_percent(&sc))
            };
            println!(
                "  {:>3}: {:>9.2} us/frame (kernel {:>8.2} us, copies {:>7.2} us, overlap saved {:>7.2} us) {delta} vs SC",
                kind.abbrev(),
                run.time_per_iteration().as_micros_f64(),
                run.kernel_time_per_iteration().as_micros_f64(),
                run.copy_time_per_iteration().as_micros_f64(),
                (run.overlap_saved / run.iterations as u64).as_micros_f64(),
            );
        }
    }
    println!(
        "\nNote: SC+ (double-buffered standard copy) recovers the overlap but keeps\n\
         paying the copy traffic — zero copy still wins on I/O-coherent devices,\n\
         and SC+ is the best option on devices whose pinned path is too slow."
    );
}
