//! Multi-tenant co-scheduling: two paper applications sharing one TX2.
//!
//! The paper tunes one application per board; a deployed board hosts
//! several. This example co-schedules SH-WFS and lane detection (the
//! `duo` mix) on a Jetson TX2, compares each tenant's jointly assigned
//! communication model against its solo best, and reports the measured
//! co-run slowdown. It then escalates to the `contended` mix, where
//! co-location actually *flips* a model choice and the deadline policy's
//! bandwidth budget rescues the misses the FIFO baseline takes.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use icomm::microbench::quick_characterize_device;
use icomm::sched::{run_sched_with, PolicyKind, SchedConfig};
use icomm::soc::DeviceProfile;

fn main() {
    let device = DeviceProfile::jetson_tx2();
    println!("characterizing {}...", device.name);
    let characterization = quick_characterize_device(&device);

    // 1. The friendly mix: SH-WFS beside lane detection, two slots,
    //    generous deadlines. Joint assignment agrees with solo tuning
    //    here — co-location costs bandwidth but changes no decision.
    let mut config = SchedConfig::new(device.clone());
    config.mix = "duo".to_string();
    let out = run_sched_with(&config, &characterization).expect("duo mix schedules");
    println!("\n== duo mix ({} policy) ==", out.report.policy);
    println!("tenant        solo-best  joint  co-run slowdown");
    for (verdict, tenant) in out.assignment.tenants.iter().zip(&out.report.tenants) {
        println!(
            "{:<12}  {:>9}  {:>5}  {:>6.3}x measured ({:.3}x predicted){}",
            verdict.name,
            verdict.solo_best.abbrev(),
            verdict.joint.abbrev(),
            tenant.mean_slowdown,
            verdict.slowdown,
            if verdict.flipped { "  [flipped]" } else { "" },
        );
    }
    println!(
        "deadlines: {} missed / {} jobs",
        out.report.missed_jobs(),
        out.report.total_jobs()
    );

    // 2. The contended mix: a deadline-tight lane pipeline beside an
    //    ORB relocalization burst. Scheduled jointly, the lane tenant
    //    flips to zero-copy — staying off the caches the burst is
    //    thrashing beats the solo-optimal choice.
    println!("\n== contended mix, FIFO baseline vs deadline+budget ==");
    for policy in [PolicyKind::Fifo, PolicyKind::DeadlineBudget] {
        let mut config = SchedConfig::new(device.clone());
        config.policy = policy;
        let out = run_sched_with(&config, &characterization).expect("contended mix schedules");
        println!(
            "{:<9}  {} missed / {} jobs ({:.1}%)  mean slowdown {:.3}x  joint {} us vs greedy {} us{}",
            policy.name(),
            out.report.missed_jobs(),
            out.report.total_jobs(),
            out.report.deadline_miss_pct,
            out.report.mean_slowdown,
            out.report.joint_total_us,
            out.report.greedy_total_us,
            if out.report.any_flip {
                "  [assignment flipped]"
            } else {
                ""
            },
        );
    }
}
