//! Online adaptation over a three-phase pipeline: the lane-detection app
//! cruising on a highway (zero copy wins), hitting a dense intersection
//! where the Hough stage re-scans the edge map 16× (standard copy wins),
//! then cruising again.
//!
//! The adaptive controller only sees streaming per-window counters: it
//! has to *detect* each regime change, decide under the paper's Fig. 2
//! flow, and switch models mid-run — without oscillating. The summary
//! compares it against every static model and the clairvoyant per-phase
//! oracle.
//!
//! ```sh
//! cargo run --release --example adaptive_pipeline
//! ```

use icomm::adapt::{evaluate, ControllerConfig};
use icomm::apps::LaneApp;
use icomm::microbench::quick_characterize_device;
use icomm::soc::DeviceProfile;

fn main() {
    let device = DeviceProfile::jetson_agx_xavier();
    let phased = LaneApp::default().phased_workload(12);
    println!("workload: {}", phased.name);
    for phase in &phased.phases {
        println!(
            "  phase '{}': {} windows of {}",
            phase.name, phase.windows, phase.workload.name
        );
    }
    println!("\ncharacterizing {} (quick sweep)...", device.name);
    let characterization = quick_characterize_device(&device);

    let config = ControllerConfig {
        payload_hint: phased.phases[0].workload.bytes_exchanged(),
        ..ControllerConfig::default()
    };
    println!(
        "controller: warmup {} w, probe {} w, dwell {} w, hysteresis ±{}pp (override after {}), payback {} w\n",
        config.warmup_windows,
        config.probe_windows,
        config.min_dwell_windows,
        config.hysteresis_pct,
        config.hysteresis_confirm,
        config.payback_windows,
    );

    let report = evaluate(&device, &characterization, &phased, config);
    println!("{report}");
    println!("\n--- controller counters ---");
    println!("{}", report.stats);

    let saved_vs_best_static = (report.best_static().total_time.as_secs_f64()
        - report.adaptive.total_time.as_secs_f64())
        * 1e3;
    println!(
        "\nadapting saved {saved_vs_best_static:.3} ms over the best static model \
         ({}) and paid {:.2}% regret for not being clairvoyant.",
        report.best_static().policy,
        report.regret_pct,
    );
}
