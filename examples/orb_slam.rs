//! The ORB front-end case study: detect and describe real features on a
//! synthetic scene, then tune the communication model on the TX2 and the
//! AGX Xavier (the paper's Tables IV and V).
//!
//! ```sh
//! cargo run --release --example orb_slam
//! ```

use icomm::apps::orb::{describe, detect, generate_scene, has_full_patch, test_pattern, OrbApp};
use icomm::core::Tuner;
use icomm::microbench::characterize_device;
use icomm::models::{run_model, CommModelKind};
use icomm::soc::hierarchy::MemSpace;
use icomm::soc::DeviceProfile;
use icomm::trace::NullTracer;

fn main() {
    // --- The real algorithm: numbers first. ---
    let app = OrbApp::default();
    let (scene, rect_corners) = generate_scene(&app.scene);
    let keypoints = detect(
        &scene,
        app.fast_threshold,
        &mut NullTracer,
        MemSpace::Cached,
    );
    let pattern = test_pattern(7);
    let described: Vec<_> = keypoints
        .iter()
        .filter(|kp| has_full_patch(&scene, kp))
        .map(|kp| describe(&scene, kp, &pattern))
        .collect();
    println!(
        "scene {}x{}: {} FAST-9 corners, {} described ({} ground-truth rectangle corners)",
        scene.width(),
        scene.height(),
        keypoints.len(),
        described.len(),
        rect_corners.len()
    );
    if described.len() >= 2 {
        let d = described[0].descriptor.distance(&described[1].descriptor);
        println!(
            "first two descriptors: hamming distance {d}/256, angles {:+.2} / {:+.2} rad",
            described[0].angle, described[1].angle
        );
    }

    // --- Tuning on TX2 and Xavier (Tables IV / V). ---
    let workload = app.workload();
    for device in [
        DeviceProfile::jetson_tx2(),
        DeviceProfile::jetson_agx_xavier(),
    ] {
        println!("\n=== {} ===", device.name);
        let characterization = characterize_device(&device);
        let tuner = Tuner::with_characterization(device.clone(), characterization);
        // ORB ships with zero copy; should it stay that way?
        let outcome = tuner.recommend(&workload, CommModelKind::ZeroCopy);
        let rec = &outcome.recommendation;
        println!(
            "profile: GPU usage {:.1}% (thr {:.1}%) -> {}",
            rec.gpu_usage_pct, rec.gpu_threshold_pct, rec.zone
        );
        println!("verdict: use {}", rec.recommended);
        let sc = run_model(CommModelKind::StandardCopy, &device, &workload);
        let zc = run_model(CommModelKind::ZeroCopy, &device, &workload);
        println!(
            "  SC: {:>9.2} ms/frame (kernel {:>8.2} us)",
            sc.time_per_iteration().as_millis_f64(),
            sc.kernel_time_per_iteration().as_micros_f64(),
        );
        println!(
            "  ZC: {:>9.2} ms/frame (kernel {:>8.2} us) -> {:+.0}% vs SC",
            zc.time_per_iteration().as_millis_f64(),
            zc.kernel_time_per_iteration().as_micros_f64(),
            zc.speedup_vs_percent(&sc),
        );
    }
}
