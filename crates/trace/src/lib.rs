//! # icomm-trace — memory-access streams for the icomm simulator
//!
//! Two complementary ways of describing memory traffic:
//!
//! - [`pattern::Pattern`]: compact symbolic generators (linear, strided,
//!   sparse-uniform, single-address, read-modify-write, composition) that
//!   expand lazily into [`icomm_soc::request::MemRequest`] streams. The
//!   micro-benchmarks and workload descriptors are built from these.
//! - [`tracer::Tracer`]: instrumentation hooks so the *real* application
//!   implementations in `icomm-apps` can emit the accesses they actually
//!   perform, to be replayed against the simulator.
//!
//! On top of patterns, [`phased::PhaseSchedule`] sequences several of them
//! into a *phased* run — the substrate of the online-adaptation layer
//! (`icomm-adapt`), which watches an application drift between phases and
//! re-tunes its communication model mid-run.
//!
//! # Example
//!
//! ```
//! use icomm_soc::cache::AccessKind;
//! use icomm_soc::hierarchy::MemSpace;
//! use icomm_trace::pattern::Pattern;
//!
//! // Four passes over a 1 MiB array in 64 B transactions.
//! let sweep = Pattern::Repeat {
//!     body: Box::new(Pattern::Linear {
//!         start: 0,
//!         bytes: 1 << 20,
//!         txn_bytes: 64,
//!         kind: AccessKind::Read,
//!     }),
//!     times: 4,
//! };
//! assert_eq!(sweep.len(), 4 * (1 << 20) / 64);
//! let mut requests = sweep.requests(MemSpace::Cached);
//! assert!(matches!(requests.next(), Some(first) if first.addr == 0));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod pattern;
pub mod phased;
pub mod tracer;

pub use pattern::{Pattern, PatternIter};
pub use phased::{PhaseSchedule, PhaseSpec};
pub use tracer::{CountingTracer, NullTracer, RecordingTracer, Tracer};
