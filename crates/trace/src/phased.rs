//! Phased access schedules: the trace-level substrate of phased workloads.
//!
//! Real embedded pipelines are not stationary — an ADAS stack alternates
//! between frame ingest (streaming, cache-light), feature matching
//! (reuse-heavy) and planning (balanced) as the scene changes. A
//! [`PhaseSchedule`] describes such a run as a sequence of named phases,
//! each pairing a symbolic [`Pattern`] with a number of *windows* (profiler
//! reporting intervals) the phase occupies.
//!
//! The schedule is purely symbolic: like [`Pattern`], it costs nothing to
//! describe and is serializable, so phased workloads can be shipped to the
//! tuning service. The execution layer (`icomm-models`) turns each phase
//! into a full workload; the adaptation runtime (`icomm-adapt`) uses
//! [`PhaseSchedule::boundaries`] as ground truth for detection-latency
//! accounting.

use serde::{Deserialize, Serialize};

use crate::pattern::Pattern;

/// One phase of a schedule: a named access pattern held for a number of
/// profiling windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Human-readable phase name (`"ingest"`, `"match"`, ...).
    pub name: String,
    /// Windows this phase lasts. Zero-window phases are legal in the data
    /// model but never become active; [`PhaseSchedule::validate`] rejects
    /// them so they cannot silently vanish from a run.
    pub windows: u32,
    /// The shared-buffer access pattern active during the phase.
    pub pattern: Pattern,
}

impl PhaseSpec {
    /// Creates a phase spec.
    pub fn new(name: impl Into<String>, windows: u32, pattern: Pattern) -> Self {
        PhaseSpec {
            name: name.into(),
            windows,
            pattern,
        }
    }
}

/// A sequence of phases, indexable by window.
///
/// # Examples
///
/// ```
/// use icomm_soc::cache::AccessKind;
/// use icomm_trace::phased::{PhaseSchedule, PhaseSpec};
/// use icomm_trace::Pattern;
///
/// let stream = Pattern::Linear {
///     start: 0,
///     bytes: 1 << 20,
///     txn_bytes: 64,
///     kind: AccessKind::Read,
/// };
/// let hot = Pattern::Repeat {
///     body: Box::new(stream.clone()),
///     times: 8,
/// };
/// let schedule = PhaseSchedule::new(vec![
///     PhaseSpec::new("ingest", 4, stream.clone()),
///     PhaseSpec::new("match", 6, hot),
///     PhaseSpec::new("drain", 2, stream),
/// ]);
/// assert_eq!(schedule.total_windows(), 12);
/// assert_eq!(schedule.phase_index_at(0), Some(0));
/// assert_eq!(schedule.phase_index_at(4), Some(1));
/// assert_eq!(schedule.phase_index_at(11), Some(2));
/// assert_eq!(schedule.phase_index_at(12), None);
/// assert_eq!(schedule.boundaries(), vec![4, 10]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSchedule {
    phases: Vec<PhaseSpec>,
}

impl PhaseSchedule {
    /// Creates a schedule from phases, in execution order.
    pub fn new(phases: Vec<PhaseSpec>) -> Self {
        PhaseSchedule { phases }
    }

    /// The phases, in execution order.
    pub fn phases(&self) -> &[PhaseSpec] {
        &self.phases
    }

    /// Number of phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Whether the schedule has no phases.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Total windows across all phases.
    pub fn total_windows(&self) -> u64 {
        self.phases.iter().map(|p| p.windows as u64).sum()
    }

    /// Index of the phase active at `window`, or `None` past the end.
    pub fn phase_index_at(&self, window: u64) -> Option<usize> {
        let mut consumed = 0u64;
        for (index, phase) in self.phases.iter().enumerate() {
            consumed += phase.windows as u64;
            if window < consumed {
                return Some(index);
            }
        }
        None
    }

    /// The phase active at `window`, or `None` past the end.
    pub fn phase_at(&self, window: u64) -> Option<&PhaseSpec> {
        self.phase_index_at(window).and_then(|i| self.phases.get(i))
    }

    /// Window indices where a new phase begins (excluding window 0): the
    /// ground-truth change points detection latency is measured against.
    pub fn boundaries(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut consumed = 0u64;
        for phase in &self.phases {
            consumed += phase.windows as u64;
            out.push(consumed);
        }
        out.pop(); // the final end-of-run is not a change point
        out
    }

    /// Checks the schedule is runnable: at least one phase, every phase at
    /// least one window, and every phase with a well-formed, non-empty
    /// pattern.
    ///
    /// Schedules are serializable and shipped across trust boundaries (the
    /// tuning service accepts them over TCP), so this is the choke point
    /// where a malformed descriptor must turn into an error message, never
    /// a panic.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.phases.is_empty() {
            return Err("a phase schedule needs at least one phase".into());
        }
        for (index, phase) in self.phases.iter().enumerate() {
            if phase.windows == 0 {
                return Err(format!(
                    "phase {index} ('{}') lasts zero windows and would never run",
                    phase.name
                ));
            }
            phase
                .pattern
                .validate()
                .map_err(|e| format!("phase {index} ('{}'): {e}", phase.name))?;
            if phase.pattern.is_empty() {
                return Err(format!(
                    "phase {index} ('{}') has an empty access pattern",
                    phase.name
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icomm_soc::cache::AccessKind;

    fn linear(bytes: u64) -> Pattern {
        Pattern::Linear {
            start: 0,
            bytes,
            txn_bytes: 64,
            kind: AccessKind::Read,
        }
    }

    fn schedule() -> PhaseSchedule {
        PhaseSchedule::new(vec![
            PhaseSpec::new("a", 3, linear(256)),
            PhaseSpec::new("b", 5, linear(512)),
            PhaseSpec::new("c", 2, linear(128)),
        ])
    }

    #[test]
    fn window_lookup_covers_every_phase() {
        let s = schedule();
        assert_eq!(s.total_windows(), 10);
        let indices: Vec<_> = (0..10)
            .map(|w| s.phase_index_at(w).expect("window inside the schedule"))
            .collect();
        assert_eq!(indices, vec![0, 0, 0, 1, 1, 1, 1, 1, 2, 2]);
        assert!(s.phase_at(10).is_none());
    }

    #[test]
    fn boundaries_are_change_points_only() {
        assert_eq!(schedule().boundaries(), vec![3, 8]);
        let single = PhaseSchedule::new(vec![PhaseSpec::new("only", 4, linear(64))]);
        assert!(single.boundaries().is_empty());
    }

    #[test]
    fn validate_rejects_degenerate_schedules() {
        assert!(PhaseSchedule::new(vec![]).validate().is_err());
        let zero_windows = PhaseSchedule::new(vec![PhaseSpec::new("z", 0, linear(64))]);
        assert!(zero_windows
            .validate()
            .expect_err("zero-window phase rejected")
            .contains("zero windows"));
        let empty_pattern =
            PhaseSchedule::new(vec![PhaseSpec::new("e", 2, Pattern::Sequence(Vec::new()))]);
        assert!(empty_pattern
            .validate()
            .expect_err("empty pattern rejected")
            .contains("empty"));
        assert!(schedule().validate().is_ok());
    }

    #[test]
    fn empty_schedule_has_no_windows() {
        let s = PhaseSchedule::new(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.total_windows(), 0);
        assert!(s.phase_index_at(0).is_none());
    }
}
