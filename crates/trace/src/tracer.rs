//! Instrumentation hooks for real algorithm implementations.
//!
//! The applications in `icomm-apps` are real Rust implementations (they
//! compute actual centroids and ORB descriptors). To drive the simulator
//! with *their* memory behaviour rather than a hand-written approximation,
//! the algorithms are parameterized over a [`Tracer`]: production callers
//! pass [`NullTracer`] (zero overhead), while workload extraction passes a
//! [`RecordingTracer`] or [`CountingTracer`].

use icomm_soc::cache::AccessKind;
use icomm_soc::hierarchy::MemSpace;
use icomm_soc::request::MemRequest;

/// Receives the memory requests an instrumented algorithm performs.
pub trait Tracer {
    /// Records one request.
    fn record(&mut self, request: MemRequest);

    /// Convenience: records a read of `bytes` at `addr`.
    fn read(&mut self, addr: u64, bytes: u32, space: MemSpace) {
        self.record(MemRequest {
            addr,
            bytes,
            kind: AccessKind::Read,
            space,
        });
    }

    /// Convenience: records a write of `bytes` at `addr`.
    fn write(&mut self, addr: u64, bytes: u32, space: MemSpace) {
        self.record(MemRequest {
            addr,
            bytes,
            kind: AccessKind::Write,
            space,
        });
    }
}

/// Discards every request; the zero-cost tracer for production use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn record(&mut self, _request: MemRequest) {}
}

/// Stores requests up to a configurable cap (to bound memory for huge
/// workloads), counting overflow separately.
#[derive(Debug, Clone, Default)]
pub struct RecordingTracer {
    requests: Vec<MemRequest>,
    cap: Option<usize>,
    dropped: u64,
}

impl RecordingTracer {
    /// Creates an unbounded recorder.
    pub fn new() -> Self {
        RecordingTracer::default()
    }

    /// Creates a recorder that keeps at most `cap` requests.
    pub fn with_cap(cap: usize) -> Self {
        RecordingTracer {
            requests: Vec::new(),
            cap: Some(cap),
            dropped: 0,
        }
    }

    /// The recorded requests.
    pub fn requests(&self) -> &[MemRequest] {
        &self.requests
    }

    /// Consumes the recorder, returning the recorded requests.
    pub fn into_requests(self) -> Vec<MemRequest> {
        self.requests
    }

    /// Requests dropped because the cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Tracer for RecordingTracer {
    fn record(&mut self, request: MemRequest) {
        if let Some(cap) = self.cap {
            if self.requests.len() >= cap {
                self.dropped += 1;
                return;
            }
        }
        self.requests.push(request);
    }
}

/// Counts traffic without storing it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingTracer {
    /// Read transactions observed.
    pub reads: u64,
    /// Write transactions observed.
    pub writes: u64,
    /// Total bytes requested.
    pub bytes: u64,
}

impl CountingTracer {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        CountingTracer::default()
    }

    /// Total transactions observed.
    pub fn transactions(&self) -> u64 {
        self.reads + self.writes
    }
}

impl Tracer for CountingTracer {
    fn record(&mut self, request: MemRequest) {
        match request.kind {
            AccessKind::Read => self.reads += 1,
            AccessKind::Write => self.writes += 1,
        }
        self.bytes += request.bytes as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_tracer_is_silent() {
        let mut t = NullTracer;
        t.read(0, 64, MemSpace::Cached);
        t.write(0, 64, MemSpace::Cached);
        // Nothing observable; this test exists to exercise the default
        // methods.
    }

    #[test]
    fn recording_tracer_stores_in_order() {
        let mut t = RecordingTracer::new();
        t.read(0x10, 4, MemSpace::Cached);
        t.write(0x20, 8, MemSpace::Pinned);
        assert_eq!(t.requests().len(), 2);
        assert_eq!(t.requests()[0].kind, AccessKind::Read);
        assert_eq!(t.requests()[1].addr, 0x20);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn recording_tracer_respects_cap() {
        let mut t = RecordingTracer::with_cap(2);
        for i in 0..5 {
            t.read(i, 4, MemSpace::Cached);
        }
        assert_eq!(t.requests().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn counting_tracer_tallies() {
        let mut t = CountingTracer::new();
        t.read(0, 64, MemSpace::Cached);
        t.read(64, 64, MemSpace::Cached);
        t.write(0, 32, MemSpace::Cached);
        assert_eq!(t.reads, 2);
        assert_eq!(t.writes, 1);
        assert_eq!(t.bytes, 160);
        assert_eq!(t.transactions(), 3);
    }
}
