//! Symbolic memory-access patterns.
//!
//! A [`Pattern`] is a compact, serializable description of a memory-request
//! stream. Workload descriptors carry patterns instead of materialized
//! request vectors so that multi-hundred-megabyte footprints (the paper's
//! third micro-benchmark streams 2²⁷ floats) cost nothing to describe; the
//! requests are generated lazily while the simulator consumes them.
//!
//! The communication model decides *at run time* whether a pattern's
//! requests target cacheable partitions (standard copy / unified memory) or
//! the pinned zero-copy allocation, which is why [`Pattern::requests`]
//! takes the [`MemSpace`] as a parameter.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use icomm_soc::cache::AccessKind;
use icomm_soc::hierarchy::MemSpace;
use icomm_soc::request::MemRequest;

/// A symbolic description of a memory-request stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Pattern {
    /// Sequential coalesced transactions covering `[start, start + bytes)`.
    Linear {
        /// First byte address.
        start: u64,
        /// Footprint in bytes.
        bytes: u64,
        /// Transaction size (a coalesced warp access, typically 32–128 B).
        txn_bytes: u32,
        /// Read or write.
        kind: AccessKind,
    },
    /// Sequential read-modify-write sweeps: for each transaction-sized
    /// element, a read immediately followed by a write (the `ld.global` /
    /// `fma` / `st.global` loop of the paper's second micro-benchmark).
    LinearRmw {
        /// First byte address.
        start: u64,
        /// Footprint in bytes.
        bytes: u64,
        /// Transaction size.
        txn_bytes: u32,
    },
    /// Fixed-stride transactions.
    Strided {
        /// First byte address.
        start: u64,
        /// Number of transactions.
        count: u64,
        /// Stride between consecutive transaction addresses, in bytes.
        stride: u64,
        /// Transaction size.
        txn_bytes: u32,
        /// Read or write.
        kind: AccessKind,
    },
    /// Repeated accesses to one address (a register-resident hot loop that
    /// touches memory only through a single location, as in the CPU routine
    /// of the first micro-benchmark).
    SingleAddress {
        /// The address.
        addr: u64,
        /// Number of accesses.
        count: u64,
        /// Access size.
        txn_bytes: u32,
        /// Read or write.
        kind: AccessKind,
    },
    /// Uniformly random transaction addresses over a region, guaranteeing a
    /// maximal miss rate when the region exceeds the cache (the paper's
    /// third micro-benchmark uses "sufficiently sparse" accesses).
    SparseUniform {
        /// Region base address.
        start: u64,
        /// Region size in bytes.
        region_bytes: u64,
        /// Number of transactions.
        count: u64,
        /// Transaction size.
        txn_bytes: u32,
        /// RNG seed (patterns are deterministic given the seed).
        seed: u64,
        /// Read or write.
        kind: AccessKind,
    },
    /// Concatenation of sub-patterns, generated in order.
    Sequence(Vec<Pattern>),
    /// A pattern repeated back-to-back (multiple passes over a footprint).
    Repeat {
        /// The repeated body.
        body: Box<Pattern>,
        /// Number of passes.
        times: u32,
    },
}

/// Transactions needed to cover `bytes` in `txn_bytes` chunks. A
/// zero-byte transaction size covers nothing — degraded descriptors
/// (deserialized from a corrupted or hostile source) must not divide by
/// zero; [`Pattern::validate`] is where they are rejected loudly.
fn txns(bytes: u64, txn_bytes: u32) -> u64 {
    if txn_bytes == 0 {
        0
    } else {
        bytes.div_ceil(txn_bytes as u64)
    }
}

impl Pattern {
    /// Number of requests the pattern will generate.
    pub fn len(&self) -> u64 {
        match self {
            Pattern::Linear {
                bytes, txn_bytes, ..
            } => txns(*bytes, *txn_bytes),
            Pattern::LinearRmw {
                bytes, txn_bytes, ..
            } => 2 * txns(*bytes, *txn_bytes),
            Pattern::Strided { count, .. } => *count,
            Pattern::SingleAddress { count, .. } => *count,
            Pattern::SparseUniform { count, .. } => *count,
            Pattern::Sequence(parts) => parts.iter().map(Pattern::len).sum(),
            Pattern::Repeat { body, times } => body.len() * *times as u64,
        }
    }

    /// Whether the pattern generates no requests.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes requested by the pattern.
    pub fn bytes(&self) -> u64 {
        match self {
            Pattern::Linear {
                bytes, txn_bytes, ..
            } => txns(*bytes, *txn_bytes) * *txn_bytes as u64,
            Pattern::LinearRmw {
                bytes, txn_bytes, ..
            } => 2 * txns(*bytes, *txn_bytes) * *txn_bytes as u64,
            Pattern::Strided {
                count, txn_bytes, ..
            }
            | Pattern::SingleAddress {
                count, txn_bytes, ..
            }
            | Pattern::SparseUniform {
                count, txn_bytes, ..
            } => count * *txn_bytes as u64,
            Pattern::Sequence(parts) => parts.iter().map(Pattern::bytes).sum(),
            Pattern::Repeat { body, times } => body.bytes() * *times as u64,
        }
    }

    /// Bytes of *distinct* memory the pattern touches — its footprint —
    /// as opposed to [`Pattern::bytes`], which counts total traffic.
    /// Multiple passes over one region ([`Pattern::Repeat`]) do not grow
    /// the footprint; concatenated parts are summed, an upper bound when
    /// parts alias. The co-run interference model uses this to size a
    /// tenant's LLC pressure.
    pub fn footprint_bytes(&self) -> u64 {
        match self {
            Pattern::Linear {
                bytes, txn_bytes, ..
            }
            | Pattern::LinearRmw {
                bytes, txn_bytes, ..
            } => txns(*bytes, *txn_bytes) * *txn_bytes as u64,
            Pattern::Strided {
                count, txn_bytes, ..
            } => count * *txn_bytes as u64,
            Pattern::SingleAddress { txn_bytes, .. } => *txn_bytes as u64,
            Pattern::SparseUniform {
                region_bytes,
                count,
                txn_bytes,
                ..
            } => (*region_bytes).min(count * *txn_bytes as u64),
            Pattern::Sequence(parts) => parts.iter().map(Pattern::footprint_bytes).sum(),
            Pattern::Repeat { body, .. } => body.footprint_bytes(),
        }
    }

    /// Instantiates the lazy request iterator, mapping every request onto
    /// `space`.
    pub fn requests(&self, space: MemSpace) -> PatternIter {
        PatternIter {
            stack: vec![Frame::new(self.clone())],
            space,
        }
    }

    /// Checks the pattern describes a well-formed request stream.
    ///
    /// Patterns arrive from untrusted places — deserialized schedules
    /// shipped to the tuning service, hand-written experiment files — so
    /// a malformed descriptor must fail here with a message, not panic
    /// deep inside the simulator. The generators themselves treat a
    /// zero-byte transaction as generating nothing (see [`Pattern::len`]),
    /// which this check surfaces as an error instead of a silent no-op.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed (sub-)pattern.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Pattern::Linear { txn_bytes, .. }
            | Pattern::LinearRmw { txn_bytes, .. }
            | Pattern::Strided { txn_bytes, .. }
            | Pattern::SingleAddress { txn_bytes, .. }
            | Pattern::SparseUniform { txn_bytes, .. } => {
                if *txn_bytes == 0 {
                    return Err("pattern has zero-byte transactions".into());
                }
                Ok(())
            }
            Pattern::Sequence(parts) => {
                for (index, part) in parts.iter().enumerate() {
                    part.validate()
                        .map_err(|e| format!("sequence part {index}: {e}"))?;
                }
                Ok(())
            }
            Pattern::Repeat { body, .. } => {
                body.validate().map_err(|e| format!("repeat body: {e}"))
            }
        }
    }
}

#[derive(Debug)]
struct Frame {
    pattern: Pattern,
    /// Progress cursor: meaning depends on the pattern variant.
    index: u64,
    /// Pending write of an RMW pair.
    pending_write: Option<u64>,
    /// Seeded lazily on the first sparse request, so a frame can never
    /// reach the generator without its generator state.
    rng: Option<StdRng>,
}

impl Frame {
    fn new(pattern: Pattern) -> Self {
        Frame {
            pattern,
            index: 0,
            pending_write: None,
            rng: None,
        }
    }
}

/// Lazy iterator over a pattern's requests.
///
/// Produced by [`Pattern::requests`].
#[derive(Debug)]
pub struct PatternIter {
    stack: Vec<Frame>,
    space: MemSpace,
}

impl Iterator for PatternIter {
    type Item = MemRequest;

    fn next(&mut self) -> Option<MemRequest> {
        loop {
            let space = self.space;
            let frame = self.stack.last_mut()?;
            match &frame.pattern {
                Pattern::Linear {
                    start,
                    bytes,
                    txn_bytes,
                    kind,
                } => {
                    let n = txns(*bytes, *txn_bytes);
                    if frame.index >= n {
                        self.stack.pop();
                        continue;
                    }
                    let addr = start + frame.index * *txn_bytes as u64;
                    frame.index += 1;
                    return Some(MemRequest {
                        addr,
                        bytes: *txn_bytes,
                        kind: *kind,
                        space,
                    });
                }
                Pattern::LinearRmw {
                    start,
                    bytes,
                    txn_bytes,
                } => {
                    if let Some(addr) = frame.pending_write.take() {
                        return Some(MemRequest::write(addr, *txn_bytes, space));
                    }
                    let n = txns(*bytes, *txn_bytes);
                    if frame.index >= n {
                        self.stack.pop();
                        continue;
                    }
                    let addr = start + frame.index * *txn_bytes as u64;
                    frame.index += 1;
                    frame.pending_write = Some(addr);
                    return Some(MemRequest::read(addr, *txn_bytes, space));
                }
                Pattern::Strided {
                    start,
                    count,
                    stride,
                    txn_bytes,
                    kind,
                } => {
                    if frame.index >= *count {
                        self.stack.pop();
                        continue;
                    }
                    let addr = start + frame.index * stride;
                    frame.index += 1;
                    return Some(MemRequest {
                        addr,
                        bytes: *txn_bytes,
                        kind: *kind,
                        space,
                    });
                }
                Pattern::SingleAddress {
                    addr,
                    count,
                    txn_bytes,
                    kind,
                } => {
                    if frame.index >= *count {
                        self.stack.pop();
                        continue;
                    }
                    frame.index += 1;
                    return Some(MemRequest {
                        addr: *addr,
                        bytes: *txn_bytes,
                        kind: *kind,
                        space,
                    });
                }
                Pattern::SparseUniform {
                    start,
                    region_bytes,
                    count,
                    txn_bytes,
                    seed,
                    kind,
                } => {
                    if frame.index >= *count {
                        self.stack.pop();
                        continue;
                    }
                    frame.index += 1;
                    let slots = if *txn_bytes == 0 {
                        1
                    } else {
                        (region_bytes / *txn_bytes as u64).max(1)
                    };
                    let start = *start;
                    let txn = *txn_bytes;
                    let kind = *kind;
                    let seed = *seed;
                    let rng = frame.rng.get_or_insert_with(|| StdRng::seed_from_u64(seed));
                    let slot = rng.gen_range(0..slots);
                    return Some(MemRequest {
                        addr: start + slot * txn as u64,
                        bytes: txn,
                        kind,
                        space,
                    });
                }
                Pattern::Sequence(parts) => {
                    let parts = parts.clone();
                    self.stack.pop();
                    // Push in reverse so the first part is generated first.
                    for part in parts.into_iter().rev() {
                        self.stack.push(Frame::new(part));
                    }
                    continue;
                }
                Pattern::Repeat { body, times } => {
                    let body = (**body).clone();
                    let times = *times;
                    self.stack.pop();
                    for _ in 0..times {
                        self.stack.push(Frame::new(body.clone()));
                    }
                    continue;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(p: &Pattern) -> Vec<MemRequest> {
        p.requests(MemSpace::Cached).collect()
    }

    #[test]
    fn linear_covers_footprint() {
        let p = Pattern::Linear {
            start: 0x1000,
            bytes: 256,
            txn_bytes: 64,
            kind: AccessKind::Read,
        };
        let reqs = collect(&p);
        assert_eq!(reqs.len(), 4);
        assert_eq!(reqs[0].addr, 0x1000);
        assert_eq!(reqs[3].addr, 0x10c0);
        assert_eq!(p.len(), 4);
        assert_eq!(p.bytes(), 256);
    }

    #[test]
    fn linear_rounds_partial_transaction_up() {
        let p = Pattern::Linear {
            start: 0,
            bytes: 100,
            txn_bytes: 64,
            kind: AccessKind::Read,
        };
        assert_eq!(collect(&p).len(), 2);
    }

    #[test]
    fn rmw_pairs_read_then_write_same_address() {
        let p = Pattern::LinearRmw {
            start: 0,
            bytes: 128,
            txn_bytes: 64,
        };
        let reqs = collect(&p);
        assert_eq!(reqs.len(), 4);
        assert_eq!(reqs[0].kind, AccessKind::Read);
        assert_eq!(reqs[1].kind, AccessKind::Write);
        assert_eq!(reqs[0].addr, reqs[1].addr);
        assert_eq!(reqs[2].addr, 64);
    }

    #[test]
    fn strided_applies_stride() {
        let p = Pattern::Strided {
            start: 0,
            count: 3,
            stride: 4096,
            txn_bytes: 32,
            kind: AccessKind::Write,
        };
        let reqs = collect(&p);
        assert_eq!(reqs[2].addr, 8192);
        assert!(reqs.iter().all(|r| r.kind == AccessKind::Write));
    }

    #[test]
    fn single_address_never_moves() {
        let p = Pattern::SingleAddress {
            addr: 0xdead00,
            count: 10,
            txn_bytes: 8,
            kind: AccessKind::Read,
        };
        let reqs = collect(&p);
        assert_eq!(reqs.len(), 10);
        assert!(reqs.iter().all(|r| r.addr == 0xdead00));
    }

    #[test]
    fn sparse_is_deterministic_per_seed() {
        let make = |seed| Pattern::SparseUniform {
            start: 0,
            region_bytes: 1 << 20,
            count: 100,
            txn_bytes: 64,
            seed,
            kind: AccessKind::Read,
        };
        let a = collect(&make(7));
        let b = collect(&make(7));
        let c = collect(&make(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sparse_addresses_stay_in_region() {
        let p = Pattern::SparseUniform {
            start: 0x10000,
            region_bytes: 4096,
            count: 500,
            txn_bytes: 64,
            seed: 3,
            kind: AccessKind::Read,
        };
        for r in p.requests(MemSpace::Pinned) {
            assert!(r.addr >= 0x10000 && r.addr + 64 <= 0x10000 + 4096);
            assert_eq!(r.space, MemSpace::Pinned);
        }
    }

    #[test]
    fn sequence_concatenates_in_order() {
        let p = Pattern::Sequence(vec![
            Pattern::SingleAddress {
                addr: 1,
                count: 2,
                txn_bytes: 4,
                kind: AccessKind::Read,
            },
            Pattern::SingleAddress {
                addr: 2,
                count: 1,
                txn_bytes: 4,
                kind: AccessKind::Read,
            },
        ]);
        let addrs: Vec<u64> = collect(&p).iter().map(|r| r.addr).collect();
        assert_eq!(addrs, vec![1, 1, 2]);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn repeat_multiplies_body() {
        let p = Pattern::Repeat {
            body: Box::new(Pattern::Linear {
                start: 0,
                bytes: 128,
                txn_bytes: 64,
                kind: AccessKind::Read,
            }),
            times: 3,
        };
        let addrs: Vec<u64> = collect(&p).iter().map(|r| r.addr).collect();
        assert_eq!(addrs, vec![0, 64, 0, 64, 0, 64]);
        assert_eq!(p.len(), 6);
        assert_eq!(p.bytes(), 384);
    }

    #[test]
    fn footprint_ignores_repeats_but_sums_sequences() {
        let body = Pattern::Linear {
            start: 0,
            bytes: 4096,
            txn_bytes: 64,
            kind: AccessKind::Read,
        };
        let hot = Pattern::Repeat {
            body: Box::new(body.clone()),
            times: 16,
        };
        // Sixteen passes over 4 KiB touch 4 KiB of distinct memory but
        // generate 64 KiB of traffic.
        assert_eq!(hot.footprint_bytes(), 4096);
        assert_eq!(hot.bytes(), 16 * 4096);
        let seq = Pattern::Sequence(vec![body.clone(), body]);
        assert_eq!(seq.footprint_bytes(), 8192);
        let single = Pattern::SingleAddress {
            addr: 0,
            count: 1000,
            txn_bytes: 8,
            kind: AccessKind::Read,
        };
        assert_eq!(single.footprint_bytes(), 8);
        let sparse = Pattern::SparseUniform {
            start: 0,
            region_bytes: 1024,
            count: 1_000_000,
            txn_bytes: 64,
            seed: 1,
            kind: AccessKind::Read,
        };
        // Bounded by the region however many transactions land in it.
        assert_eq!(sparse.footprint_bytes(), 1024);
    }

    #[test]
    fn len_matches_iterator_for_composites() {
        let p = Pattern::Repeat {
            body: Box::new(Pattern::Sequence(vec![
                Pattern::LinearRmw {
                    start: 0,
                    bytes: 300,
                    txn_bytes: 64,
                },
                Pattern::SparseUniform {
                    start: 0,
                    region_bytes: 1 << 16,
                    count: 17,
                    txn_bytes: 32,
                    seed: 1,
                    kind: AccessKind::Write,
                },
            ])),
            times: 4,
        };
        assert_eq!(p.len(), collect(&p).len() as u64);
    }

    #[test]
    fn zero_byte_transactions_never_panic_and_fail_validation() {
        // A corrupted or hostile descriptor with txn_bytes = 0 must not
        // divide by zero anywhere — it covers nothing and fails validate().
        let degraded = [
            Pattern::Linear {
                start: 0,
                bytes: 4096,
                txn_bytes: 0,
                kind: AccessKind::Read,
            },
            Pattern::LinearRmw {
                start: 0,
                bytes: 4096,
                txn_bytes: 0,
            },
            Pattern::SparseUniform {
                start: 0,
                region_bytes: 4096,
                count: 3,
                txn_bytes: 0,
                seed: 1,
                kind: AccessKind::Read,
            },
        ];
        for p in &degraded {
            let _ = p.len();
            let _ = p.bytes();
            let _ = p.is_empty();
            let _: Vec<_> = p.requests(MemSpace::Cached).take(16).collect();
            assert!(p.validate().is_err(), "{p:?} validated");
        }
        // The error propagates out of composites with context.
        let nested = Pattern::Repeat {
            body: Box::new(Pattern::Sequence(vec![degraded[0].clone()])),
            times: 2,
        };
        let err = nested.validate().unwrap_err();
        assert!(err.contains("zero-byte"), "{err}");
        assert!(err.contains("repeat body"), "{err}");
    }

    #[test]
    fn well_formed_patterns_validate() {
        let p = Pattern::Repeat {
            body: Box::new(Pattern::Sequence(vec![
                Pattern::Linear {
                    start: 0,
                    bytes: 256,
                    txn_bytes: 64,
                    kind: AccessKind::Read,
                },
                Pattern::SingleAddress {
                    addr: 4,
                    count: 2,
                    txn_bytes: 8,
                    kind: AccessKind::Write,
                },
            ])),
            times: 3,
        };
        assert!(p.validate().is_ok());
    }

    #[test]
    fn space_parameter_is_applied() {
        let p = Pattern::Linear {
            start: 0,
            bytes: 64,
            txn_bytes: 64,
            kind: AccessKind::Read,
        };
        let pinned: Vec<_> = p.requests(MemSpace::Pinned).collect();
        assert_eq!(pinned[0].space, MemSpace::Pinned);
    }
}
