//! Property tests over arbitrarily composed access patterns: the
//! symbolic metadata (`len`, `bytes`) must always agree with the lazily
//! generated stream, and generation must be deterministic.

use proptest::prelude::*;

use icomm_soc::cache::AccessKind;
use icomm_soc::hierarchy::MemSpace;
use icomm_trace::Pattern;

fn leaf_pattern() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        (
            0u64..1 << 20,
            1u64..4096,
            prop_oneof![Just(32u32), Just(64)],
            any::<bool>()
        )
            .prop_map(|(start, bytes, txn, write)| Pattern::Linear {
                start,
                bytes,
                txn_bytes: txn,
                kind: if write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
            }),
        (
            0u64..1 << 20,
            1u64..4096,
            prop_oneof![Just(32u32), Just(64)]
        )
            .prop_map(|(start, bytes, txn)| Pattern::LinearRmw {
                start,
                bytes,
                txn_bytes: txn,
            }),
        (
            0u64..1 << 20,
            0u64..200,
            1u64..1024,
            prop_oneof![Just(8u32), Just(64)]
        )
            .prop_map(|(start, count, stride, txn)| Pattern::Strided {
                start,
                count,
                stride,
                txn_bytes: txn,
                kind: AccessKind::Read,
            }),
        (0u64..1 << 20, 0u64..200, prop_oneof![Just(4u32), Just(8)]).prop_map(
            |(addr, count, txn)| Pattern::SingleAddress {
                addr,
                count,
                txn_bytes: txn,
                kind: AccessKind::Write,
            }
        ),
        (0u64..1 << 20, 64u64..1 << 16, 0u64..200, any::<u64>()).prop_map(
            |(start, region, count, seed)| Pattern::SparseUniform {
                start,
                region_bytes: region,
                count,
                txn_bytes: 64,
                seed,
                kind: AccessKind::Read,
            }
        ),
    ]
}

fn pattern() -> impl Strategy<Value = Pattern> {
    leaf_pattern().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Pattern::Sequence),
            (inner, 0u32..4).prop_map(|(body, times)| Pattern::Repeat {
                body: Box::new(body),
                times,
            }),
        ]
    })
}

proptest! {
    #[test]
    fn len_matches_generated_count(p in pattern()) {
        let generated = p.requests(MemSpace::Cached).count() as u64;
        prop_assert_eq!(p.len(), generated);
        prop_assert_eq!(p.is_empty(), generated == 0);
    }

    #[test]
    fn bytes_matches_generated_sum(p in pattern()) {
        let generated: u64 = p
            .requests(MemSpace::Cached)
            .map(|r| r.bytes as u64)
            .sum();
        prop_assert_eq!(p.bytes(), generated);
    }

    #[test]
    fn generation_is_deterministic(p in pattern()) {
        let a: Vec<_> = p.requests(MemSpace::Pinned).collect();
        let b: Vec<_> = p.requests(MemSpace::Pinned).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn space_is_uniform_across_stream(p in pattern()) {
        for r in p.requests(MemSpace::Pinned) {
            prop_assert_eq!(r.space, MemSpace::Pinned);
        }
    }
}
