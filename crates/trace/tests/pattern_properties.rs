//! Property tests over arbitrarily composed access patterns: the
//! symbolic metadata (`len`, `bytes`) must always agree with the lazily
//! generated stream, and generation must be deterministic.

use proptest::prelude::*;

use icomm_soc::cache::AccessKind;
use icomm_soc::hierarchy::MemSpace;
use icomm_trace::Pattern;

fn leaf_pattern() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        (
            0u64..1 << 20,
            1u64..4096,
            prop_oneof![Just(32u32), Just(64)],
            any::<bool>()
        )
            .prop_map(|(start, bytes, txn, write)| Pattern::Linear {
                start,
                bytes,
                txn_bytes: txn,
                kind: if write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
            }),
        (
            0u64..1 << 20,
            1u64..4096,
            prop_oneof![Just(32u32), Just(64)]
        )
            .prop_map(|(start, bytes, txn)| Pattern::LinearRmw {
                start,
                bytes,
                txn_bytes: txn,
            }),
        (
            0u64..1 << 20,
            0u64..200,
            1u64..1024,
            prop_oneof![Just(8u32), Just(64)]
        )
            .prop_map(|(start, count, stride, txn)| Pattern::Strided {
                start,
                count,
                stride,
                txn_bytes: txn,
                kind: AccessKind::Read,
            }),
        (0u64..1 << 20, 0u64..200, prop_oneof![Just(4u32), Just(8)]).prop_map(
            |(addr, count, txn)| Pattern::SingleAddress {
                addr,
                count,
                txn_bytes: txn,
                kind: AccessKind::Write,
            }
        ),
        (0u64..1 << 20, 64u64..1 << 16, 0u64..200, any::<u64>()).prop_map(
            |(start, region, count, seed)| Pattern::SparseUniform {
                start,
                region_bytes: region,
                count,
                txn_bytes: 64,
                seed,
                kind: AccessKind::Read,
            }
        ),
    ]
}

fn pattern() -> impl Strategy<Value = Pattern> {
    leaf_pattern().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Pattern::Sequence),
            (inner, 0u32..4).prop_map(|(body, times)| Pattern::Repeat {
                body: Box::new(body),
                times,
            }),
        ]
    })
}

proptest! {
    #[test]
    fn len_matches_generated_count(p in pattern()) {
        let generated = p.requests(MemSpace::Cached).count() as u64;
        prop_assert_eq!(p.len(), generated);
        prop_assert_eq!(p.is_empty(), generated == 0);
    }

    #[test]
    fn bytes_matches_generated_sum(p in pattern()) {
        let generated: u64 = p
            .requests(MemSpace::Cached)
            .map(|r| r.bytes as u64)
            .sum();
        prop_assert_eq!(p.bytes(), generated);
    }

    #[test]
    fn generation_is_deterministic(p in pattern()) {
        let a: Vec<_> = p.requests(MemSpace::Pinned).collect();
        let b: Vec<_> = p.requests(MemSpace::Pinned).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn space_is_uniform_across_stream(p in pattern()) {
        for r in p.requests(MemSpace::Pinned) {
            prop_assert_eq!(r.space, MemSpace::Pinned);
        }
    }

    #[test]
    fn partial_trailing_transaction_rounds_up(
        start in 0u64..1 << 20,
        txn in 1u32..512,
        full in 0u64..64,
        rem in 1u64..512,
    ) {
        // `txn_bytes` deliberately not dividing `bytes`: the tail is still
        // one whole transaction, never truncated and never doubled.
        let rem = rem.min(txn as u64 - 1).max(1);
        let bytes = (full * txn as u64 + if rem < txn as u64 { rem } else { 0 }).max(1);
        let p = Pattern::Linear { start, bytes, txn_bytes: txn, kind: AccessKind::Read };
        let reqs: Vec<_> = p.requests(MemSpace::Cached).collect();
        prop_assert_eq!(reqs.len() as u64, bytes.div_ceil(txn as u64));
        let last = reqs.last().unwrap();
        prop_assert_eq!(last.addr, start + (reqs.len() as u64 - 1) * txn as u64);
        prop_assert_eq!(last.bytes, txn);
    }

    #[test]
    fn repeat_zero_times_is_empty(p in leaf_pattern()) {
        let r = Pattern::Repeat { body: Box::new(p), times: 0 };
        prop_assert!(r.is_empty());
        prop_assert_eq!(r.len(), 0);
        prop_assert_eq!(r.bytes(), 0);
        prop_assert_eq!(r.requests(MemSpace::Cached).count(), 0);
    }

    #[test]
    fn deep_composition_matches_flat_expansion(p in leaf_pattern(), depth in 1u32..6) {
        // Nesting Repeat { Sequence [p] } `depth` levels deep must behave
        // exactly like the leaf repeated once per level (times = 1 at each
        // level keeps the expansion equal to the leaf itself).
        let mut nested = p.clone();
        for _ in 0..depth {
            nested = Pattern::Repeat {
                body: Box::new(Pattern::Sequence(vec![nested])),
                times: 1,
            };
        }
        let flat: Vec<_> = p.requests(MemSpace::Cached).collect();
        let deep: Vec<_> = nested.requests(MemSpace::Cached).collect();
        prop_assert_eq!(flat, deep);
        prop_assert_eq!(nested.len(), p.len());
        prop_assert_eq!(nested.bytes(), p.bytes());
    }
}

#[test]
fn zero_byte_linear_generates_nothing() {
    let p = Pattern::Linear {
        start: 0x8000,
        bytes: 0,
        txn_bytes: 64,
        kind: AccessKind::Read,
    };
    assert!(p.is_empty());
    assert_eq!(p.len(), 0);
    assert_eq!(p.bytes(), 0);
    assert_eq!(p.requests(MemSpace::Cached).count(), 0);

    let rmw = Pattern::LinearRmw {
        start: 0,
        bytes: 0,
        txn_bytes: 64,
    };
    assert!(rmw.is_empty());
    assert_eq!(rmw.requests(MemSpace::Cached).count(), 0);
}

#[test]
fn sequence_of_empties_terminates() {
    // Composition of exclusively empty parts must terminate and agree
    // with the symbolic length.
    let empty = Pattern::Linear {
        start: 0,
        bytes: 0,
        txn_bytes: 32,
        kind: AccessKind::Write,
    };
    let p = Pattern::Repeat {
        body: Box::new(Pattern::Sequence(vec![
            empty.clone(),
            Pattern::Sequence(vec![]),
            empty,
        ])),
        times: 3,
    };
    assert_eq!(p.len(), 0);
    assert_eq!(p.requests(MemSpace::Cached).count(), 0);
}
