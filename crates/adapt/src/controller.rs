//! The switch controller: re-runs the Fig. 2 decision flow online,
//! guarded against oscillation.
//!
//! [`AdaptController`] implements [`WindowPolicy`], so
//! [`icomm_models::run_phased`] can drive it over a phased workload. Its
//! state machine:
//!
//! ```text
//!             warmup_windows elapsed
//!   Warmup ───────────────────────────► Settled ◄──────────────┐
//!                 (initial decision)       │                   │
//!                                          │ drift, usage      │ probe_windows
//!                                          │ unobservable (ZC) │ elapsed
//!                                          ▼                   │ (probe verdict)
//!                                       Probing ───────────────┘
//! ```
//!
//! - **Warmup**: observe only; when it ends, run one unconditional
//!   decision (the online analogue of the paper's offline tuning step).
//! - **Settled**: feed every window to the [`PhaseDetector`]. On drift
//!   with the caches enabled (SC/UM), re-run the decision flow directly
//!   on the window's counters. On drift under zero copy the usage
//!   metrics are unobservable, so the controller *probes*: it switches to
//!   SC for [`ControllerConfig::probe_windows`] windows — matching the
//!   paper's rule that profiling happens under a cache-enabled model —
//!   then decides from the probe counters. When the verdict is SC, the
//!   probe entry *was* the adaptation; no extra switch is paid.
//! - Every switch starts a **dwell** of
//!   [`ControllerConfig::min_dwell_windows`] windows during which drifts
//!   are ignored, and resets the detector baselines (the operating point
//!   legitimately moved).
//!
//! Two more guards keep the controller from oscillating:
//!
//! - **Hysteresis**: a decision only counts if it is *stable* under
//!   shifting every characterization threshold by
//!   ±[`ControllerConfig::hysteresis_pct`] — a measurement sitting on a
//!   zone boundary cannot flap the model. To keep a boundary workload
//!   from pinning the controller on the wrong model forever,
//!   [`ControllerConfig::hysteresis_confirm`] consecutive unstable
//!   verdicts for the *same* target override the guard: repeated
//!   identical evidence is a phase, not noise.
//! - **Switch-cost gate**: a switch is taken only when the estimated
//!   per-window gain (from the Eqn. 3/4 speedup estimate), summed over
//!   [`ControllerConfig::payback_windows`] windows, covers the explicit
//!   [`switch_cost_for_payload`] of the move.
//!
//! The controller is deterministic: the same window stream through the
//! same configuration produces the same switch sequence.

use std::fmt;

use serde::{Deserialize, Serialize};

use icomm_core::decision::{recommend, Recommendation};
use icomm_microbench::DeviceCharacterization;
use icomm_models::{switch_cost_for_payload, CommModelKind, RunReport, WindowPolicy};
use icomm_profile::ProfileReport;
use icomm_soc::units::{ByteSize, Picos};
use icomm_soc::DeviceProfile;

use crate::detector::{DetectorConfig, PhaseDetector};
use crate::window::{WindowRing, WindowSample};

/// Tuning knobs of the [`AdaptController`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Phase-change detector configuration.
    pub detector: DetectorConfig,
    /// Windows observed before the first decision.
    pub warmup_windows: u32,
    /// Windows a probe holds SC before deciding.
    pub probe_windows: u32,
    /// Windows after a switch during which drifts are ignored.
    pub min_dwell_windows: u32,
    /// Threshold shift (percentage points) a decision must survive.
    pub hysteresis_pct: f64,
    /// Consecutive drift evaluations recommending the *same* switch that
    /// override an unstable hysteresis check (0 = never override). A
    /// workload sitting exactly on a zone boundary would otherwise pin
    /// the controller on the wrong model forever; repeated identical
    /// verdicts are evidence, not noise.
    pub hysteresis_confirm: u32,
    /// Windows over which a switch must pay for itself.
    pub payback_windows: u32,
    /// Shared-buffer payload used to price switches (the size the
    /// application allocated; known without profiling).
    pub payload_hint: ByteSize,
    /// Model the first window runs under.
    pub initial_model: CommModelKind,
    /// Windows retained in the streaming ring.
    pub ring_capacity: usize,
    /// Recent windows aggregated (field-wise median,
    /// [`WindowRing::robust_profile`]) into the profile a decision runs
    /// on. `1` decides on the latest window alone — the classic
    /// behavior; larger values make decisions robust to a single noisy
    /// window at the price of reacting one-to-two windows later.
    pub decision_window: usize,
    /// Usage readings (Eqn. 1/2, percent) above this are treated as
    /// corrupted counters and quarantined. Legitimate usage tops out
    /// around 100%; saturated or garbage counters produce thousands.
    pub max_plausible_usage_pct: f64,
    /// Confidence lost (on a `[0, 1]` scale) per degraded window — a
    /// quarantined profile, a gap in the window stream, or a duplicate.
    pub confidence_drop: f64,
    /// Confidence regained per clean in-order window.
    pub confidence_recover: f64,
    /// Below this confidence the controller holds the current model:
    /// drift-triggered switches are suppressed until the stream heals.
    pub min_confidence_to_switch: f64,
    /// Below this confidence the controller abandons adaptation and
    /// falls back to standard copy — the paper's always-correct default —
    /// until confidence recovers.
    pub sc_fallback_confidence: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            detector: DetectorConfig::default(),
            warmup_windows: 2,
            probe_windows: 1,
            min_dwell_windows: 2,
            hysteresis_pct: 1.0,
            hysteresis_confirm: 3,
            payback_windows: 8,
            payload_hint: ByteSize::kib(256),
            initial_model: CommModelKind::StandardCopy,
            ring_capacity: 16,
            decision_window: 1,
            max_plausible_usage_pct: 150.0,
            confidence_drop: 0.25,
            confidence_recover: 0.10,
            min_confidence_to_switch: 0.6,
            sc_fallback_confidence: 0.25,
        }
    }
}

impl ControllerConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        self.detector.validate()?;
        if self.probe_windows == 0 {
            return Err("probe_windows must be at least 1".into());
        }
        if self.payback_windows == 0 {
            return Err("payback_windows must be at least 1".into());
        }
        if !(self.hysteresis_pct >= 0.0 && self.hysteresis_pct.is_finite()) {
            return Err(format!("hysteresis_pct {} invalid", self.hysteresis_pct));
        }
        if self.ring_capacity < self.probe_windows as usize {
            return Err("ring_capacity must cover at least one probe".into());
        }
        if self.decision_window == 0 {
            return Err("decision_window must be at least 1".into());
        }
        if self.decision_window > self.ring_capacity {
            return Err(format!(
                "decision_window {} exceeds ring_capacity {}",
                self.decision_window, self.ring_capacity
            ));
        }
        if !(self.max_plausible_usage_pct > 0.0 && self.max_plausible_usage_pct.is_finite()) {
            return Err(format!(
                "max_plausible_usage_pct {} invalid",
                self.max_plausible_usage_pct
            ));
        }
        for (name, v) in [
            ("confidence_drop", self.confidence_drop),
            ("confidence_recover", self.confidence_recover),
            ("min_confidence_to_switch", self.min_confidence_to_switch),
            ("sc_fallback_confidence", self.sc_fallback_confidence),
        ] {
            if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                return Err(format!("{name} {v} outside [0, 1]"));
            }
        }
        if self.sc_fallback_confidence > self.min_confidence_to_switch {
            return Err(format!(
                "sc_fallback_confidence {} above min_confidence_to_switch {}: the controller would fall back while still willing to switch",
                self.sc_fallback_confidence, self.min_confidence_to_switch
            ));
        }
        Ok(())
    }
}

/// Why the controller switched.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwitchReason {
    /// The unconditional decision at the end of warmup.
    InitialDecision,
    /// A drift-triggered decision with the caches enabled; carries the
    /// detector channels that fired.
    Decision(Vec<String>),
    /// Drift under zero copy: switching to SC to observe the cache usage.
    ProbeEntry(Vec<String>),
    /// The decision concluding a probe.
    ProbeVerdict,
    /// Confidence in the counter stream collapsed below
    /// [`ControllerConfig::sc_fallback_confidence`]: retreat to standard
    /// copy, the always-correct default, bypassing every gate.
    SafeFallback,
}

impl fmt::Display for SwitchReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwitchReason::InitialDecision => f.write_str("initial decision"),
            SwitchReason::Decision(ch) => write!(f, "drift [{}]", ch.join(", ")),
            SwitchReason::ProbeEntry(ch) => write!(f, "probe entry [{}]", ch.join(", ")),
            SwitchReason::ProbeVerdict => f.write_str("probe verdict"),
            SwitchReason::SafeFallback => f.write_str("safe fallback (low confidence)"),
        }
    }
}

/// One model switch taken by the controller. The switch takes effect at
/// `window + 1` (the harness charges it before that window runs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchEvent {
    /// Window after which the switch was requested.
    pub window: u64,
    /// Model switched away from.
    pub from: CommModelKind,
    /// Model switched to.
    pub to: CommModelKind,
    /// Why.
    pub reason: SwitchReason,
}

/// Counters the controller accumulates; the adaptation metrics surfaced
/// by the CLI and the serving layer.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AdaptStats {
    /// Windows observed.
    pub windows: u64,
    /// Drift verdicts from the detector (including ones not acted on).
    pub drifts: u32,
    /// Windows at which a drift fired.
    pub drift_windows: Vec<u64>,
    /// Probes entered (SC excursions to observe usage under ZC).
    pub probes: u32,
    /// Decision-flow evaluations.
    pub decisions: u32,
    /// Switches requested. May exceed the switches the harness charges
    /// by one when the final window requests a switch that never runs.
    pub switches: u32,
    /// Drifts ignored because a switch was too recent.
    pub suppressed_dwell: u32,
    /// Decisions discarded as unstable under the hysteresis shift.
    pub suppressed_hysteresis: u32,
    /// Unstable decisions accepted anyway after
    /// [`ControllerConfig::hysteresis_confirm`] consecutive identical
    /// verdicts.
    pub hysteresis_overrides: u32,
    /// Switches discarded because the estimated gain would not pay the
    /// switch cost within the payback horizon.
    pub suppressed_cost: u32,
    /// Windows quarantined for implausible counters (NaN/Inf, rates
    /// outside `[0, 1]`, usage beyond
    /// [`ControllerConfig::max_plausible_usage_pct`]).
    pub quarantined: u32,
    /// Windows missing from the stream (gaps between consecutive
    /// delivered indices).
    pub lost_windows: u64,
    /// Windows delivered with an index at or before one already seen.
    pub duplicates: u32,
    /// Switches suppressed because stream confidence was below
    /// [`ControllerConfig::min_confidence_to_switch`].
    pub suppressed_confidence: u32,
    /// Retreats to standard copy after confidence collapsed.
    pub sc_fallbacks: u32,
}

impl fmt::Display for AdaptStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "windows observed      {}", self.windows)?;
        writeln!(f, "drifts detected       {}", self.drifts)?;
        writeln!(f, "probes                {}", self.probes)?;
        writeln!(f, "decisions evaluated   {}", self.decisions)?;
        writeln!(f, "switches              {}", self.switches)?;
        writeln!(f, "suppressed: dwell     {}", self.suppressed_dwell)?;
        writeln!(f, "suppressed: hysteresis {}", self.suppressed_hysteresis)?;
        writeln!(f, "hysteresis overrides  {}", self.hysteresis_overrides)?;
        writeln!(f, "suppressed: cost      {}", self.suppressed_cost)?;
        writeln!(f, "quarantined windows   {}", self.quarantined)?;
        writeln!(f, "lost windows          {}", self.lost_windows)?;
        writeln!(f, "duplicate windows     {}", self.duplicates)?;
        writeln!(f, "suppressed: confidence {}", self.suppressed_confidence)?;
        write!(f, "safe fallbacks to SC  {}", self.sc_fallbacks)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Warmup { remaining: u32 },
    Settled,
    Probing { remaining: u32 },
}

/// The online adaptation controller.
#[derive(Debug, Clone)]
pub struct AdaptController {
    device: DeviceProfile,
    characterization: DeviceCharacterization,
    config: ControllerConfig,
    detector: PhaseDetector,
    ring: WindowRing,
    state: State,
    active: CommModelKind,
    dwell_remaining: u32,
    /// Consecutive hysteresis-unstable verdicts for the same target.
    unstable_streak: Option<(CommModelKind, u32)>,
    /// Trust in the counter stream, in `[0, 1]`; degraded windows drain
    /// it, clean in-order windows refill it.
    confidence: f64,
    /// Highest window index delivered so far — the reference for gap and
    /// duplicate detection.
    last_window: Option<u64>,
    stats: AdaptStats,
    events: Vec<SwitchEvent>,
}

impl AdaptController {
    /// Creates a controller for one device.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid
    /// ([`ControllerConfig::validate`]).
    pub fn new(
        device: DeviceProfile,
        characterization: DeviceCharacterization,
        config: ControllerConfig,
    ) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid controller config: {e}");
        }
        let detector = PhaseDetector::new(config.detector);
        let ring = WindowRing::new(config.ring_capacity);
        let state = if config.warmup_windows == 0 {
            State::Settled
        } else {
            State::Warmup {
                remaining: config.warmup_windows,
            }
        };
        let active = config.initial_model;
        AdaptController {
            device,
            characterization,
            config,
            detector,
            ring,
            state,
            active,
            dwell_remaining: 0,
            unstable_streak: None,
            confidence: 1.0,
            last_window: None,
            stats: AdaptStats::default(),
            events: Vec::new(),
        }
    }

    /// Current trust in the counter stream, in `[0, 1]`.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// The accumulated adaptation counters.
    pub fn stats(&self) -> &AdaptStats {
        &self.stats
    }

    /// Every switch taken, in order.
    pub fn switch_log(&self) -> &[SwitchEvent] {
        &self.events
    }

    /// The model the next window will run under.
    pub fn active_model(&self) -> CommModelKind {
        self.active
    }

    /// The active configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// The characterization with every zone boundary shifted by `delta`
    /// percentage points — the hysteresis probe.
    fn shifted(&self, delta: f64) -> DeviceCharacterization {
        let mut c = self.characterization.clone();
        c.gpu_cache_threshold_pct += delta;
        c.cpu_cache_threshold_pct += delta;
        if let Some(z) = c.gpu_cache_zone2_pct {
            c.gpu_cache_zone2_pct = Some(z + delta);
        }
        c
    }

    /// Re-runs the decision flow on a cache-enabled window profile.
    /// Returns the stable verdict, or `None` when hysteresis rejects it.
    fn decide(&mut self, profile: &ProfileReport) -> Option<Recommendation> {
        self.stats.decisions += 1;
        // The profile is measured under SC/UM, so its copy time is the
        // measured per-window copy — exactly the estimate Eqn. 4 needs.
        let copy = profile.copy_time;
        let rec = recommend(
            profile,
            profile,
            profile.model,
            &self.characterization,
            copy,
        );
        let h = self.config.hysteresis_pct;
        if h > 0.0 {
            for delta in [-h, h] {
                let alt = recommend(profile, profile, profile.model, &self.shifted(delta), copy);
                if alt.recommended != rec.recommended {
                    return self.unstable(rec);
                }
            }
        }
        self.unstable_streak = None;
        Some(rec)
    }

    /// Books a hysteresis-unstable verdict. Normally suppressed — but
    /// [`ControllerConfig::hysteresis_confirm`] consecutive verdicts for
    /// the same target are persistent evidence, not boundary noise, and
    /// go through anyway.
    fn unstable(&mut self, rec: Recommendation) -> Option<Recommendation> {
        let streak = match self.unstable_streak {
            Some((target, count)) if target == rec.recommended => count + 1,
            _ => 1,
        };
        self.unstable_streak = Some((rec.recommended, streak));
        let confirm = self.config.hysteresis_confirm;
        if confirm > 0 && streak >= confirm && rec.recommended != self.active {
            self.stats.hysteresis_overrides += 1;
            self.unstable_streak = None;
            return Some(rec);
        }
        self.stats.suppressed_hysteresis += 1;
        None
    }

    /// Commits a switch: logs it, starts the dwell, resets the detector.
    fn commit(&mut self, window: u64, to: CommModelKind, reason: SwitchReason) {
        self.events.push(SwitchEvent {
            window,
            from: self.active,
            to,
            reason,
        });
        self.active = to;
        self.stats.switches += 1;
        self.dwell_remaining = self.config.min_dwell_windows;
        self.unstable_streak = None;
        self.detector.reset();
    }

    /// Applies the confidence and switch-cost gates, then commits.
    fn try_switch(
        &mut self,
        window: u64,
        rec: &Recommendation,
        reason: SwitchReason,
        window_time: Picos,
    ) {
        let to = rec.recommended;
        if to == self.active {
            return;
        }
        if self.confidence < self.config.min_confidence_to_switch {
            // A degraded stream means the evidence behind this verdict is
            // suspect: hold the current model rather than act on it.
            self.stats.suppressed_confidence += 1;
            return;
        }
        let cost = switch_cost_for_payload(&self.device, self.config.payload_hint, self.active, to);
        let gain_per_window = match rec.estimated_speedup {
            Some(est) if est.estimated > 1.0 => {
                window_time.as_picos() as f64 * (1.0 - 1.0 / est.estimated)
            }
            _ => 0.0,
        };
        if gain_per_window * f64::from(self.config.payback_windows) < cost.as_picos() as f64 {
            self.stats.suppressed_cost += 1;
            return;
        }
        self.commit(window, to, reason);
    }

    /// Switches to SC to make the cache usage observable.
    fn enter_probe(&mut self, window: u64, channels: Vec<String>) {
        self.stats.probes += 1;
        // No cost gate: the benefit is precisely what the probe exists to
        // measure. When the verdict keeps SC, this switch *was* the
        // adaptation; when it reverts, the probe cost is the price of
        // observability.
        self.commit(
            window,
            CommModelKind::StandardCopy,
            SwitchReason::ProbeEntry(channels),
        );
        self.state = State::Probing {
            remaining: self.config.probe_windows,
        };
    }

    /// The profile a decision runs on: the field-wise median over
    /// [`ControllerConfig::decision_window`] recent windows — exactly
    /// the latest profile when the window is 1.
    fn decision_profile(&self) -> Option<ProfileReport> {
        self.ring.robust_profile(self.config.decision_window)
    }

    /// The unconditional decision ending warmup.
    fn initial_decision(&mut self, window: u64) {
        let Some(sample) = self.ring.latest().cloned() else {
            return;
        };
        if !sample.usage_observable() {
            // Warmed up under ZC: the decision flow needs cache counters,
            // so observe them first.
            self.enter_probe(window, Vec::new());
            return;
        }
        let Some(profile) = self.decision_profile() else {
            return;
        };
        if let Some(rec) = self.decide(&profile) {
            self.try_switch(
                window,
                &rec,
                SwitchReason::InitialDecision,
                profile.total_time,
            );
        }
    }

    /// A drift fired while settled.
    fn react(&mut self, window: u64, channels: Vec<String>) {
        let Some(sample) = self.ring.latest().cloned() else {
            return;
        };
        if sample.usage_observable() {
            let Some(profile) = self.decision_profile() else {
                return;
            };
            if let Some(rec) = self.decide(&profile) {
                self.try_switch(
                    window,
                    &rec,
                    SwitchReason::Decision(channels),
                    profile.total_time,
                );
            }
        } else {
            self.enter_probe(window, channels);
        }
    }

    /// The decision concluding a probe; the probe windows ran under SC.
    fn conclude_probe(&mut self, window: u64) {
        let Some(profile) = self.decision_profile() else {
            return;
        };
        if let Some(rec) = self.decide(&profile) {
            // A verdict of SC keeps the probe switch as the adaptation; a
            // verdict of ZC/UM reverts (cost-gated like any decision).
            self.try_switch(window, &rec, SwitchReason::ProbeVerdict, profile.total_time);
        }
    }

    /// Drains confidence after a degraded window.
    fn degrade(&mut self) {
        self.confidence = (self.confidence - self.config.confidence_drop).max(0.0);
    }

    /// The end of every observed window: when confidence has collapsed,
    /// retreat to standard copy — the paper's always-correct default —
    /// bypassing the hysteresis and cost gates. Returns the model the
    /// next window runs under.
    fn finish(&mut self, window: u64) -> CommModelKind {
        if self.confidence < self.config.sc_fallback_confidence
            && self.active != CommModelKind::StandardCopy
        {
            self.stats.sc_fallbacks += 1;
            self.commit(
                window,
                CommModelKind::StandardCopy,
                SwitchReason::SafeFallback,
            );
            // A probe in flight is moot — SC already makes usage
            // observable.
            self.state = State::Settled;
        }
        self.active
    }

    /// Feeds one profiled window to the controller and returns the model
    /// the next window should run under — the streaming entry point
    /// [`WindowPolicy::next_model`] delegates to, exposed so harnesses
    /// that corrupt, drop or reorder profiles (fault injection, live
    /// counter feeds) can drive the controller directly.
    ///
    /// Degraded input never panics and never silently steers a decision:
    ///
    /// - a `window` index at or before one already seen is counted as a
    ///   duplicate and discarded;
    /// - a gap in the indices books the missing windows as lost;
    /// - a profile with implausible counters
    ///   ([`ProfileReport::check_plausible`], plus the
    ///   [`ControllerConfig::max_plausible_usage_pct`] usage cap) is
    ///   quarantined — it reaches neither the detector nor the ring;
    /// - each such event drains [`Self::confidence`]; switching is
    ///   suppressed below
    ///   [`ControllerConfig::min_confidence_to_switch`], and below
    ///   [`ControllerConfig::sc_fallback_confidence`] the controller
    ///   retreats to standard copy until the stream heals.
    pub fn observe_profile(&mut self, window: u64, profile: ProfileReport) -> CommModelKind {
        self.stats.windows += 1;
        if let Some(last) = self.last_window {
            if window <= last {
                self.stats.duplicates += 1;
                self.degrade();
                return self.finish(window);
            }
            let gap = window - last - 1;
            if gap > 0 {
                self.stats.lost_windows += gap;
                self.degrade();
            }
        }
        self.last_window = Some(window);

        let sample = WindowSample::from_profile(window, profile, &self.characterization);
        let cap = self.config.max_plausible_usage_pct;
        let usage_plausible =
            |u: Option<f64>| u.is_none_or(|u| u.is_finite() && (0.0..=cap).contains(&u));
        if sample.profile.check_plausible().is_err()
            || !usage_plausible(sample.cpu_usage_pct)
            || !usage_plausible(sample.gpu_usage_pct)
        {
            self.stats.quarantined += 1;
            self.degrade();
            return self.finish(window);
        }
        self.confidence = (self.confidence + self.config.confidence_recover).min(1.0);

        let drift = self.detector.observe(
            sample.profile.total_time.as_picos() as f64,
            sample.cpu_usage_pct,
            sample.gpu_usage_pct,
        );
        if drift.is_some() {
            self.stats.drifts += 1;
            self.stats.drift_windows.push(window);
        }
        self.ring.push(sample);

        match self.state {
            State::Warmup { remaining } => {
                let remaining = remaining.saturating_sub(1);
                if remaining > 0 {
                    self.state = State::Warmup { remaining };
                } else {
                    self.state = State::Settled;
                    self.initial_decision(window);
                }
            }
            State::Probing { remaining } => {
                let remaining = remaining.saturating_sub(1);
                if remaining > 0 {
                    self.state = State::Probing { remaining };
                } else {
                    self.state = State::Settled;
                    self.conclude_probe(window);
                }
            }
            State::Settled => {
                if self.dwell_remaining > 0 {
                    self.dwell_remaining -= 1;
                    if drift.is_some() {
                        self.stats.suppressed_dwell += 1;
                    }
                } else if let Some(d) = drift {
                    self.react(window, d.channels);
                }
            }
        }
        self.finish(window)
    }
}

impl WindowPolicy for AdaptController {
    fn name(&self) -> String {
        "adapt".to_string()
    }

    fn initial_model(&self) -> CommModelKind {
        self.config.initial_model
    }

    fn next_model(&mut self, window: u64, run: &RunReport) -> CommModelKind {
        self.observe_profile(window, ProfileReport::from_run(run))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icomm_models::{run_phased, PhasedWorkload, WorkloadPhase};
    use icomm_models::{GpuPhase, Workload};
    use icomm_soc::cache::AccessKind;
    use icomm_trace::Pattern;

    fn workload(bytes: u64, passes: u32) -> Workload {
        let body = Pattern::Linear {
            start: 0,
            bytes,
            txn_bytes: 64,
            kind: AccessKind::Read,
        };
        Workload::builder("t")
            .bytes_to_gpu(ByteSize(bytes))
            .gpu(GpuPhase {
                compute_work: 1 << 14,
                shared_accesses: Pattern::Repeat {
                    body: Box::new(body),
                    times: passes,
                },
                private_accesses: None,
            })
            .build()
    }

    fn controller(device: &DeviceProfile, config: ControllerConfig) -> AdaptController {
        let c = icomm_microbench::quick_characterize_device(device);
        AdaptController::new(device.clone(), c, config)
    }

    #[test]
    fn stationary_workload_switches_at_most_once() {
        // One phase: the only legitimate switch is the initial decision.
        let device = DeviceProfile::jetson_agx_xavier();
        let phased = PhasedWorkload::new(
            "stationary",
            vec![WorkloadPhase {
                name: "steady".into(),
                windows: 12,
                workload: workload(256 * 1024, 1),
            }],
        );
        let mut ctrl = controller(&device, ControllerConfig::default());
        let report = run_phased(&device, &phased, &mut ctrl);
        assert!(
            report.switches <= 1,
            "stationary run switched {} times: {:?}",
            report.switches,
            report.switch_sequence()
        );
        assert_eq!(ctrl.stats().windows, 12);
    }

    #[test]
    fn dwell_and_reset_prevent_post_switch_flapping() {
        let device = DeviceProfile::jetson_agx_xavier();
        let phased = PhasedWorkload::new(
            "two-phase",
            vec![
                WorkloadPhase {
                    name: "light".into(),
                    windows: 8,
                    workload: workload(256 * 1024, 1),
                },
                WorkloadPhase {
                    name: "heavy".into(),
                    windows: 8,
                    workload: workload(256 * 1024, 12),
                },
            ],
        );
        let mut ctrl = controller(&device, ControllerConfig::default());
        let report = run_phased(&device, &phased, &mut ctrl);
        // At most one adaptation per phase plus the initial decision.
        assert!(
            report.switches <= 3,
            "switched {} times: {:?}",
            report.switches,
            report.switch_sequence()
        );
        // Never two switches in adjacent windows (dwell).
        let seq = report.switch_sequence();
        for pair in seq.windows(2) {
            assert!(
                pair[1].0 - pair[0].0 > 1,
                "adjacent-window switches {seq:?}"
            );
        }
    }

    #[test]
    fn replays_are_identical() {
        let device = DeviceProfile::jetson_agx_xavier();
        let phased = PhasedWorkload::new(
            "replay",
            vec![
                WorkloadPhase {
                    name: "a".into(),
                    windows: 6,
                    workload: workload(256 * 1024, 1),
                },
                WorkloadPhase {
                    name: "b".into(),
                    windows: 6,
                    workload: workload(256 * 1024, 10),
                },
            ],
        );
        let run = || {
            let mut ctrl = controller(&device, ControllerConfig::default());
            let report = run_phased(&device, &phased, &mut ctrl);
            (report.switch_sequence(), ctrl.stats().clone())
        };
        let (seq_a, stats_a) = run();
        let (seq_b, stats_b) = run();
        assert_eq!(seq_a, seq_b);
        assert_eq!(stats_a, stats_b);
    }

    #[test]
    fn warmup_under_zc_probes_before_deciding() {
        let device = DeviceProfile::jetson_tx2();
        let phased = PhasedWorkload::new(
            "zc-start",
            vec![WorkloadPhase {
                name: "heavy".into(),
                windows: 10,
                workload: workload(256 * 1024, 12),
            }],
        );
        let config = ControllerConfig {
            initial_model: CommModelKind::ZeroCopy,
            ..ControllerConfig::default()
        };
        let mut ctrl = controller(&device, config);
        let report = run_phased(&device, &phased, &mut ctrl);
        assert_eq!(ctrl.stats().probes, 1, "warmup under ZC must probe");
        // Cache-heavy work on the TX2 must end under a cached model.
        assert_ne!(
            *report.model_sequence().last().unwrap(),
            CommModelKind::ZeroCopy
        );
    }

    fn stream_profile(model: CommModelKind) -> ProfileReport {
        ProfileReport {
            workload: "stream".into(),
            model,
            miss_rate_l1_cpu: 0.2,
            miss_rate_ll_cpu: 0.5,
            hit_rate_l1_gpu: 0.5,
            gpu_transactions: 1000,
            gpu_transaction_bytes: 64.0,
            kernel_time: Picos::from_micros(50),
            cpu_time: Picos::from_micros(20),
            copy_time: Picos::from_micros(10),
            total_time: Picos::from_micros(80),
        }
    }

    fn stream_controller(initial: CommModelKind) -> AdaptController {
        let device = DeviceProfile::jetson_tx2();
        let config = ControllerConfig {
            initial_model: initial,
            ..ControllerConfig::default()
        };
        controller(&device, config)
    }

    #[test]
    fn implausible_counters_are_quarantined_not_decided_on() {
        let mut ctrl = stream_controller(CommModelKind::StandardCopy);
        for w in 0..4u64 {
            ctrl.observe_profile(w, stream_profile(CommModelKind::StandardCopy));
        }
        let decisions_before = ctrl.stats().decisions;
        let mut bad = stream_profile(CommModelKind::StandardCopy);
        bad.miss_rate_ll_cpu = f64::NAN;
        ctrl.observe_profile(4, bad);
        let mut wild = stream_profile(CommModelKind::StandardCopy);
        wild.hit_rate_l1_gpu = 7.5;
        ctrl.observe_profile(5, wild);
        assert_eq!(ctrl.stats().quarantined, 2);
        assert_eq!(ctrl.stats().decisions, decisions_before);
        assert!(ctrl.confidence() < 1.0);
    }

    #[test]
    fn gaps_and_duplicates_are_counted() {
        let mut ctrl = stream_controller(CommModelKind::StandardCopy);
        ctrl.observe_profile(0, stream_profile(CommModelKind::StandardCopy));
        ctrl.observe_profile(5, stream_profile(CommModelKind::StandardCopy));
        ctrl.observe_profile(5, stream_profile(CommModelKind::StandardCopy));
        ctrl.observe_profile(2, stream_profile(CommModelKind::StandardCopy));
        assert_eq!(ctrl.stats().lost_windows, 4);
        assert_eq!(ctrl.stats().duplicates, 2);
        assert_eq!(ctrl.stats().windows, 4);
    }

    #[test]
    fn collapsed_confidence_falls_back_to_sc() {
        let mut ctrl = stream_controller(CommModelKind::ZeroCopy);
        // One clean ZC window — still inside warmup, so the controller
        // has not probed away from ZC when the corruption starts.
        ctrl.observe_profile(0, stream_profile(CommModelKind::ZeroCopy));
        // Sustained corruption: every window quarantined, no recovery.
        let mut w = 1u64;
        let mut model = ctrl.active_model();
        while ctrl.confidence() > 0.0 && w < 32 {
            let mut bad = stream_profile(CommModelKind::ZeroCopy);
            bad.total_time = Picos::ZERO;
            model = ctrl.observe_profile(w, bad);
            w += 1;
        }
        assert_eq!(model, CommModelKind::StandardCopy, "no SC fallback");
        assert!(ctrl.stats().sc_fallbacks >= 1);
        assert!(matches!(
            ctrl.switch_log().last().map(|e| &e.reason),
            Some(SwitchReason::SafeFallback)
        ));
        // The stream heals: confidence recovers and adaptation resumes.
        for clean in w..w + 12 {
            ctrl.observe_profile(clean, stream_profile(CommModelKind::StandardCopy));
        }
        assert!(ctrl.confidence() > ctrl.config().sc_fallback_confidence);
    }

    #[test]
    fn low_confidence_suppresses_switching() {
        let device = DeviceProfile::jetson_tx2();
        let config = ControllerConfig {
            min_confidence_to_switch: 0.99,
            ..ControllerConfig::default()
        };
        let mut ctrl = controller(&device, config);
        // One lost window drops confidence below the (strict) switch bar
        // before warmup ends, so the initial decision cannot switch.
        ctrl.observe_profile(0, stream_profile(CommModelKind::StandardCopy));
        ctrl.observe_profile(2, stream_profile(CommModelKind::StandardCopy));
        for w in 3..10u64 {
            ctrl.observe_profile(w, stream_profile(CommModelKind::StandardCopy));
        }
        assert_eq!(
            ctrl.stats().switches,
            ctrl.stats().sc_fallbacks,
            "a switch went through under degraded confidence"
        );
    }

    #[test]
    fn degraded_replays_are_identical() {
        let run = || {
            let mut ctrl = stream_controller(CommModelKind::ZeroCopy);
            let mut models = Vec::new();
            for w in 0..40u64 {
                let mut p = stream_profile(if w % 2 == 0 {
                    CommModelKind::ZeroCopy
                } else {
                    CommModelKind::StandardCopy
                });
                match w % 7 {
                    0 => p.miss_rate_l1_cpu = f64::INFINITY,
                    3 => p.gpu_transaction_bytes = -1.0,
                    _ => {}
                }
                // Index stutter: every fifth window repeats, every
                // eleventh jumps.
                let idx = if w % 5 == 0 { w.saturating_sub(1) } else { w };
                let idx = if w % 11 == 0 { idx + 3 } else { idx };
                models.push(ctrl.observe_profile(idx, p));
            }
            (models, ctrl.stats().clone())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(ControllerConfig {
            probe_windows: 0,
            ..ControllerConfig::default()
        }
        .validate()
        .is_err());
        assert!(ControllerConfig {
            ring_capacity: 1,
            probe_windows: 4,
            ..ControllerConfig::default()
        }
        .validate()
        .is_err());
        assert!(ControllerConfig {
            decision_window: 0,
            ..ControllerConfig::default()
        }
        .validate()
        .is_err());
        assert!(ControllerConfig {
            confidence_drop: 1.5,
            ..ControllerConfig::default()
        }
        .validate()
        .is_err());
        assert!(ControllerConfig {
            min_confidence_to_switch: 0.2,
            sc_fallback_confidence: 0.5,
            ..ControllerConfig::default()
        }
        .validate()
        .is_err());
        assert!(ControllerConfig {
            max_plausible_usage_pct: f64::NAN,
            ..ControllerConfig::default()
        }
        .validate()
        .is_err());
        assert!(ControllerConfig::default().validate().is_ok());
    }
}
