//! # icomm-adapt — online phase-aware adaptation
//!
//! The paper's framework tunes an application *once*, offline: profile it,
//! classify it against the device characterization, pick a communication
//! model. This crate closes the loop at runtime. It consumes the same
//! profiler counters as a *stream* of windows, detects when the
//! application changes phase, and re-runs the very same decision flow
//! ([`icomm_core::decision::recommend`]) to switch the communication
//! model mid-run — without oscillating.
//!
//! Three layers:
//!
//! - [`window`]: the streaming substrate — a bounded [`WindowRing`] of
//!   profiled windows with their Eqn. 1/2 usage metrics (observable only
//!   under cache-enabled models, as on real hardware).
//! - [`detector`]: the [`PhaseDetector`] — EWMA baselines with a
//!   two-sided CUSUM drift test per channel (CPU usage, GPU usage,
//!   window time).
//! - [`controller`]: the [`AdaptController`] — a
//!   [`icomm_models::WindowPolicy`] that probes under SC when usage is
//!   unobservable, and guards every switch with hysteresis, a minimum
//!   dwell, and an explicit switch-cost payback gate.
//!
//! The pipeline is hardened for degraded counter streams: the ring
//! offers robust estimators (median, trimmed mean,
//! [`WindowRing::robust_profile`]), the detector can winsorize
//! heavy-tail outliers ([`DetectorConfig::outlier_clamp_pct`]), and the
//! controller quarantines implausible windows, tracks a stream
//! confidence score that gates switching, and retreats to standard copy
//! — the always-correct default — when confidence collapses
//! ([`AdaptController::observe_profile`]).
//!
//! [`evaluate`] packages a full experiment: adaptive vs the three static
//! models vs the clairvoyant per-phase oracle, with regret and
//! detection-latency metrics ([`AdaptationReport`]). The pipeline is
//! deterministic end to end: same trace, same configuration, same switch
//! sequence — see the replay test in `controller`.
//!
//! See the repository README ("Online adaptation") for the controller
//! state machine and the `icomm adapt` CLI entry point, and
//! `docs/RESULTS.md` for the measured regret of the three-phase case
//! studies.
//!
//! # Example
//!
//! ```
//! use icomm_adapt::{evaluate, ControllerConfig};
//! use icomm_microbench::quick_characterize_device;
//! use icomm_models::{CommModelKind, PhasedWorkload, WorkloadPhase};
//! use icomm_models::{GpuPhase, Workload};
//! use icomm_soc::cache::AccessKind;
//! use icomm_soc::units::ByteSize;
//! use icomm_soc::DeviceProfile;
//! use icomm_trace::Pattern;
//!
//! let make = |passes| {
//!     Workload::builder("w")
//!         .bytes_to_gpu(ByteSize::kib(128))
//!         .gpu(GpuPhase {
//!             compute_work: 1 << 14,
//!             shared_accesses: Pattern::Repeat {
//!                 body: Box::new(Pattern::Linear {
//!                     start: 0,
//!                     bytes: 128 * 1024,
//!                     txn_bytes: 64,
//!                     kind: AccessKind::Read,
//!                 }),
//!                 times: passes,
//!             },
//!             private_accesses: None,
//!         })
//!         .build()
//! };
//! let phased = PhasedWorkload::new(
//!     "two-phase",
//!     vec![
//!         WorkloadPhase { name: "light".into(), windows: 6, workload: make(1) },
//!         WorkloadPhase { name: "heavy".into(), windows: 6, workload: make(10) },
//!     ],
//! );
//! let device = DeviceProfile::jetson_agx_xavier();
//! let characterization = quick_characterize_device(&device);
//! let report = evaluate(&device, &characterization, &phased, ControllerConfig::default());
//! assert_eq!(report.adaptive.windows.len(), 12);
//! assert!(report.oracle.total_time <= report.adaptive.total_time);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod controller;
pub mod detector;
pub mod report;
pub mod window;

pub use controller::{AdaptController, AdaptStats, ControllerConfig, SwitchEvent, SwitchReason};
pub use detector::{DetectorConfig, Drift, PhaseDetector};
pub use report::{evaluate, AdaptationReport};
pub use window::{WindowRing, WindowSample};
