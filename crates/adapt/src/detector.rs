//! Phase-change detection over streaming counters: EWMA baselines with a
//! two-sided CUSUM drift test.
//!
//! The detector watches three channels of the window stream:
//!
//! - **cpu-usage** — Eqn. 1 CPU LLC usage in percent (absolute
//!   deviations);
//! - **gpu-usage** — Eqn. 2 GPU LLC usage in percent (absolute
//!   deviations);
//! - **window-time** — the window's end-to-end time (relative percent
//!   deviations, so the channel is scale-free across models and
//!   workloads).
//!
//! The usage channels are only fed when the caches are enabled (SC/UM);
//! under zero copy the time channel alone carries the drift signal —
//! exactly the observability split of the paper's profiling step.
//!
//! Each channel keeps an exponentially weighted moving average as its
//! baseline and a two-sided CUSUM over the deviations from it:
//! `s⁺ ← max(0, s⁺ + (x − baseline) − k)` and
//! `s⁻ ← max(0, s⁻ + (baseline − x) − k)`; the channel fires when either
//! side exceeds `h`. The slack `k` absorbs benign jitter, `h` sets the
//! detection/false-alarm trade-off. Everything is pure arithmetic over
//! the sample stream — the detector is deterministic by construction, so
//! replaying the same window stream through the same configuration
//! always yields the same drift sequence.

use serde::{Deserialize, Serialize};

/// Tuning knobs of the [`PhaseDetector`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// EWMA smoothing factor in `(0, 1]`; higher tracks faster.
    pub ewma_alpha: f64,
    /// CUSUM slack `k` in percent — deviation absorbed per sample before
    /// the sums accumulate.
    pub cusum_k_pct: f64,
    /// CUSUM decision bound `h` in percent — a channel fires when a sum
    /// exceeds it.
    pub cusum_h_pct: f64,
    /// Samples a channel must observe before it may fire — the baseline
    /// needs this long to settle after a reset.
    pub warmup_samples: u32,
    /// When set, per-sample deviations are winsorized to `±clamp` percent
    /// before entering the CUSUM sums and the EWMA update. A single
    /// heavy-tail outlier then contributes at most `clamp − k` to a sum
    /// and cannot fire the channel alone, while a *sustained* shift still
    /// accumulates and fires — the robust variant for noisy counter
    /// streams. `None` (the default) keeps the classic unclamped test.
    pub outlier_clamp_pct: Option<f64>,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            ewma_alpha: 0.3,
            cusum_k_pct: 1.0,
            cusum_h_pct: 4.0,
            warmup_samples: 2,
            outlier_clamp_pct: None,
        }
    }
}

impl DetectorConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0) {
            return Err(format!("ewma_alpha {} outside (0, 1]", self.ewma_alpha));
        }
        if !(self.cusum_k_pct >= 0.0 && self.cusum_k_pct.is_finite()) {
            return Err(format!("cusum_k_pct {} invalid", self.cusum_k_pct));
        }
        if !(self.cusum_h_pct > 0.0 && self.cusum_h_pct.is_finite()) {
            return Err(format!("cusum_h_pct {} invalid", self.cusum_h_pct));
        }
        if let Some(clamp) = self.outlier_clamp_pct {
            if !(clamp > 0.0 && clamp.is_finite()) {
                return Err(format!("outlier_clamp_pct {clamp} invalid"));
            }
            if clamp <= self.cusum_k_pct {
                return Err(format!(
                    "outlier_clamp_pct {clamp} not above cusum_k_pct {}: no deviation could ever accumulate",
                    self.cusum_k_pct
                ));
            }
        }
        Ok(())
    }
}

/// How a channel turns samples into deviations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scale {
    /// Deviation is `x − baseline` (for metrics already in percent).
    Absolute,
    /// Deviation is `(x − baseline) / baseline × 100` (for raw
    /// magnitudes like times).
    Relative,
}

/// One monitored metric: EWMA baseline plus two-sided CUSUM.
#[derive(Debug, Clone)]
struct Channel {
    name: &'static str,
    scale: Scale,
    baseline: Option<f64>,
    s_pos: f64,
    s_neg: f64,
    samples: u32,
}

impl Channel {
    fn new(name: &'static str, scale: Scale) -> Self {
        Channel {
            name,
            scale,
            baseline: None,
            s_pos: 0.0,
            s_neg: 0.0,
            samples: 0,
        }
    }

    fn reset(&mut self) {
        self.baseline = None;
        self.s_pos = 0.0;
        self.s_neg = 0.0;
        self.samples = 0;
    }

    /// Feeds one sample; returns whether the channel fired.
    fn observe(&mut self, x: f64, cfg: &DetectorConfig) -> bool {
        if !x.is_finite() {
            return false;
        }
        let Some(baseline) = self.baseline else {
            self.baseline = Some(x);
            self.samples = 1;
            return false;
        };
        let mut deviation = match self.scale {
            Scale::Absolute => x - baseline,
            Scale::Relative => {
                if baseline.abs() < f64::EPSILON {
                    0.0
                } else {
                    (x - baseline) / baseline * 100.0
                }
            }
        };
        if let Some(clamp) = cfg.outlier_clamp_pct {
            deviation = deviation.clamp(-clamp, clamp);
        }
        self.s_pos = (self.s_pos + deviation - cfg.cusum_k_pct).max(0.0);
        self.s_neg = (self.s_neg - deviation - cfg.cusum_k_pct).max(0.0);
        let fired = self.samples >= cfg.warmup_samples
            && (self.s_pos > cfg.cusum_h_pct || self.s_neg > cfg.cusum_h_pct);
        // The baseline adapts *after* the test so a step change is judged
        // against the pre-step average. Under winsorization the clamped
        // sample feeds the EWMA too, so one outlier cannot drag the
        // baseline to a fantasy operating point.
        let tracked = match (cfg.outlier_clamp_pct, self.scale) {
            (None, _) => x,
            (Some(_), Scale::Absolute) => baseline + deviation,
            (Some(_), Scale::Relative) => baseline * (1.0 + deviation / 100.0),
        };
        self.baseline = Some(baseline + cfg.ewma_alpha * (tracked - baseline));
        self.samples += 1;
        fired
    }
}

/// A detected phase change: which channels crossed their CUSUM bound.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Drift {
    /// Names of the channels that fired (`cpu-usage`, `gpu-usage`,
    /// `window-time`), in fixed order.
    pub channels: Vec<String>,
}

/// Streaming phase-change detector over the three window channels.
#[derive(Debug, Clone)]
pub struct PhaseDetector {
    config: DetectorConfig,
    cpu: Channel,
    gpu: Channel,
    time: Channel,
}

impl PhaseDetector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid
    /// ([`DetectorConfig::validate`]).
    pub fn new(config: DetectorConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid detector config: {e}");
        }
        PhaseDetector {
            config,
            cpu: Channel::new("cpu-usage", Scale::Absolute),
            gpu: Channel::new("gpu-usage", Scale::Absolute),
            time: Channel::new("window-time", Scale::Relative),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Feeds one window: its end-to-end time in picoseconds and, when
    /// observable, its usage metrics. Returns the drift verdict for this
    /// window.
    pub fn observe(
        &mut self,
        window_time_ps: f64,
        cpu_usage_pct: Option<f64>,
        gpu_usage_pct: Option<f64>,
    ) -> Option<Drift> {
        let cfg = self.config;
        let mut channels = Vec::new();
        if let Some(u) = cpu_usage_pct {
            if self.cpu.observe(u, &cfg) {
                channels.push(self.cpu.name.to_string());
            }
        }
        if let Some(u) = gpu_usage_pct {
            if self.gpu.observe(u, &cfg) {
                channels.push(self.gpu.name.to_string());
            }
        }
        if self.time.observe(window_time_ps, &cfg) {
            channels.push(self.time.name.to_string());
        }
        (!channels.is_empty()).then_some(Drift { channels })
    }

    /// Clears all baselines and sums — called after a model switch, when
    /// every channel's operating point legitimately moves.
    pub fn reset(&mut self) {
        self.cpu.reset();
        self.gpu.reset();
        self.time.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> PhaseDetector {
        PhaseDetector::new(DetectorConfig::default())
    }

    #[test]
    fn stationary_stream_never_fires() {
        let mut d = detector();
        for _ in 0..100 {
            assert_eq!(d.observe(1e9, Some(20.0), Some(5.0)), None);
        }
    }

    #[test]
    fn jitter_below_slack_is_absorbed() {
        let mut d = detector();
        for i in 0..200 {
            let wiggle = if i % 2 == 0 { 0.4 } else { -0.4 };
            assert_eq!(
                d.observe(1e9 * (1.0 + wiggle / 100.0), Some(20.0 + wiggle), None),
                None,
                "fired at sample {i}"
            );
        }
    }

    #[test]
    fn step_change_fires_fast_and_names_the_channel() {
        let mut d = detector();
        for _ in 0..10 {
            assert_eq!(d.observe(1e9, Some(20.0), Some(5.0)), None);
        }
        // Usage jumps 30 points: with k=1, h=4 the first post-step window
        // already accumulates ~29 > 4.
        let drift = d.observe(1e9, Some(50.0), Some(5.0)).expect("must fire");
        assert_eq!(drift.channels, vec!["cpu-usage".to_string()]);
    }

    #[test]
    fn time_channel_is_relative_and_two_sided() {
        let mut d = detector();
        for _ in 0..10 {
            assert_eq!(d.observe(2e9, None, None), None);
        }
        // A 50% drop in window time must fire just like a rise would.
        let drift = d.observe(1e9, None, None).expect("must fire");
        assert_eq!(drift.channels, vec!["window-time".to_string()]);
    }

    #[test]
    fn warmup_suppresses_the_first_samples() {
        let mut d = detector();
        // Baseline sample, then an immediate huge step: still inside the
        // warmup, so no verdict.
        assert_eq!(d.observe(1e9, Some(1.0), None), None);
        assert_eq!(d.observe(1e9, Some(90.0), None), None);
    }

    #[test]
    fn reset_clears_state() {
        let mut d = detector();
        for _ in 0..5 {
            d.observe(1e9, Some(20.0), None);
        }
        d.reset();
        // Post-reset the first sample only seeds the baseline.
        assert_eq!(d.observe(5e9, Some(80.0), None), None);
    }

    #[test]
    fn detection_is_deterministic() {
        let run = || {
            let mut d = detector();
            let mut fired = Vec::new();
            for i in 0..50u64 {
                let usage = if i < 25 { 10.0 } else { 40.0 };
                if d.observe(1e9, Some(usage), Some(usage / 2.0)).is_some() {
                    fired.push(i);
                }
            }
            fired
        };
        assert_eq!(run(), run());
        assert!(!run().is_empty());
    }

    #[test]
    fn clamp_absorbs_single_outliers_but_not_sustained_shifts() {
        let cfg = DetectorConfig {
            outlier_clamp_pct: Some(3.0),
            ..DetectorConfig::default()
        };
        let mut d = PhaseDetector::new(cfg);
        for _ in 0..10 {
            assert_eq!(d.observe(1e9, Some(20.0), None), None);
        }
        // A lone 60-point spike: clamped to +3, sum reaches 2 < h = 4.
        assert_eq!(d.observe(1e9, Some(80.0), None), None, "outlier fired");
        // Back to steady: the sum drains, the baseline barely moved.
        for _ in 0..5 {
            assert_eq!(d.observe(1e9, Some(20.0), None), None);
        }
        // A sustained shift accumulates (3 - 1) per window and still fires.
        let mut fired = false;
        for _ in 0..6 {
            fired |= d.observe(1e9, Some(80.0), None).is_some();
        }
        assert!(fired, "sustained shift never fired under clamp");
    }

    #[test]
    fn invalid_clamp_is_rejected() {
        let bad = |clamp| DetectorConfig {
            outlier_clamp_pct: Some(clamp),
            ..DetectorConfig::default()
        };
        assert!(bad(0.0).validate().is_err());
        assert!(bad(f64::NAN).validate().is_err());
        // Clamp at or below the slack k can never accumulate.
        assert!(bad(1.0).validate().is_err());
        assert!(bad(3.0).validate().is_ok());
    }

    #[test]
    fn invalid_config_is_rejected() {
        assert!(DetectorConfig {
            ewma_alpha: 0.0,
            ..DetectorConfig::default()
        }
        .validate()
        .is_err());
        assert!(DetectorConfig {
            cusum_h_pct: -1.0,
            ..DetectorConfig::default()
        }
        .validate()
        .is_err());
        assert!(DetectorConfig::default().validate().is_ok());
    }
}
