//! Adaptation evaluation: adaptive vs static vs oracle, with regret and
//! detection-latency accounting.
//!
//! [`evaluate`] drives the [`AdaptController`] over a phased workload and
//! measures it against the three static baselines and the clairvoyant
//! per-phase oracle ([`icomm_models::oracle_phased`]). The headline
//! metric is **regret**: how much slower the adaptive run was than the
//! oracle, in percent — the price of having to *detect* phases instead of
//! knowing them.

use std::fmt;

use serde::{Deserialize, Serialize};

use icomm_microbench::DeviceCharacterization;
use icomm_models::{oracle_phased, run_phased, static_phased, PhasedRunReport, PhasedWorkload};
use icomm_soc::DeviceProfile;

use crate::controller::{AdaptController, AdaptStats, ControllerConfig, SwitchEvent};

/// The outcome of evaluating online adaptation on one phased workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptationReport {
    /// Phased workload name.
    pub workload: String,
    /// Board name.
    pub device: String,
    /// The adaptive run.
    pub adaptive: PhasedRunReport,
    /// One static run per communication model.
    pub statics: Vec<PhasedRunReport>,
    /// The per-phase oracle run.
    pub oracle: PhasedRunReport,
    /// Controller counters.
    pub stats: AdaptStats,
    /// Every switch the controller took.
    pub switch_log: Vec<SwitchEvent>,
    /// Phase-boundary windows of the workload.
    pub boundaries: Vec<u64>,
    /// Per boundary: windows from the boundary to the first drift
    /// verdict attributed to it (1 = detected on the first window of the
    /// new phase); `None` when the boundary went undetected.
    pub detection_latency_windows: Vec<Option<u64>>,
    /// Regret of the adaptive run vs the oracle, percent.
    pub regret_pct: f64,
}

impl AdaptationReport {
    /// The fastest static run.
    pub fn best_static(&self) -> &PhasedRunReport {
        self.statics
            .iter()
            .min_by_key(|r| r.total_time)
            .expect("three static baselines")
    }

    /// Whether the adaptive run beat every static model.
    pub fn beats_best_static(&self) -> bool {
        self.adaptive.total_time < self.best_static().total_time
    }

    /// Mean detection latency over the detected boundaries, in windows.
    pub fn mean_detection_latency(&self) -> Option<f64> {
        let detected: Vec<u64> = self
            .detection_latency_windows
            .iter()
            .flatten()
            .copied()
            .collect();
        (!detected.is_empty()).then(|| detected.iter().sum::<u64>() as f64 / detected.len() as f64)
    }
}

impl fmt::Display for AdaptationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = |r: &PhasedRunReport| r.total_time.as_secs_f64() * 1e3;
        writeln!(
            f,
            "adaptation of '{}' on {} ({} windows, {} phases)",
            self.workload,
            self.device,
            self.adaptive.windows.len(),
            self.boundaries.len() + 1
        )?;
        writeln!(f)?;
        writeln!(
            f,
            "  {:<12} {:>12} {:>9}",
            "policy", "total (ms)", "switches"
        )?;
        for r in std::iter::once(&self.adaptive)
            .chain(self.statics.iter())
            .chain(std::iter::once(&self.oracle))
        {
            writeln!(f, "  {:<12} {:>12.3} {:>9}", r.policy, ms(r), r.switches)?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "  regret vs oracle: {:.2}%   beats best static: {}",
            self.regret_pct,
            if self.beats_best_static() {
                "yes"
            } else {
                "no"
            }
        )?;
        match self.mean_detection_latency() {
            Some(l) => writeln!(f, "  mean detection latency: {l:.1} windows")?,
            None => writeln!(f, "  mean detection latency: n/a (no boundaries detected)")?,
        }
        for (i, ev) in self.switch_log.iter().enumerate() {
            let sep = if i + 1 == self.switch_log.len() {
                ""
            } else {
                "\n"
            };
            write!(
                f,
                "  switch @{:>4}: {} -> {} ({}){sep}",
                ev.window,
                ev.from.abbrev(),
                ev.to.abbrev(),
                ev.reason
            )?;
        }
        Ok(())
    }
}

/// Attributes each drift verdict to the phase boundary it follows.
fn detection_latencies(boundaries: &[u64], total_windows: u64, drifts: &[u64]) -> Vec<Option<u64>> {
    boundaries
        .iter()
        .enumerate()
        .map(|(i, &b)| {
            let next = boundaries.get(i + 1).copied().unwrap_or(total_windows);
            drifts
                .iter()
                .find(|&&w| w >= b && w < next)
                .map(|&w| w - b + 1)
        })
        .collect()
}

/// Runs the adaptive controller and every baseline over `phased`,
/// returning the full comparison.
pub fn evaluate(
    device: &DeviceProfile,
    characterization: &DeviceCharacterization,
    phased: &PhasedWorkload,
    config: ControllerConfig,
) -> AdaptationReport {
    let mut controller = AdaptController::new(device.clone(), characterization.clone(), config);
    let adaptive = run_phased(device, phased, &mut controller);
    let statics: Vec<PhasedRunReport> = icomm_models::candidate_models(device)
        .into_iter()
        .map(|kind| static_phased(device, phased, kind))
        .collect();
    let oracle = oracle_phased(device, phased);
    let regret_pct = {
        let a = adaptive.total_time.as_picos() as f64;
        let o = oracle.total_time.as_picos() as f64;
        if o > 0.0 {
            (a - o) / o * 100.0
        } else {
            0.0
        }
    };
    let boundaries = phased.boundaries();
    let detection_latency_windows = detection_latencies(
        &boundaries,
        phased.total_windows(),
        &controller.stats().drift_windows,
    );
    AdaptationReport {
        workload: phased.name.clone(),
        device: device.name.clone(),
        adaptive,
        statics,
        oracle,
        stats: controller.stats().clone(),
        switch_log: controller.switch_log().to_vec(),
        boundaries,
        detection_latency_windows,
        regret_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_attribution() {
        // Boundaries at 10 and 20 in a 30-window run.
        let lat = detection_latencies(&[10, 20], 30, &[10, 23]);
        assert_eq!(lat, vec![Some(1), Some(4)]);
        // An early drift belongs to no boundary; a missed boundary is None.
        let lat = detection_latencies(&[10, 20], 30, &[3, 12]);
        assert_eq!(lat, vec![Some(3), None]);
        assert_eq!(
            detection_latencies(&[], 30, &[5]),
            Vec::<Option<u64>>::new()
        );
    }
}
