//! The streaming window buffer: a bounded ring of recent profiler
//! windows.
//!
//! The adaptation runtime never sees the workload — only a stream of
//! per-window [`ProfileReport`]s. The ring keeps the most recent windows
//! together with the cache-usage metrics derived from them, so the
//! controller can aggregate over a probe interval or inspect the recent
//! history when deciding.
//!
//! Cache usage (Eqns. 1 and 2) is only *observable* when the caches are
//! enabled, i.e. under SC or UM; windows executed under zero copy carry
//! `None` usage samples, mirroring what a profiler on real hardware can
//! and cannot see.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use icomm_core::usage::{cpu_usage_of, gpu_usage_of};
use icomm_microbench::DeviceCharacterization;
use icomm_models::CommModelKind;
use icomm_profile::ProfileReport;
use icomm_soc::units::Picos;

/// One profiled window together with its derived usage metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowSample {
    /// Window index in the run (0-based).
    pub window: u64,
    /// Profiler output for the window.
    pub profile: ProfileReport,
    /// CPU LLC usage (Eqn. 1, percent) — `None` when the window ran with
    /// caches bypassed (zero copy), where the metric is unobservable.
    pub cpu_usage_pct: Option<f64>,
    /// GPU LLC usage (Eqn. 2, percent) — same observability rule.
    pub gpu_usage_pct: Option<f64>,
}

impl WindowSample {
    /// Derives a sample from a profiled window against a device
    /// characterization.
    pub fn from_profile(
        window: u64,
        profile: ProfileReport,
        device: &DeviceCharacterization,
    ) -> Self {
        let observable = profile.model != CommModelKind::ZeroCopy;
        let cpu = observable.then(|| cpu_usage_of(&profile));
        let gpu = observable.then(|| gpu_usage_of(&profile, device));
        WindowSample {
            window,
            profile,
            cpu_usage_pct: cpu,
            gpu_usage_pct: gpu,
        }
    }

    /// Whether the window's cache usage was observable.
    pub fn usage_observable(&self) -> bool {
        self.cpu_usage_pct.is_some()
    }
}

/// Bounded ring buffer of the most recent [`WindowSample`]s.
#[derive(Debug, Clone)]
pub struct WindowRing {
    capacity: usize,
    buf: VecDeque<WindowSample>,
}

impl WindowRing {
    /// Creates a ring holding up to `capacity` windows.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a window ring needs capacity");
        WindowRing {
            capacity,
            buf: VecDeque::with_capacity(capacity),
        }
    }

    /// Appends a sample, evicting the oldest when full.
    pub fn push(&mut self, sample: WindowSample) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(sample);
    }

    /// Number of buffered windows.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no windows yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of windows retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The most recent sample.
    pub fn latest(&self) -> Option<&WindowSample> {
        self.buf.back()
    }

    /// Iterates the buffered windows, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &WindowSample> {
        self.buf.iter()
    }

    /// Iterates the `n` most recent windows, oldest of them first.
    pub fn recent(&self, n: usize) -> impl Iterator<Item = &WindowSample> {
        let skip = self.buf.len().saturating_sub(n);
        self.buf.iter().skip(skip)
    }

    /// Mean GPU usage over the `n` most recent windows with observable
    /// usage; `None` when none of them were observable. Non-finite
    /// samples (a corrupted counter that slipped through) are skipped.
    pub fn mean_gpu_usage(&self, n: usize) -> Option<f64> {
        mean(self.recent(n).filter_map(|s| s.gpu_usage_pct))
    }

    /// Mean CPU usage over the `n` most recent windows with observable
    /// usage.
    pub fn mean_cpu_usage(&self, n: usize) -> Option<f64> {
        mean(self.recent(n).filter_map(|s| s.cpu_usage_pct))
    }

    /// Median GPU usage over the `n` most recent observable windows — the
    /// mean's robust sibling: one outlier window cannot move it.
    pub fn median_gpu_usage(&self, n: usize) -> Option<f64> {
        median(self.recent(n).filter_map(|s| s.gpu_usage_pct))
    }

    /// Median CPU usage over the `n` most recent observable windows.
    pub fn median_cpu_usage(&self, n: usize) -> Option<f64> {
        median(self.recent(n).filter_map(|s| s.cpu_usage_pct))
    }

    /// Trimmed mean of GPU usage over the `n` most recent observable
    /// windows: sorts the samples, discards a `trim` fraction from each
    /// end, and averages the rest. `trim` is clamped to `[0, 0.45]`; at
    /// `0` this is the plain mean, near `0.5` it approaches the median.
    pub fn trimmed_gpu_usage(&self, n: usize, trim: f64) -> Option<f64> {
        trimmed_mean(self.recent(n).filter_map(|s| s.gpu_usage_pct), trim)
    }

    /// Trimmed mean of CPU usage over the `n` most recent observable
    /// windows.
    pub fn trimmed_cpu_usage(&self, n: usize, trim: f64) -> Option<f64> {
        trimmed_mean(self.recent(n).filter_map(|s| s.cpu_usage_pct), trim)
    }

    /// Field-wise median profile over the `n` most recent windows: each
    /// counter of the returned [`ProfileReport`] is the median of that
    /// counter across the windows, with non-finite samples skipped.
    ///
    /// Identity and model are taken from the newest window. With `n == 1`
    /// this is exactly the latest profile, so a controller configured for
    /// single-window decisions behaves as if the estimator were absent.
    /// With `n > 1` a single noisy or outlier window cannot steer a
    /// decision — the robust substrate the decision flow runs on when the
    /// counter stream is degraded.
    pub fn robust_profile(&self, n: usize) -> Option<ProfileReport> {
        let latest = self.latest()?;
        let windows: Vec<&WindowSample> = self.recent(n).collect();
        let f = |get: fn(&ProfileReport) -> f64| {
            median(windows.iter().map(|s| get(&s.profile))).unwrap_or(0.0)
        };
        let t = |get: fn(&ProfileReport) -> Picos| {
            median_u64(windows.iter().map(|s| get(&s.profile).0)).map_or(Picos::ZERO, Picos)
        };
        Some(ProfileReport {
            workload: latest.profile.workload.clone(),
            model: latest.profile.model,
            miss_rate_l1_cpu: f(|p| p.miss_rate_l1_cpu),
            miss_rate_ll_cpu: f(|p| p.miss_rate_ll_cpu),
            hit_rate_l1_gpu: f(|p| p.hit_rate_l1_gpu),
            gpu_transactions: median_u64(windows.iter().map(|s| s.profile.gpu_transactions))
                .unwrap_or(0),
            gpu_transaction_bytes: f(|p| p.gpu_transaction_bytes),
            kernel_time: t(|p| p.kernel_time),
            cpu_time: t(|p| p.cpu_time),
            copy_time: t(|p| p.copy_time),
            total_time: t(|p| p.total_time),
        })
    }
}

fn mean(values: impl Iterator<Item = f64>) -> Option<f64> {
    let mut sum = 0.0;
    let mut count = 0u32;
    for v in values.filter(|v| v.is_finite()) {
        sum += v;
        count += 1;
    }
    (count > 0).then(|| sum / count as f64)
}

fn sorted_finite(values: impl Iterator<Item = f64>) -> Vec<f64> {
    let mut v: Vec<f64> = values.filter(|v| v.is_finite()).collect();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite floats compare"));
    v
}

fn median(values: impl Iterator<Item = f64>) -> Option<f64> {
    let v = sorted_finite(values);
    match v.len() {
        0 => None,
        n if n % 2 == 1 => Some(v[n / 2]),
        n => Some((v[n / 2 - 1] + v[n / 2]) / 2.0),
    }
}

fn median_u64(values: impl Iterator<Item = u64>) -> Option<u64> {
    let mut v: Vec<u64> = values.collect();
    v.sort_unstable();
    match v.len() {
        0 => None,
        n if n % 2 == 1 => Some(v[n / 2]),
        // Midpoint of the central pair, without overflow.
        n => Some(v[n / 2 - 1] / 2 + v[n / 2] / 2 + (v[n / 2 - 1] % 2 + v[n / 2] % 2) / 2),
    }
}

fn trimmed_mean(values: impl Iterator<Item = f64>, trim: f64) -> Option<f64> {
    let v = sorted_finite(values);
    if v.is_empty() {
        return None;
    }
    let cut = (v.len() as f64 * trim.clamp(0.0, 0.45)) as usize;
    let kept = &v[cut..v.len() - cut];
    mean(kept.iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn characterization() -> DeviceCharacterization {
        DeviceCharacterization {
            device: "test".into(),
            gpu_cache_max_throughput: 100e9,
            gpu_zc_throughput: 10e9,
            gpu_um_throughput: 100e9,
            gpu_cache_threshold_pct: 10.0,
            gpu_cache_zone2_pct: Some(50.0),
            cpu_cache_threshold_pct: 15.0,
            sc_zc_max_speedup: 2.5,
            zc_sc_max_speedup: 70.0,
            upm_supported: false,
            gpu_upm_throughput: 0.0,
            upm_kernel_penalty: 1.0,
            um_upm_max_speedup: 1.0,
        }
    }

    fn profile(model: CommModelKind) -> ProfileReport {
        ProfileReport {
            workload: "t".into(),
            model,
            miss_rate_l1_cpu: 0.2,
            miss_rate_ll_cpu: 0.5,
            hit_rate_l1_gpu: 0.5,
            gpu_transactions: 1000,
            gpu_transaction_bytes: 64.0,
            kernel_time: Picos::from_micros(50),
            cpu_time: Picos::from_micros(20),
            copy_time: Picos::from_micros(10),
            total_time: Picos::from_micros(80),
        }
    }

    #[test]
    fn usage_only_observable_under_cached_models() {
        let c = characterization();
        let sc = WindowSample::from_profile(0, profile(CommModelKind::StandardCopy), &c);
        assert!(sc.usage_observable());
        assert!(sc.gpu_usage_pct.unwrap() > 0.0);
        let zc = WindowSample::from_profile(1, profile(CommModelKind::ZeroCopy), &c);
        assert!(!zc.usage_observable());
        assert_eq!(zc.cpu_usage_pct, None);
        assert_eq!(zc.gpu_usage_pct, None);
    }

    #[test]
    fn ring_evicts_oldest_and_aggregates_recent() {
        let c = characterization();
        let mut ring = WindowRing::new(3);
        for w in 0..5u64 {
            ring.push(WindowSample::from_profile(
                w,
                profile(CommModelKind::StandardCopy),
                &c,
            ));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.iter().next().unwrap().window, 2);
        assert_eq!(ring.latest().unwrap().window, 4);
        assert_eq!(ring.recent(2).count(), 2);
        let mean = ring.mean_gpu_usage(3).unwrap();
        assert!((mean - ring.latest().unwrap().gpu_usage_pct.unwrap()).abs() < 1e-12);
    }

    #[test]
    fn means_skip_unobservable_windows() {
        let c = characterization();
        let mut ring = WindowRing::new(4);
        ring.push(WindowSample::from_profile(
            0,
            profile(CommModelKind::ZeroCopy),
            &c,
        ));
        assert_eq!(ring.mean_gpu_usage(4), None);
        ring.push(WindowSample::from_profile(
            1,
            profile(CommModelKind::StandardCopy),
            &c,
        ));
        assert!(ring.mean_gpu_usage(4).is_some());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = WindowRing::new(0);
    }

    fn push_with_kernel_time(ring: &mut WindowRing, window: u64, micros: u64) {
        let c = characterization();
        let mut p = profile(CommModelKind::StandardCopy);
        p.kernel_time = Picos::from_micros(micros);
        ring.push(WindowSample::from_profile(window, p, &c));
    }

    #[test]
    fn median_and_trimmed_mean_shrug_off_outliers() {
        let c = characterization();
        let mut ring = WindowRing::new(8);
        for w in 0..4u64 {
            let mut p = profile(CommModelKind::StandardCopy);
            // One wild outlier window among steady ones.
            if w == 2 {
                p.gpu_transactions = 1_000_000;
            }
            ring.push(WindowSample::from_profile(w, p, &c));
        }
        let steady = ring.iter().next().unwrap().gpu_usage_pct.unwrap();
        let median = ring.median_gpu_usage(4).unwrap();
        assert!(
            (median - steady).abs() < 1e-9,
            "median {median} moved off steady {steady}"
        );
        let trimmed = ring.trimmed_gpu_usage(4, 0.25).unwrap();
        assert!((trimmed - steady).abs() < 1e-9);
        // The plain mean is dragged by the outlier — that is the point.
        assert!(ring.mean_gpu_usage(4).unwrap() > steady * 2.0);
    }

    #[test]
    fn aggregates_skip_non_finite_samples() {
        let c = characterization();
        let mut ring = WindowRing::new(4);
        let mut bad = profile(CommModelKind::StandardCopy);
        bad.gpu_transaction_bytes = f64::NAN;
        ring.push(WindowSample::from_profile(0, bad, &c));
        ring.push(WindowSample::from_profile(
            1,
            profile(CommModelKind::StandardCopy),
            &c,
        ));
        let mean = ring.mean_gpu_usage(4).unwrap();
        let median = ring.median_gpu_usage(4).unwrap();
        assert!(mean.is_finite() && median.is_finite());
    }

    #[test]
    fn robust_profile_is_fieldwise_median() {
        let mut ring = WindowRing::new(8);
        for (w, micros) in [(0, 50), (1, 52), (2, 5000), (3, 51)] {
            push_with_kernel_time(&mut ring, w, micros);
        }
        let robust = ring.robust_profile(4).unwrap();
        // Median of {50, 52, 5000, 51} us is 51.5 us.
        assert_eq!(robust.kernel_time, Picos(51_500_000));
        assert_eq!(robust.workload, "t");
        // A single-window "median" is the latest profile verbatim.
        let one = ring.robust_profile(1).unwrap();
        assert_eq!(one, ring.latest().unwrap().profile);
        assert!(WindowRing::new(2).robust_profile(3).is_none());
    }
}
