//! The streaming window buffer: a bounded ring of recent profiler
//! windows.
//!
//! The adaptation runtime never sees the workload — only a stream of
//! per-window [`ProfileReport`]s. The ring keeps the most recent windows
//! together with the cache-usage metrics derived from them, so the
//! controller can aggregate over a probe interval or inspect the recent
//! history when deciding.
//!
//! Cache usage (Eqns. 1 and 2) is only *observable* when the caches are
//! enabled, i.e. under SC or UM; windows executed under zero copy carry
//! `None` usage samples, mirroring what a profiler on real hardware can
//! and cannot see.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use icomm_core::usage::{cpu_usage_of, gpu_usage_of};
use icomm_microbench::DeviceCharacterization;
use icomm_models::CommModelKind;
use icomm_profile::ProfileReport;

/// One profiled window together with its derived usage metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowSample {
    /// Window index in the run (0-based).
    pub window: u64,
    /// Profiler output for the window.
    pub profile: ProfileReport,
    /// CPU LLC usage (Eqn. 1, percent) — `None` when the window ran with
    /// caches bypassed (zero copy), where the metric is unobservable.
    pub cpu_usage_pct: Option<f64>,
    /// GPU LLC usage (Eqn. 2, percent) — same observability rule.
    pub gpu_usage_pct: Option<f64>,
}

impl WindowSample {
    /// Derives a sample from a profiled window against a device
    /// characterization.
    pub fn from_profile(
        window: u64,
        profile: ProfileReport,
        device: &DeviceCharacterization,
    ) -> Self {
        let observable = profile.model != CommModelKind::ZeroCopy;
        let cpu = observable.then(|| cpu_usage_of(&profile));
        let gpu = observable.then(|| gpu_usage_of(&profile, device));
        WindowSample {
            window,
            profile,
            cpu_usage_pct: cpu,
            gpu_usage_pct: gpu,
        }
    }

    /// Whether the window's cache usage was observable.
    pub fn usage_observable(&self) -> bool {
        self.cpu_usage_pct.is_some()
    }
}

/// Bounded ring buffer of the most recent [`WindowSample`]s.
#[derive(Debug, Clone)]
pub struct WindowRing {
    capacity: usize,
    buf: VecDeque<WindowSample>,
}

impl WindowRing {
    /// Creates a ring holding up to `capacity` windows.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a window ring needs capacity");
        WindowRing {
            capacity,
            buf: VecDeque::with_capacity(capacity),
        }
    }

    /// Appends a sample, evicting the oldest when full.
    pub fn push(&mut self, sample: WindowSample) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(sample);
    }

    /// Number of buffered windows.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no windows yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of windows retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The most recent sample.
    pub fn latest(&self) -> Option<&WindowSample> {
        self.buf.back()
    }

    /// Iterates the buffered windows, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &WindowSample> {
        self.buf.iter()
    }

    /// Iterates the `n` most recent windows, oldest of them first.
    pub fn recent(&self, n: usize) -> impl Iterator<Item = &WindowSample> {
        let skip = self.buf.len().saturating_sub(n);
        self.buf.iter().skip(skip)
    }

    /// Mean GPU usage over the `n` most recent windows with observable
    /// usage; `None` when none of them were observable.
    pub fn mean_gpu_usage(&self, n: usize) -> Option<f64> {
        mean(self.recent(n).filter_map(|s| s.gpu_usage_pct))
    }

    /// Mean CPU usage over the `n` most recent windows with observable
    /// usage.
    pub fn mean_cpu_usage(&self, n: usize) -> Option<f64> {
        mean(self.recent(n).filter_map(|s| s.cpu_usage_pct))
    }
}

fn mean(values: impl Iterator<Item = f64>) -> Option<f64> {
    let mut sum = 0.0;
    let mut count = 0u32;
    for v in values {
        sum += v;
        count += 1;
    }
    (count > 0).then(|| sum / count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icomm_soc::units::Picos;

    fn characterization() -> DeviceCharacterization {
        DeviceCharacterization {
            device: "test".into(),
            gpu_cache_max_throughput: 100e9,
            gpu_zc_throughput: 10e9,
            gpu_um_throughput: 100e9,
            gpu_cache_threshold_pct: 10.0,
            gpu_cache_zone2_pct: Some(50.0),
            cpu_cache_threshold_pct: 15.0,
            sc_zc_max_speedup: 2.5,
            zc_sc_max_speedup: 70.0,
        }
    }

    fn profile(model: CommModelKind) -> ProfileReport {
        ProfileReport {
            workload: "t".into(),
            model,
            miss_rate_l1_cpu: 0.2,
            miss_rate_ll_cpu: 0.5,
            hit_rate_l1_gpu: 0.5,
            gpu_transactions: 1000,
            gpu_transaction_bytes: 64.0,
            kernel_time: Picos::from_micros(50),
            cpu_time: Picos::from_micros(20),
            copy_time: Picos::from_micros(10),
            total_time: Picos::from_micros(80),
        }
    }

    #[test]
    fn usage_only_observable_under_cached_models() {
        let c = characterization();
        let sc = WindowSample::from_profile(0, profile(CommModelKind::StandardCopy), &c);
        assert!(sc.usage_observable());
        assert!(sc.gpu_usage_pct.unwrap() > 0.0);
        let zc = WindowSample::from_profile(1, profile(CommModelKind::ZeroCopy), &c);
        assert!(!zc.usage_observable());
        assert_eq!(zc.cpu_usage_pct, None);
        assert_eq!(zc.gpu_usage_pct, None);
    }

    #[test]
    fn ring_evicts_oldest_and_aggregates_recent() {
        let c = characterization();
        let mut ring = WindowRing::new(3);
        for w in 0..5u64 {
            ring.push(WindowSample::from_profile(
                w,
                profile(CommModelKind::StandardCopy),
                &c,
            ));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.iter().next().unwrap().window, 2);
        assert_eq!(ring.latest().unwrap().window, 4);
        assert_eq!(ring.recent(2).count(), 2);
        let mean = ring.mean_gpu_usage(3).unwrap();
        assert!((mean - ring.latest().unwrap().gpu_usage_pct.unwrap()).abs() < 1e-12);
    }

    #[test]
    fn means_skip_unobservable_windows() {
        let c = characterization();
        let mut ring = WindowRing::new(4);
        ring.push(WindowSample::from_profile(
            0,
            profile(CommModelKind::ZeroCopy),
            &c,
        ));
        assert_eq!(ring.mean_gpu_usage(4), None);
        ring.push(WindowSample::from_profile(
            1,
            profile(CommModelKind::StandardCopy),
            &c,
        ));
        assert!(ring.mean_gpu_usage(4).is_some());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = WindowRing::new(0);
    }
}
