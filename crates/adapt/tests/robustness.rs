//! Property tests: the adaptation pipeline under hostile counter
//! streams.
//!
//! Real counter feeds deliver NaNs, infinities, heavy-tail outliers,
//! duplicated and missing windows. Three invariants must survive all of
//! it:
//!
//! - **no panic** — every component consumes arbitrary garbage and
//!   returns;
//! - **bounded state** — the ring never exceeds its capacity, the
//!   controller's confidence stays in `[0, 1]`, aggregates are finite or
//!   absent;
//! - **deterministic replay** — the same hostile stream produces the
//!   same verdicts, switch log and counters every time.

use proptest::prelude::*;

use icomm_adapt::{
    AdaptController, ControllerConfig, DetectorConfig, PhaseDetector, WindowRing, WindowSample,
};
use icomm_microbench::quick_characterize_device;
use icomm_models::CommModelKind;
use icomm_profile::ProfileReport;
use icomm_soc::units::Picos;
use icomm_soc::DeviceProfile;

/// A hostile measurement: plausible values mixed with NaN, infinities,
/// negatives, zeros and heavy-tail outliers.
fn hostile_value() -> BoxedStrategy<f64> {
    prop_oneof![
        0.0..100.0f64,
        0.0..1.0f64,
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(-1.0),
        Just(0.0),
        1e6..1e12f64,
    ]
    .boxed()
}

/// One hostile window: (time, cpu usage, gpu usage, observable?).
fn hostile_window() -> impl Strategy<Value = (f64, f64, f64, bool)> {
    (
        hostile_value(),
        hostile_value(),
        hostile_value(),
        prop::bool::ANY,
    )
}

fn hostile_stream() -> impl Strategy<Value = Vec<(f64, f64, f64, bool)>> {
    prop::collection::vec(hostile_window(), 1..120)
}

/// A hostile profile built from three drawn values and a model selector.
fn profile_from(model_sel: bool, a: f64, b: f64, c: f64) -> ProfileReport {
    let model = if model_sel {
        CommModelKind::StandardCopy
    } else {
        CommModelKind::ZeroCopy
    };
    ProfileReport {
        workload: "hostile".into(),
        model,
        miss_rate_l1_cpu: a,
        miss_rate_ll_cpu: b,
        hit_rate_l1_gpu: c,
        gpu_transactions: (a.abs().min(1e6)) as u64,
        gpu_transaction_bytes: b,
        kernel_time: Picos((c.abs().min(1e15)) as u64),
        cpu_time: Picos::from_micros(20),
        copy_time: Picos::from_micros(10),
        total_time: Picos((a.abs().min(1e15)) as u64),
    }
}

proptest! {
    #[test]
    fn detector_never_panics_and_replays_identically(stream in hostile_stream()) {
        let run = |cfg: DetectorConfig| {
            let mut d = PhaseDetector::new(cfg);
            let mut verdicts = Vec::new();
            for (i, (t, cpu, gpu, observable)) in stream.iter().enumerate() {
                let usage = observable.then_some(*cpu);
                let gusage = observable.then_some(*gpu);
                if let Some(drift) = d.observe(*t, usage, gusage) {
                    verdicts.push((i, drift.channels));
                }
            }
            verdicts
        };
        let classic = DetectorConfig::default();
        prop_assert_eq!(run(classic), run(classic));
        let clamped = DetectorConfig {
            outlier_clamp_pct: Some(10.0),
            ..DetectorConfig::default()
        };
        prop_assert_eq!(run(clamped), run(clamped));
    }

    #[test]
    fn ring_state_stays_bounded(stream in hostile_stream()) {
        let device = DeviceProfile::jetson_tx2();
        let characterization = quick_characterize_device(&device);
        let mut ring = WindowRing::new(8);
        for (w, (t, a, b, sel)) in stream.iter().enumerate() {
            let mut p = profile_from(*sel, *a, *b, *t);
            p.gpu_transaction_bytes = *b;
            ring.push(WindowSample::from_profile(w as u64, p, &characterization));
            prop_assert!(ring.len() <= ring.capacity());
            for n in [1usize, 3, 8, 64] {
                for v in [
                    ring.mean_gpu_usage(n),
                    ring.median_gpu_usage(n),
                    ring.trimmed_gpu_usage(n, 0.25),
                    ring.mean_cpu_usage(n),
                    ring.median_cpu_usage(n),
                    ring.trimmed_cpu_usage(n, 0.25),
                ]
                .into_iter()
                .flatten()
                {
                    prop_assert!(v.is_finite(), "non-finite aggregate {v}");
                }
                let _ = ring.robust_profile(n);
            }
        }
    }

    #[test]
    fn ring_median_lies_within_observed_range(stream in hostile_stream()) {
        let device = DeviceProfile::jetson_agx_xavier();
        let characterization = quick_characterize_device(&device);
        let mut ring = WindowRing::new(16);
        for (w, (t, a, b, sel)) in stream.iter().enumerate() {
            ring.push(WindowSample::from_profile(
                w as u64,
                profile_from(*sel, *a, *b, *t),
                &characterization,
            ));
        }
        if let Some(median) = ring.median_gpu_usage(16) {
            let finite: Vec<f64> = ring
                .iter()
                .filter_map(|s| s.gpu_usage_pct)
                .filter(|u| u.is_finite())
                .collect();
            let lo = finite.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(median >= lo && median <= hi, "median {median} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn controller_survives_hostile_streams_deterministically(
        stream in hostile_stream(),
        jumps in prop::collection::vec(0u64..4, 1..120),
    ) {
        let device = DeviceProfile::jetson_tx2();
        let characterization = quick_characterize_device(&device);
        let run = || {
            let mut ctrl = AdaptController::new(
                device.clone(),
                characterization.clone(),
                ControllerConfig::default(),
            );
            let mut models = Vec::new();
            let mut index = 0u64;
            for (i, (t, a, b, sel)) in stream.iter().enumerate() {
                // Jumps forward create gaps; zero jumps repeat an index.
                index += jumps[i % jumps.len()];
                models.push(ctrl.observe_profile(index, profile_from(*sel, *a, *b, *t)));
                let c = ctrl.confidence();
                prop_assert!((0.0..=1.0).contains(&c), "confidence {c} escaped [0, 1]");
            }
            (models, ctrl.stats().clone(), ctrl.switch_log().to_vec())
        };
        let first = run();
        let second = run();
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(first.1.windows, stream.len() as u64);
    }
}
