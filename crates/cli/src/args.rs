//! Argument parsing for the `icomm` CLI (std-only, no clap).

use icomm_models::CommModelKind;
use icomm_soc::{DeviceProfile, PageSize};

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `icomm boards` — list the built-in device profiles.
    Boards,
    /// `icomm characterize <board> [--save <file>]` — run the three
    /// micro-benchmarks, optionally caching the result as JSON.
    Characterize {
        /// Board name.
        board: String,
        /// Where to save the characterization.
        save: Option<String>,
    },
    /// `icomm tune <board> <app> [--current <model>] [--pages <size>]
    /// [--json]` — profile an application and print the framework's
    /// verdict.
    Tune {
        /// Board name.
        board: String,
        /// Application name (`shwfs`, `orb`, `lane`).
        app: String,
        /// The model the application currently uses.
        current: CommModelKind,
        /// Page size the board maps the shared allocation with
        /// (`4k`, `64k`, `2m`); `None` keeps the profile's default.
        pages: Option<PageSize>,
        /// A cached characterization file (skips the micro-benchmarks).
        characterization: Option<String>,
        /// Print the validated recommendation as JSON.
        json: bool,
    },
    /// `icomm adapt <board> [--app <name>] [--windows N] [--stats]
    /// [--json] [--characterization <file>]` — run the online adaptation
    /// controller over the app's phased variant and compare it against
    /// the static models and the per-phase oracle.
    Adapt {
        /// Board name.
        board: String,
        /// Application name (`shwfs`, `orb`, `lane`).
        app: String,
        /// Windows per phase.
        windows: u32,
        /// Append the controller's counters.
        stats: bool,
        /// Print the full adaptation report as JSON.
        json: bool,
        /// A cached characterization file (skips the micro-benchmarks).
        characterization: Option<String>,
    },
    /// `icomm chaos <board> [--app <name>] [--plan <spec>] [--seed N]...
    /// [--windows N] [--fleet] [--json]` — run a deterministic
    /// fault-injection campaign over the adaptation stack and report
    /// survival, regret inflation, and safe-fallback activations; with
    /// `--fleet`, run the plan's fleet-scale knobs (churn, registry
    /// poisoning, shard panics) through a full fleet campaign per seed
    /// instead.
    Chaos {
        /// Board name.
        board: String,
        /// Application name (`shwfs`, `orb`, `lane`).
        app: String,
        /// Fault-plan spec: a preset (`none`, `noise`, `loss`,
        /// `corrupt`, `hostile`, `full`) plus optional `knob=value`
        /// overrides.
        plan: String,
        /// Campaign seeds (one campaign per seed).
        seeds: Vec<u64>,
        /// Windows per phase.
        windows: u32,
        /// Run the fleet-scale campaign (churn / poisoning / shard
        /// panics against the serving stack) instead of the
        /// single-device adaptation campaign.
        fleet: bool,
        /// Print the full reports as JSON.
        json: bool,
    },
    /// `icomm compare <board> <app>` — run the application under every
    /// model (including the SC+ extension) and print the comparison.
    Compare {
        /// Board name.
        board: String,
        /// Application name.
        app: String,
    },
    /// `icomm experiments` — regenerate every table/figure of the paper.
    Experiments,
    /// `icomm serve [--addr <ip:port>] [--wire json|binary] [--workers N]
    /// [--registry <file>] [--full] [--stats]` — run the tuning service
    /// over TCP.
    Serve {
        /// Listen address.
        addr: String,
        /// Wire protocol: `json` (line-delimited, thread per connection)
        /// or `binary` (`icommwire v1` frames on the event-driven plane).
        wire: String,
        /// Worker-pool size.
        workers: usize,
        /// Registry snapshot file for warm starts and shutdown persistence.
        registry: Option<String>,
        /// Run the full characterization sweep instead of the quick one.
        full: bool,
        /// Print service metrics periodically.
        stats: bool,
    },
    /// `icomm servebench [--requests N] [--conns N] [--workers N]
    /// [--batch N] [--hostile] [--json]` — run the JSON and binary
    /// serving planes side by side over one shared service and report
    /// throughput, tail latency, decision parity, and (with `--hostile`)
    /// hostile-client survival.
    Servebench {
        /// Requests per plane.
        requests: usize,
        /// Concurrent load-generator connections.
        conns: usize,
        /// Worker-pool size (shared service).
        workers: usize,
        /// Requests per binary `Batch` frame.
        batch: usize,
        /// Also fire the hostile binary clients and report the fault
        /// counters.
        hostile: bool,
        /// Print the report as JSON.
        json: bool,
    },
    /// `icomm batch [<file>] [--workers N] [--registry <file>] [--full]
    /// [--stats]` — serve a batch of line-JSON requests from a file (or
    /// stdin) and print one response per line.
    Batch {
        /// Request file; stdin when absent.
        file: Option<String>,
        /// Worker-pool size.
        workers: usize,
        /// Registry snapshot file for warm starts and shutdown persistence.
        registry: Option<String>,
        /// Run the full characterization sweep instead of the quick one.
        full: bool,
        /// Append a metrics summary after the responses.
        stats: bool,
    },
    /// `icomm fleet <board-mix> [--devices N] [--arrival poisson|burst]
    /// [--rate R] [--seed S] [--tenants N] [--wire json|binary]
    /// [--faults <spec>] [--json]` — simulate a clustered device fleet
    /// hammering the tuning service (admission control, federated
    /// characterization transfer) and report warm-start rate, tail
    /// latency, shed counts, and transfer regret; with `--tenants 2..4`
    /// every served device also co-schedules a tenant mix of that size
    /// off its registry-resolved characterization; `--faults` injects
    /// the plan's churn / poisoning / shard-panic knobs into the run.
    Fleet {
        /// Comma-separated board mix (`nano,tx2,xavier`).
        mix: String,
        /// Population size.
        devices: usize,
        /// Arrival-process preset (`poisson` / `burst`).
        arrival: String,
        /// Mean arrival rate, requests per second.
        rate: f64,
        /// Seed for the population and schedule.
        seed: u64,
        /// Tenants co-hosted per served device (1 = single-tenant).
        tenants: usize,
        /// Wire protocol the live-fire stage drives (`json` / `binary`).
        wire: String,
        /// Fault-plan spec for the fleet knobs, e.g.
        /// `none,churn_prob=0.1,poison_prob=0.1,shard_panics=2`.
        faults: String,
        /// Per-device memory cap in bytes for the multi-tenant stage
        /// (`None` = each board's stock DRAM budget).
        mem_cap: Option<u64>,
        /// Print the deterministic fleet report as JSON.
        json: bool,
    },
    /// `icomm sched <board> [--mix <name>] [--policy fifo|deadline]
    /// [--seed N] [--windows N] [--json]` — co-schedule a named tenant
    /// mix on one board: jointly assign communication models under the
    /// cross-tenant interference model, run the periodic schedule in
    /// virtual time, and report per-tenant deadline misses, slowdown vs
    /// solo, and bandwidth throttles.
    Sched {
        /// Board name.
        board: String,
        /// Tenant-mix name (`duo`, `trio`, `quad`, `contended`,
        /// `pressure`).
        mix: String,
        /// Scheduling policy (`fifo` / `deadline`).
        policy: String,
        /// Seed for the release phase offsets.
        seed: u64,
        /// Jobs each tenant releases.
        windows: u32,
        /// Memory cap admission runs under, bytes (`None` = the board's
        /// stock DRAM budget).
        mem_cap: Option<u64>,
        /// Print the deterministic scheduler report as JSON.
        json: bool,
    },
    /// `icomm synth <board|all> [--mix <name>]... [--max-size N]
    /// [--seed N] [--save <file>] [--json]` — sweep the deterministic
    /// simulators, synthesize algebraic decision rules from the sweep,
    /// validate them against the brute-force oracle, and report the
    /// rule set, its verified scope, and the compression ratio.
    Synth {
        /// Board name, or `all` for every stock board.
        board: String,
        /// Sweep contexts (`solo:<app>`, `duo`, `trio`, `quad`,
        /// `contended`, `pressure`); empty runs the full default sweep.
        mixes: Vec<String>,
        /// Largest predicate term size to enumerate.
        max_size: u32,
        /// Enumeration-order seed (same seed → byte-identical rules).
        seed: u64,
        /// Write the CRC-framed rule-set snapshot here.
        save: Option<String>,
        /// Print the deterministic synthesis report as JSON.
        json: bool,
    },
    /// `icomm help` / no arguments.
    Help,
}

/// Parse error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError(pub String);

impl std::fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseArgsError {}

/// Resolves a board name (case-insensitive, several aliases).
pub fn board_by_name(name: &str) -> Option<DeviceProfile> {
    match name.to_ascii_lowercase().as_str() {
        "nano" | "jetson-nano" => Some(DeviceProfile::jetson_nano()),
        "tx2" | "jetson-tx2" => Some(DeviceProfile::jetson_tx2()),
        "xavier" | "agx-xavier" | "jetson-agx-xavier" => Some(DeviceProfile::jetson_agx_xavier()),
        "orin" | "orin-like" => Some(DeviceProfile::orin_like()),
        "mi300a" | "mi300a-like" => Some(DeviceProfile::mi300a_like()),
        "gh" | "gh-like" | "grace-hopper-like" => Some(DeviceProfile::gh_like()),
        _ => None,
    }
}

/// The board names `board_by_name` accepts (canonical forms).
pub const BOARD_NAMES: [&str; 6] = [
    "nano",
    "tx2",
    "xavier",
    "orin-like",
    "mi300a-like",
    "gh-like",
];

/// The application names the CLI knows.
pub const APP_NAMES: [&str; 3] = ["shwfs", "orb", "lane"];

fn model_by_name(name: &str) -> Option<CommModelKind> {
    match name.to_ascii_lowercase().as_str() {
        "sc" | "standard-copy" => Some(CommModelKind::StandardCopy),
        "um" | "unified-memory" => Some(CommModelKind::UnifiedMemory),
        "zc" | "zero-copy" => Some(CommModelKind::ZeroCopy),
        "sc+" | "sc-async" | "double-buffered" => Some(CommModelKind::StandardCopyAsync),
        "upm" | "coherent-upm" | "coherent-unified-memory" => Some(CommModelKind::CoherentUpm),
        _ => None,
    }
}

/// Parses the argument vector (without the program name).
///
/// # Errors
///
/// Returns a message suitable for printing when the arguments do not form
/// a valid command.
pub fn parse(args: &[String]) -> Result<Command, ParseArgsError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "boards" => Ok(Command::Boards),
        "characterize" => {
            let board = it
                .next()
                .ok_or_else(|| ParseArgsError("characterize needs a board name".into()))?;
            ensure_board(board)?;
            let mut save = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--save" => {
                        save = Some(
                            it.next()
                                .ok_or_else(|| ParseArgsError("--save needs a file path".into()))?
                                .clone(),
                        );
                    }
                    other => return Err(ParseArgsError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Characterize {
                board: board.clone(),
                save,
            })
        }
        "tune" => {
            let board = it
                .next()
                .ok_or_else(|| ParseArgsError("tune needs a board name".into()))?;
            ensure_board(board)?;
            let app = it
                .next()
                .ok_or_else(|| ParseArgsError("tune needs an app name".into()))?;
            ensure_app(app)?;
            let mut current = CommModelKind::StandardCopy;
            let mut pages = None;
            let mut characterization = None;
            let mut json = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--current" => {
                        let value = it.next().ok_or_else(|| {
                            ParseArgsError("--current needs a model (sc|um|zc)".into())
                        })?;
                        current = model_by_name(value).ok_or_else(|| {
                            ParseArgsError(format!("unknown model '{value}' (sc|um|zc|sc+|upm)"))
                        })?;
                    }
                    "--pages" => {
                        let value = it.next().ok_or_else(|| {
                            ParseArgsError("--pages needs a size (4k|64k|2m)".into())
                        })?;
                        pages = Some(PageSize::parse(value).ok_or_else(|| {
                            ParseArgsError(format!("unknown page size '{value}' (4k|64k|2m)"))
                        })?);
                    }
                    "--characterization" => {
                        characterization = Some(
                            it.next()
                                .ok_or_else(|| {
                                    ParseArgsError("--characterization needs a file path".into())
                                })?
                                .clone(),
                        );
                    }
                    "--json" => json = true,
                    other => {
                        return Err(ParseArgsError(format!("unknown flag '{other}'")));
                    }
                }
            }
            Ok(Command::Tune {
                board: board.clone(),
                app: app.clone(),
                current,
                pages,
                characterization,
                json,
            })
        }
        "adapt" => {
            let board = it
                .next()
                .ok_or_else(|| ParseArgsError("adapt needs a board name".into()))?;
            ensure_board(board)?;
            let mut app = "shwfs".to_string();
            let mut windows = 8u32;
            let mut stats = false;
            let mut json = false;
            let mut characterization = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--app" => {
                        let value = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--app needs an app name".into()))?;
                        ensure_app(value)?;
                        app = value.clone();
                    }
                    "--windows" => {
                        let value = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--windows needs a count".into()))?;
                        windows =
                            value
                                .parse::<u32>()
                                .ok()
                                .filter(|n| *n > 0)
                                .ok_or_else(|| {
                                    ParseArgsError(format!(
                                        "--windows needs a positive count, got '{value}'"
                                    ))
                                })?;
                    }
                    "--stats" => stats = true,
                    "--json" => json = true,
                    "--characterization" => {
                        characterization = Some(
                            it.next()
                                .ok_or_else(|| {
                                    ParseArgsError("--characterization needs a file path".into())
                                })?
                                .clone(),
                        );
                    }
                    other => return Err(ParseArgsError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Adapt {
                board: board.clone(),
                app,
                windows,
                stats,
                json,
                characterization,
            })
        }
        "chaos" => {
            let board = it
                .next()
                .ok_or_else(|| ParseArgsError("chaos needs a board name".into()))?;
            ensure_board(board)?;
            let mut app = "shwfs".to_string();
            let mut plan = "full".to_string();
            let mut seeds = Vec::new();
            let mut windows = 8u32;
            let mut fleet = false;
            let mut json = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--app" => {
                        let value = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--app needs an app name".into()))?;
                        ensure_app(value)?;
                        app = value.clone();
                    }
                    "--plan" => {
                        plan = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--plan needs a fault spec".into()))?
                            .clone();
                    }
                    "--seed" => {
                        let value = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--seed needs a number".into()))?;
                        seeds.push(value.parse::<u64>().map_err(|_| {
                            ParseArgsError(format!("--seed needs a number, got '{value}'"))
                        })?);
                    }
                    "--windows" => {
                        let value = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--windows needs a count".into()))?;
                        windows =
                            value
                                .parse::<u32>()
                                .ok()
                                .filter(|n| *n > 0)
                                .ok_or_else(|| {
                                    ParseArgsError(format!(
                                        "--windows needs a positive count, got '{value}'"
                                    ))
                                })?;
                    }
                    "--fleet" => fleet = true,
                    "--json" => json = true,
                    other => return Err(ParseArgsError(format!("unknown flag '{other}'"))),
                }
            }
            if seeds.is_empty() {
                seeds.push(42);
            }
            Ok(Command::Chaos {
                board: board.clone(),
                app,
                plan,
                seeds,
                windows,
                fleet,
                json,
            })
        }
        "compare" => {
            let board = it
                .next()
                .ok_or_else(|| ParseArgsError("compare needs a board name".into()))?;
            ensure_board(board)?;
            let app = it
                .next()
                .ok_or_else(|| ParseArgsError("compare needs an app name".into()))?;
            ensure_app(app)?;
            Ok(Command::Compare {
                board: board.clone(),
                app: app.clone(),
            })
        }
        "experiments" => Ok(Command::Experiments),
        "serve" => {
            let mut addr = "127.0.0.1:7311".to_string();
            let mut wire = "json".to_string();
            let mut options = ServiceOptions::default();
            while let Some(flag) = it.next() {
                if flag == "--addr" {
                    addr = it
                        .next()
                        .ok_or_else(|| ParseArgsError("--addr needs an ip:port".into()))?
                        .clone();
                } else if flag == "--wire" {
                    let value = it
                        .next()
                        .ok_or_else(|| ParseArgsError("--wire needs json|binary".into()))?;
                    wire = match value.to_ascii_lowercase().as_str() {
                        "json" | "binary" => value.to_ascii_lowercase(),
                        other => {
                            return Err(ParseArgsError(format!(
                                "unknown wire protocol '{other}' (json|binary)"
                            )))
                        }
                    };
                } else {
                    options.accept(flag, &mut it)?;
                }
            }
            Ok(Command::Serve {
                addr,
                wire,
                workers: options.workers,
                registry: options.registry,
                full: options.full,
                stats: options.stats,
            })
        }
        "servebench" => {
            let mut requests = 2_000usize;
            let mut conns = 8usize;
            let mut workers = 4usize;
            let mut batch = 16usize;
            let mut hostile = false;
            let mut json = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--requests" | "--conns" | "--workers" | "--batch" => {
                        let value = it.next().ok_or_else(|| {
                            ParseArgsError(format!("{flag} needs a positive count"))
                        })?;
                        let parsed =
                            value
                                .parse::<usize>()
                                .ok()
                                .filter(|n| *n > 0)
                                .ok_or_else(|| {
                                    ParseArgsError(format!(
                                        "{flag} needs a positive count, got '{value}'"
                                    ))
                                })?;
                        match flag.as_str() {
                            "--requests" => requests = parsed,
                            "--conns" => conns = parsed,
                            "--workers" => workers = parsed,
                            _ => batch = parsed,
                        }
                    }
                    "--hostile" => hostile = true,
                    "--json" => json = true,
                    other => return Err(ParseArgsError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Servebench {
                requests,
                conns,
                workers,
                batch,
                hostile,
                json,
            })
        }
        "batch" => {
            let mut file = None;
            let mut options = ServiceOptions::default();
            while let Some(flag) = it.next() {
                if flag.starts_with("--") {
                    options.accept(flag, &mut it)?;
                } else if file.is_none() {
                    file = Some(flag.clone());
                } else {
                    return Err(ParseArgsError(format!(
                        "batch takes one request file, got '{flag}' too"
                    )));
                }
            }
            Ok(Command::Batch {
                file,
                workers: options.workers,
                registry: options.registry,
                full: options.full,
                stats: options.stats,
            })
        }
        "fleet" => {
            let mix = it.next().ok_or_else(|| {
                ParseArgsError(
                    "fleet needs a comma-separated board mix (e.g. nano,tx2,xavier)".into(),
                )
            })?;
            for part in mix.split(',') {
                let name = part.trim();
                if !name.is_empty() {
                    ensure_board(name)?;
                }
            }
            let mut devices = 256usize;
            let mut arrival = "poisson".to_string();
            let mut rate = 400.0f64;
            let mut seed = 7u64;
            let mut tenants = 1usize;
            let mut wire = "json".to_string();
            let mut faults = "none".to_string();
            let mut mem_cap = None;
            let mut json = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--devices" => {
                        let value = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--devices needs a count".into()))?;
                        devices =
                            value
                                .parse::<usize>()
                                .ok()
                                .filter(|n| *n > 0)
                                .ok_or_else(|| {
                                    ParseArgsError(format!(
                                        "--devices needs a positive count, got '{value}'"
                                    ))
                                })?;
                    }
                    "--arrival" => {
                        let value = it.next().ok_or_else(|| {
                            ParseArgsError("--arrival needs a process (poisson|burst)".into())
                        })?;
                        match value.to_ascii_lowercase().as_str() {
                            "poisson" | "burst" | "bursty" => arrival = value.clone(),
                            other => {
                                return Err(ParseArgsError(format!(
                                    "unknown arrival process '{other}' (poisson|burst)"
                                )))
                            }
                        }
                    }
                    "--rate" => {
                        let value = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--rate needs requests/sec".into()))?;
                        rate = value
                            .parse::<f64>()
                            .ok()
                            .filter(|r| *r > 0.0)
                            .ok_or_else(|| {
                                ParseArgsError(format!(
                                    "--rate needs a positive requests/sec, got '{value}'"
                                ))
                            })?;
                    }
                    "--seed" => {
                        let value = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--seed needs a number".into()))?;
                        seed = value.parse::<u64>().map_err(|_| {
                            ParseArgsError(format!("--seed needs a number, got '{value}'"))
                        })?;
                    }
                    "--tenants" => {
                        let value = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--tenants needs a count".into()))?;
                        tenants = value
                            .parse::<usize>()
                            .ok()
                            .filter(|n| (1..=4).contains(n))
                            .ok_or_else(|| {
                                ParseArgsError(format!(
                                    "--tenants needs a count between 1 and 4, got '{value}'"
                                ))
                            })?;
                    }
                    "--wire" => {
                        let value = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--wire needs json|binary".into()))?;
                        match value.to_ascii_lowercase().as_str() {
                            "json" | "binary" => wire = value.to_ascii_lowercase(),
                            other => {
                                return Err(ParseArgsError(format!(
                                    "unknown wire protocol '{other}' (json|binary)"
                                )))
                            }
                        }
                    }
                    "--faults" => {
                        let value = it.next().ok_or_else(|| {
                            ParseArgsError("--faults needs a fault-plan spec".into())
                        })?;
                        // Fail fast on a bad spec; the run re-parses it.
                        icomm_chaos::FaultPlan::parse(value).map_err(ParseArgsError)?;
                        faults = value.clone();
                    }
                    "--mem-cap" => {
                        let value = it.next().ok_or_else(|| {
                            ParseArgsError("--mem-cap needs a size (e.g. 6m, 512k, 2g)".into())
                        })?;
                        let cap = icomm_footprint::parse_cap(value)
                            .map_err(|e| ParseArgsError(format!("--mem-cap: {e}")))?;
                        mem_cap = Some(cap.as_u64());
                    }
                    "--json" => json = true,
                    other => return Err(ParseArgsError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Fleet {
                mix: mix.clone(),
                devices,
                arrival,
                rate,
                seed,
                tenants,
                wire,
                faults,
                mem_cap,
                json,
            })
        }
        "sched" => {
            let board = it
                .next()
                .ok_or_else(|| ParseArgsError("sched needs a board name".into()))?;
            ensure_board(board)?;
            let mut mix = "contended".to_string();
            let mut policy = "deadline".to_string();
            let mut seed = 42u64;
            let mut windows = 8u32;
            let mut mem_cap = None;
            let mut json = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--mix" => {
                        let value = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--mix needs a mix name".into()))?;
                        if !icomm_apps::MIX_NAMES.contains(&value.to_ascii_lowercase().as_str()) {
                            return Err(ParseArgsError(format!(
                                "unknown mix '{value}' (known: {})",
                                icomm_apps::MIX_NAMES.join(", ")
                            )));
                        }
                        mix = value.to_ascii_lowercase();
                    }
                    "--policy" => {
                        let value = it.next().ok_or_else(|| {
                            ParseArgsError("--policy needs a policy (fifo|deadline)".into())
                        })?;
                        policy = icomm_sched::PolicyKind::parse(value)
                            .map_err(ParseArgsError)?
                            .name()
                            .to_string();
                    }
                    "--seed" => {
                        let value = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--seed needs a number".into()))?;
                        seed = value.parse::<u64>().map_err(|_| {
                            ParseArgsError(format!("--seed needs a number, got '{value}'"))
                        })?;
                    }
                    "--windows" => {
                        let value = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--windows needs a count".into()))?;
                        windows =
                            value
                                .parse::<u32>()
                                .ok()
                                .filter(|n| *n > 0)
                                .ok_or_else(|| {
                                    ParseArgsError(format!(
                                        "--windows needs a positive count, got '{value}'"
                                    ))
                                })?;
                    }
                    "--mem-cap" => {
                        let value = it.next().ok_or_else(|| {
                            ParseArgsError("--mem-cap needs a size (e.g. 6m, 512k, 2g)".into())
                        })?;
                        let cap = icomm_footprint::parse_cap(value)
                            .map_err(|e| ParseArgsError(format!("--mem-cap: {e}")))?;
                        mem_cap = Some(cap.as_u64());
                    }
                    "--json" => json = true,
                    other => return Err(ParseArgsError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Sched {
                board: board.clone(),
                mix,
                policy,
                seed,
                windows,
                mem_cap,
                json,
            })
        }
        "synth" => {
            let board = it
                .next()
                .ok_or_else(|| ParseArgsError("synth needs a board name (or 'all')".into()))?;
            if board != "all" {
                ensure_board(board)?;
            }
            let mut mixes = Vec::new();
            let mut max_size = 3u32;
            let mut seed = 42u64;
            let mut save = None;
            let mut json = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--mix" => {
                        let value = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--mix needs a mix name".into()))?
                            .to_ascii_lowercase();
                        if !icomm_synth::SWEEP_MIX_NAMES.contains(&value.as_str()) {
                            return Err(ParseArgsError(format!(
                                "unknown sweep mix '{value}' (known: {})",
                                icomm_synth::SWEEP_MIX_NAMES.join(", ")
                            )));
                        }
                        mixes.push(value);
                    }
                    "--max-size" => {
                        let value = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--max-size needs a size".into()))?;
                        // Term growth is combinatorial; 4 is already past
                        // the point of diminishing returns on this table.
                        max_size = value
                            .parse::<u32>()
                            .ok()
                            .filter(|n| (1..=4).contains(n))
                            .ok_or_else(|| {
                                ParseArgsError(format!(
                                    "--max-size needs a size between 1 and 4, got '{value}'"
                                ))
                            })?;
                    }
                    "--seed" => {
                        let value = it
                            .next()
                            .ok_or_else(|| ParseArgsError("--seed needs a number".into()))?;
                        seed = value.parse::<u64>().map_err(|_| {
                            ParseArgsError(format!("--seed needs a number, got '{value}'"))
                        })?;
                    }
                    "--save" => {
                        save = Some(
                            it.next()
                                .ok_or_else(|| ParseArgsError("--save needs a file path".into()))?
                                .clone(),
                        );
                    }
                    "--json" => json = true,
                    other => return Err(ParseArgsError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Synth {
                board: board.clone(),
                mixes,
                max_size,
                seed,
                save,
                json,
            })
        }
        other => Err(ParseArgsError(format!(
            "unknown command '{other}' (try `icomm help`)"
        ))),
    }
}

/// Flags shared by `serve` and `batch`.
struct ServiceOptions {
    workers: usize,
    registry: Option<String>,
    full: bool,
    stats: bool,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            workers: 4,
            registry: None,
            full: false,
            stats: false,
        }
    }
}

impl ServiceOptions {
    fn accept(
        &mut self,
        flag: &str,
        it: &mut std::slice::Iter<'_, String>,
    ) -> Result<(), ParseArgsError> {
        match flag {
            "--workers" => {
                let value = it
                    .next()
                    .ok_or_else(|| ParseArgsError("--workers needs a count".into()))?;
                self.workers = value
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| {
                        ParseArgsError(format!("--workers needs a positive count, got '{value}'"))
                    })?;
            }
            "--registry" => {
                self.registry = Some(
                    it.next()
                        .ok_or_else(|| ParseArgsError("--registry needs a file path".into()))?
                        .clone(),
                );
            }
            "--full" => self.full = true,
            "--stats" => self.stats = true,
            other => return Err(ParseArgsError(format!("unknown flag '{other}'"))),
        }
        Ok(())
    }
}

fn ensure_board(name: &str) -> Result<(), ParseArgsError> {
    if board_by_name(name).is_some() {
        Ok(())
    } else {
        Err(ParseArgsError(format!(
            "unknown board '{name}' (known: {})",
            BOARD_NAMES.join(", ")
        )))
    }
}

fn ensure_app(name: &str) -> Result<(), ParseArgsError> {
    if APP_NAMES.contains(&name.to_ascii_lowercase().as_str()) {
        Ok(())
    } else {
        Err(ParseArgsError(format!(
            "unknown app '{name}' (known: {})",
            APP_NAMES.join(", ")
        )))
    }
}

/// The help text.
pub const HELP: &str = "\
icomm — tune CPU-iGPU communication on embedded platforms

USAGE:
    icomm boards
    icomm characterize <board> [--save <file>]
    icomm tune <board> <app> [--current sc|um|zc|sc+|upm]
                             [--pages 4k|64k|2m] [--json]
                             [--characterization <file>]
    icomm adapt <board> [--app <name>] [--windows N] [--stats] [--json]
                        [--characterization <file>]
    icomm chaos <board> [--app <name>] [--plan <spec>] [--seed N]...
                        [--windows N] [--fleet] [--json]
    icomm compare <board> <app>
    icomm experiments
    icomm serve [--addr <ip:port>] [--wire json|binary] [--workers N]
                [--registry <file>] [--full] [--stats]
    icomm servebench [--requests N] [--conns N] [--workers N]
                [--batch N] [--hostile] [--json]
    icomm batch [<file>] [--workers N] [--registry <file>]
                [--full] [--stats]
    icomm fleet <board-mix> [--devices N] [--arrival poisson|burst]
                [--rate R] [--seed S] [--tenants N]
                [--wire json|binary] [--faults <spec>]
                [--mem-cap SIZE] [--json]
    icomm sched <board> [--mix <name>] [--policy fifo|deadline]
                [--seed N] [--windows N] [--mem-cap SIZE] [--json]
    icomm synth <board|all> [--mix <name>]... [--max-size N] [--seed N]
                [--save <file>] [--json]
    icomm help

BOARDS:  nano, tx2, xavier, orin-like   (discrete-pool iGPU boards)
         mi300a-like, gh-like           (hardware-coherent memory boards)
APPS:    shwfs (Shack-Hartmann wavefront sensing)
         orb   (ORB feature-extraction front-end)
         lane  (ADAS lane detection)

`characterize` runs the paper's three micro-benchmarks on the simulated
board (plus a coherent-memory probe on boards that support it). `tune`
profiles the chosen application and prints the framework's
communication-model verdict (`--json` for machine-readable output); on
hardware-coherent boards the candidate set gains `upm` (coherent unified
memory: system allocation, no copies or migrations), and `--pages`
re-maps the shared allocation with 4K/64K/2M pages — huge pages shrink
TLB pressure and can flip the UM-vs-UPM verdict. `compare` measures
every model as ground truth. `adapt` runs the online
phase-aware controller over the app's three-phase variant (N windows per
phase) and reports switches, detection latency, and regret against the
per-phase oracle. `experiments` regenerates every table and figure of
the paper.

`chaos` replays a seeded fault-injection campaign against the adaptation
stack (counter noise, NaN/Inf, dropped/duplicated/reordered windows,
stalls, snapshot corruption) and reports survival, regret inflation vs
the fault-free run, and safe fallbacks to SC. Plans are a preset name —
none, noise, loss, corrupt, hostile, full — optionally tuned with
knob=value overrides, e.g. `--plan loss,drop_prob=0.4`. One campaign per
`--seed`; identical seeds produce byte-identical reports. With `--fleet`
the campaign instead drives the plan's fleet-scale knobs — `churn_prob`
(crash-and-rejoin eviction), `poison_prob` (adversarial registry
uploads), `shard_panics` (live-fire shard crashes) — through a full
fleet run per seed on the supervised binary plane and reports survival
through the fleet pass gate.

`serve` runs the tuning service over TCP (default 127.0.0.1:7311).
`--wire json` (the default) speaks one JSON request per line with a
thread per connection; `--wire binary` runs the event-driven
`icommwire v1` plane — length-prefixed CRC-checked frames, per-core
shard event loops, batched submission into the worker pool. `batch`
answers a file (or stdin) of line-JSON requests in one shot. All modes
memoize device characterizations in a shared registry; `--registry
<file>` persists it across runs, `--full` trades latency for the
full-resolution sweep, and `--stats` reports cache hit rate, queue
depth, and latency histograms. `servebench` races the two planes over
one shared service and reports requests/sec, p50/p99, and decision
parity (`--hostile` also fires malformed-frame clients and reports the
fault counters).

`fleet` synthesizes a clustered device population over the board mix
(firmware clusters plus per-unit clock drift), replays a seeded open-loop
arrival schedule through the registry, federated-transfer, and
admission-control stack in virtual time, then live-fires a real TCP
server in-process. It reports warm-start rate, p50/p95/p99 latency, SLO
attainment, shed counts, and the decision regret of transferred vs full
characterizations. With `--tenants 2..4` every served device also
co-schedules a tenant mix of that size off its registry-resolved
characterization and the report gains per-tenant SLO attainment.
`--faults` injects the fleet-scale chaos knobs into the run —
`churn_prob` evicts devices' registry state before their lookup,
`poison_prob` plants adversarial characterizations the Byzantine-robust
transfer path must quarantine, and `shard_panics` crashes live-fire
shard event loops mid-frame (requires `--wire binary`, whose supervised
plane restarts them). The same seed replays byte-identically, faults
included (`--json` prints only the deterministic report).

`sched` co-schedules a named tenant mix — duo, trio, quad, contended,
pressure — on one board. Communication models are assigned jointly
(every combination scored under the cross-tenant interference model, so
a zero-copy neighbour's channel pressure can flip a tenant off its solo
best), then the periodic schedule runs in virtual time under `--policy`:
`fifo` (release order, no regulation) or `deadline` (EDF slots plus a
MemGuard-style per-tenant bandwidth budget). Reports per-tenant
deadline-miss rate, slowdown vs solo, and throttle counts; identical
seeds replay byte-identically.

`synth` distills the brute-force decision stack into a handful of
human-readable algebraic rules: it sweeps the deterministic simulators
over the chosen boards and tenant mixes (`--mix` repeats; the default
sweep runs every solo app, every named co-run mix, and a memory-capped
`pressure` context), labels every tenant with the brute-force oracle's
model choice, enumerates guard predicates bottom-up by term size over
the characterization/workload feature grammar (observational
equivalence collapses candidates that behave identically on the
sweep), and greedily selects the fewest sound rules that cover every
sample. The rule set is re-validated rule-for-rule against the oracle —
contexts with any disagreement are excluded from its verified scope —
and `--save` writes it as a CRC-framed snapshot that `fleet` can serve
warm starts from. Same seed, same rules, byte for byte.

`--mem-cap SIZE` (sizes like `6m`, `512k`, `2g`; both `sched` and
`fleet` take it) bounds the summed memory footprint of the admitted mix:
the joint assignment re-solves under the cap (demoting tenants toward
cheaper-footprint models when the double-buffered optima do not fit),
and if even full demotion cannot fit, admission evicts
largest-footprint tenants first and reports the spill. Uncapped runs
admit against the board's stock DRAM budget, which the paper-scale
mixes never approach.
";

#[cfg(test)]
mod tests {
    use super::*;

    fn v(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&v(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse(&v(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn boards_command() {
        assert_eq!(parse(&v(&["boards"])).unwrap(), Command::Boards);
    }

    #[test]
    fn characterize_parses_board() {
        let c = parse(&v(&["characterize", "tx2"])).unwrap();
        assert_eq!(
            c,
            Command::Characterize {
                board: "tx2".into(),
                save: None,
            }
        );
        let c = parse(&v(&["characterize", "tx2", "--save", "c.json"])).unwrap();
        assert_eq!(
            c,
            Command::Characterize {
                board: "tx2".into(),
                save: Some("c.json".into()),
            }
        );
    }

    #[test]
    fn characterize_rejects_unknown_board() {
        assert!(parse(&v(&["characterize", "pi5"])).is_err());
        assert!(parse(&v(&["characterize"])).is_err());
    }

    #[test]
    fn tune_defaults_to_sc() {
        let c = parse(&v(&["tune", "xavier", "shwfs"])).unwrap();
        assert_eq!(
            c,
            Command::Tune {
                board: "xavier".into(),
                app: "shwfs".into(),
                current: CommModelKind::StandardCopy,
                pages: None,
                characterization: None,
                json: false,
            }
        );
    }

    #[test]
    fn tune_accepts_current_model_and_json() {
        let c = parse(&v(&["tune", "tx2", "orb", "--current", "zc", "--json"])).unwrap();
        assert_eq!(
            c,
            Command::Tune {
                board: "tx2".into(),
                app: "orb".into(),
                current: CommModelKind::ZeroCopy,
                pages: None,
                characterization: None,
                json: true,
            }
        );
    }

    #[test]
    fn tune_accepts_coherent_board_pages_and_upm() {
        let c = parse(&v(&[
            "tune",
            "mi300a-like",
            "shwfs",
            "--current",
            "upm",
            "--pages",
            "2m",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Tune {
                board: "mi300a-like".into(),
                app: "shwfs".into(),
                current: CommModelKind::CoherentUpm,
                pages: Some(PageSize::Huge2M),
                characterization: None,
                json: false,
            }
        );
        assert!(parse(&v(&["tune", "gh-like", "orb", "--pages", "1g"])).is_err());
    }

    #[test]
    fn adapt_parses_defaults_and_flags() {
        let c = parse(&v(&["adapt", "xavier"])).unwrap();
        assert_eq!(
            c,
            Command::Adapt {
                board: "xavier".into(),
                app: "shwfs".into(),
                windows: 8,
                stats: false,
                json: false,
                characterization: None,
            }
        );
        let c = parse(&v(&[
            "adapt",
            "tx2",
            "--app",
            "lane",
            "--windows",
            "12",
            "--stats",
            "--json",
            "--characterization",
            "c.json",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Adapt {
                board: "tx2".into(),
                app: "lane".into(),
                windows: 12,
                stats: true,
                json: true,
                characterization: Some("c.json".into()),
            }
        );
    }

    #[test]
    fn adapt_rejects_bad_inputs() {
        assert!(parse(&v(&["adapt"])).is_err());
        assert!(parse(&v(&["adapt", "pi5"])).is_err());
        assert!(parse(&v(&["adapt", "tx2", "--app", "quake"])).is_err());
        assert!(parse(&v(&["adapt", "tx2", "--windows", "0"])).is_err());
        assert!(parse(&v(&["adapt", "tx2", "--wat"])).is_err());
    }

    #[test]
    fn tune_rejects_bad_model_and_flags() {
        assert!(parse(&v(&["tune", "tx2", "orb", "--current", "xyz"])).is_err());
        assert!(parse(&v(&["tune", "tx2", "orb", "--wat"])).is_err());
        assert!(parse(&v(&["tune", "tx2", "nosuchapp"])).is_err());
    }

    #[test]
    fn board_aliases_resolve() {
        assert!(board_by_name("Xavier").is_some());
        assert!(board_by_name("jetson-agx-xavier").is_some());
        assert!(board_by_name("ORIN").is_some());
        assert!(board_by_name("MI300A").is_some());
        assert!(board_by_name("grace-hopper-like").is_some());
        assert!(board_by_name("nope").is_none());
    }

    #[test]
    fn every_canonical_board_name_resolves() {
        for name in BOARD_NAMES {
            assert!(board_by_name(name).is_some(), "board {name}");
        }
    }

    #[test]
    fn chaos_parses_defaults_and_flags() {
        let c = parse(&v(&["chaos", "tx2"])).unwrap();
        assert_eq!(
            c,
            Command::Chaos {
                board: "tx2".into(),
                app: "shwfs".into(),
                plan: "full".into(),
                seeds: vec![42],
                windows: 8,
                fleet: false,
                json: false,
            }
        );
        let c = parse(&v(&[
            "chaos",
            "xavier",
            "--app",
            "lane",
            "--plan",
            "loss,drop_prob=0.4",
            "--seed",
            "1",
            "--seed",
            "2",
            "--windows",
            "10",
            "--fleet",
            "--json",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Chaos {
                board: "xavier".into(),
                app: "lane".into(),
                plan: "loss,drop_prob=0.4".into(),
                seeds: vec![1, 2],
                windows: 10,
                fleet: true,
                json: true,
            }
        );
    }

    #[test]
    fn chaos_rejects_bad_inputs() {
        assert!(parse(&v(&["chaos"])).is_err());
        assert!(parse(&v(&["chaos", "pi5"])).is_err());
        assert!(parse(&v(&["chaos", "tx2", "--seed", "many"])).is_err());
        assert!(parse(&v(&["chaos", "tx2", "--windows", "0"])).is_err());
        assert!(parse(&v(&["chaos", "tx2", "--wat"])).is_err());
    }

    #[test]
    fn serve_parses_defaults_and_flags() {
        let c = parse(&v(&["serve"])).unwrap();
        assert_eq!(
            c,
            Command::Serve {
                addr: "127.0.0.1:7311".into(),
                wire: "json".into(),
                workers: 4,
                registry: None,
                full: false,
                stats: false,
            }
        );
        let c = parse(&v(&[
            "serve",
            "--addr",
            "0.0.0.0:9000",
            "--wire",
            "binary",
            "--workers",
            "8",
            "--registry",
            "reg.json",
            "--full",
            "--stats",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Serve {
                addr: "0.0.0.0:9000".into(),
                wire: "binary".into(),
                workers: 8,
                registry: Some("reg.json".into()),
                full: true,
                stats: true,
            }
        );
    }

    #[test]
    fn serve_rejects_bad_worker_counts() {
        assert!(parse(&v(&["serve", "--workers", "0"])).is_err());
        assert!(parse(&v(&["serve", "--workers", "many"])).is_err());
        assert!(parse(&v(&["serve", "--wat"])).is_err());
    }

    #[test]
    fn serve_rejects_unknown_wire_protocols() {
        assert!(parse(&v(&["serve", "--wire"])).is_err());
        assert!(parse(&v(&["serve", "--wire", "carrier-pigeon"])).is_err());
    }

    #[test]
    fn servebench_parses_defaults_and_flags() {
        let c = parse(&v(&["servebench"])).unwrap();
        assert_eq!(
            c,
            Command::Servebench {
                requests: 2_000,
                conns: 8,
                workers: 4,
                batch: 16,
                hostile: false,
                json: false,
            }
        );
        let c = parse(&v(&[
            "servebench",
            "--requests",
            "500",
            "--conns",
            "4",
            "--workers",
            "2",
            "--batch",
            "32",
            "--hostile",
            "--json",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Servebench {
                requests: 500,
                conns: 4,
                workers: 2,
                batch: 32,
                hostile: true,
                json: true,
            }
        );
    }

    #[test]
    fn servebench_rejects_bad_counts() {
        assert!(parse(&v(&["servebench", "--requests", "0"])).is_err());
        assert!(parse(&v(&["servebench", "--batch", "lots"])).is_err());
        assert!(parse(&v(&["servebench", "--wat"])).is_err());
    }

    #[test]
    fn batch_parses_file_and_flags() {
        let c = parse(&v(&["batch", "reqs.jsonl", "--stats"])).unwrap();
        assert_eq!(
            c,
            Command::Batch {
                file: Some("reqs.jsonl".into()),
                workers: 4,
                registry: None,
                full: false,
                stats: true,
            }
        );
        assert!(parse(&v(&["batch", "a.jsonl", "b.jsonl"])).is_err());
    }

    #[test]
    fn fleet_parses_defaults_and_flags() {
        let c = parse(&v(&["fleet", "nano,tx2,xavier"])).unwrap();
        assert_eq!(
            c,
            Command::Fleet {
                mix: "nano,tx2,xavier".into(),
                devices: 256,
                arrival: "poisson".into(),
                rate: 400.0,
                seed: 7,
                tenants: 1,
                wire: "json".into(),
                faults: "none".into(),
                mem_cap: None,
                json: false,
            }
        );
        let c = parse(&v(&[
            "fleet",
            "nano",
            "--devices",
            "1000",
            "--arrival",
            "burst",
            "--rate",
            "800",
            "--seed",
            "9",
            "--tenants",
            "3",
            "--wire",
            "binary",
            "--faults",
            "none,churn_prob=0.1,poison_prob=0.1,shard_panics=2",
            "--mem-cap",
            "6m",
            "--json",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Fleet {
                mix: "nano".into(),
                devices: 1000,
                arrival: "burst".into(),
                rate: 800.0,
                seed: 9,
                tenants: 3,
                wire: "binary".into(),
                faults: "none,churn_prob=0.1,poison_prob=0.1,shard_panics=2".into(),
                mem_cap: Some(6 << 20),
                json: true,
            }
        );
    }

    #[test]
    fn fleet_rejects_bad_inputs() {
        assert!(parse(&v(&["fleet"])).is_err());
        assert!(parse(&v(&["fleet", "nano,pi5"])).is_err());
        assert!(parse(&v(&["fleet", "nano", "--devices", "0"])).is_err());
        assert!(parse(&v(&["fleet", "nano", "--arrival", "uniform"])).is_err());
        assert!(parse(&v(&["fleet", "nano", "--rate", "-3"])).is_err());
        assert!(parse(&v(&["fleet", "nano", "--seed", "many"])).is_err());
        assert!(parse(&v(&["fleet", "nano", "--tenants", "0"])).is_err());
        assert!(parse(&v(&["fleet", "nano", "--tenants", "5"])).is_err());
        assert!(parse(&v(&["fleet", "nano", "--faults"])).is_err());
        assert!(parse(&v(&["fleet", "nano", "--faults", "none,churn_prob=1.5"])).is_err());
        assert!(parse(&v(&["fleet", "nano", "--faults", "gremlins"])).is_err());
        assert!(parse(&v(&["fleet", "nano", "--mem-cap"])).is_err());
        assert!(parse(&v(&["fleet", "nano", "--mem-cap", "lots"])).is_err());
        assert!(parse(&v(&["fleet", "nano", "--wat"])).is_err());
    }

    #[test]
    fn sched_parses_defaults_and_flags() {
        let c = parse(&v(&["sched", "tx2"])).unwrap();
        assert_eq!(
            c,
            Command::Sched {
                board: "tx2".into(),
                mix: "contended".into(),
                policy: "deadline".into(),
                seed: 42,
                windows: 8,
                mem_cap: None,
                json: false,
            }
        );
        let c = parse(&v(&[
            "sched",
            "nano",
            "--mix",
            "duo",
            "--policy",
            "fifo",
            "--seed",
            "9",
            "--windows",
            "4",
            "--mem-cap",
            "512k",
            "--json",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Sched {
                board: "nano".into(),
                mix: "duo".into(),
                policy: "fifo".into(),
                seed: 9,
                windows: 4,
                mem_cap: Some(512 << 10),
                json: true,
            }
        );
        // Policy aliases normalize to the canonical name.
        let c = parse(&v(&["sched", "tx2", "--policy", "edf"])).unwrap();
        assert!(matches!(c, Command::Sched { policy, .. } if policy == "deadline"));
    }

    #[test]
    fn sched_rejects_bad_inputs() {
        assert!(parse(&v(&["sched"])).is_err());
        assert!(parse(&v(&["sched", "pi5"])).is_err());
        assert!(parse(&v(&["sched", "tx2", "--mix", "solo"])).is_err());
        assert!(parse(&v(&["sched", "tx2", "--policy", "lottery"])).is_err());
        assert!(parse(&v(&["sched", "tx2", "--windows", "0"])).is_err());
        assert!(parse(&v(&["sched", "tx2", "--seed", "many"])).is_err());
        assert!(parse(&v(&["sched", "tx2", "--mem-cap", "-6m"])).is_err());
        assert!(parse(&v(&["sched", "tx2", "--wat"])).is_err());
    }

    #[test]
    fn synth_parses_defaults_and_flags() {
        let c = parse(&v(&["synth", "all"])).unwrap();
        assert_eq!(
            c,
            Command::Synth {
                board: "all".into(),
                mixes: vec![],
                max_size: 3,
                seed: 42,
                save: None,
                json: false,
            }
        );
        let c = parse(&v(&[
            "synth",
            "tx2",
            "--mix",
            "solo:shwfs",
            "--mix",
            "duo",
            "--max-size",
            "2",
            "--seed",
            "9",
            "--save",
            "rules.snap",
            "--json",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Synth {
                board: "tx2".into(),
                mixes: vec!["solo:shwfs".into(), "duo".into()],
                max_size: 2,
                seed: 9,
                save: Some("rules.snap".into()),
                json: true,
            }
        );
    }

    #[test]
    fn synth_rejects_bad_inputs() {
        assert!(parse(&v(&["synth"])).is_err());
        assert!(parse(&v(&["synth", "pi5"])).is_err());
        assert!(parse(&v(&["synth", "tx2", "--mix", "solo:quake"])).is_err());
        assert!(parse(&v(&["synth", "tx2", "--max-size", "0"])).is_err());
        assert!(parse(&v(&["synth", "tx2", "--max-size", "9"])).is_err());
        assert!(parse(&v(&["synth", "tx2", "--seed", "many"])).is_err());
        assert!(parse(&v(&["synth", "tx2", "--save"])).is_err());
        assert!(parse(&v(&["synth", "tx2", "--wat"])).is_err());
    }

    #[test]
    fn unknown_command_errors() {
        let err = parse(&v(&["frobnicate"])).unwrap_err();
        assert!(err.0.contains("unknown command"));
    }
}
