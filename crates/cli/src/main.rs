//! `icomm` — command-line front end for the CPU-iGPU communication
//! tuning framework. See `icomm help`.

use std::process::ExitCode;

use icomm_cli::args::parse;
use icomm_cli::run::execute;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse(&args) {
        Ok(command) => command,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::FAILURE;
        }
    };
    match execute(&command) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
