//! Command implementations for the `icomm` CLI.

use std::fmt::Write as _;

use icomm_apps::{LaneApp, OrbApp, ShwfsApp};
use icomm_bench::experiments::{self, CharacterizationSet};
use icomm_bench::{ablation, ExperimentReport};
use icomm_core::Tuner;
use icomm_microbench::{characterize_device, DeviceCharacterization};
use icomm_models::{run_model, CommModelKind, Workload};

use crate::args::{board_by_name, Command, BOARD_NAMES, HELP};

/// Builds the workload for an application name.
///
/// # Panics
///
/// Panics on unknown names (the parser validates them first).
pub fn workload_by_name(app: &str) -> Workload {
    match app.to_ascii_lowercase().as_str() {
        "shwfs" => ShwfsApp::default().workload(),
        "orb" => OrbApp::default().workload(),
        "lane" => LaneApp::default().workload(),
        other => panic!("unknown app {other}"),
    }
}

/// Executes a parsed command and returns the text to print.
pub fn execute(command: &Command) -> String {
    match command {
        Command::Help => HELP.to_string(),
        Command::Boards => boards(),
        Command::Characterize { board, save } => characterize(board, save.as_deref()),
        Command::Tune {
            board,
            app,
            current,
            characterization,
        } => tune(board, app, *current, characterization.as_deref()),
        Command::Compare { board, app } => compare(board, app),
        Command::Experiments => run_experiments(),
    }
}

fn boards() -> String {
    let mut out = String::from("built-in boards:\n");
    for name in BOARD_NAMES {
        let device = board_by_name(name).expect("listed boards resolve");
        let _ = writeln!(
            out,
            "  {:<10} {} — {} SMs @ {}, DRAM {}, {}",
            name,
            device.name,
            device.gpu.sm_count,
            device.gpu.freq,
            device.dram.peak_bandwidth,
            if device.is_io_coherent() {
                "HW I/O coherent"
            } else {
                "no I/O coherence (ZC bypasses CPU+GPU caches)"
            },
        );
    }
    out
}

fn characterize(board: &str, save: Option<&str>) -> String {
    let device = board_by_name(board).expect("validated by the parser");
    let c = characterize_device(&device);
    let mut out = format!("characterization of {}:\n", device.name);
    let _ = writeln!(
        out,
        "  peak GPU cache throughput : {:>9.2} GB/s",
        c.gpu_cache_max_throughput / 1e9
    );
    let _ = writeln!(
        out,
        "  zero-copy path throughput : {:>9.2} GB/s ({:.1}x below peak)",
        c.gpu_zc_throughput / 1e9,
        c.gpu_cache_max_throughput / c.gpu_zc_throughput
    );
    let _ = writeln!(
        out,
        "  GPU cache threshold       : {:>8.1} %",
        c.gpu_cache_threshold_pct
    );
    let _ = writeln!(
        out,
        "  GPU zone-2 limit          : {:>8}",
        c.gpu_cache_zone2_pct
            .map(|v| format!("{v:.1} %"))
            .unwrap_or_else(|| "n/a".into())
    );
    let _ = writeln!(
        out,
        "  CPU cache threshold       : {:>8.1} %",
        c.cpu_cache_threshold_pct
    );
    let _ = writeln!(
        out,
        "  max SC->ZC speedup        : {:>8.2} x{}",
        c.sc_zc_max_speedup,
        if c.zc_viable() {
            ""
        } else {
            "  (zero copy never pays off here)"
        }
    );
    let _ = writeln!(
        out,
        "  max ZC->SC speedup        : {:>8.2} x",
        c.zc_sc_max_speedup
    );
    if let Some(path) = save {
        match icomm_persist::to_string(&c) {
            Ok(json) => match std::fs::write(path, json) {
                Ok(()) => {
                    let _ = writeln!(out, "saved to {path}");
                }
                Err(err) => {
                    let _ = writeln!(out, "FAILED to write {path}: {err}");
                }
            },
            Err(err) => {
                let _ = writeln!(out, "FAILED to serialize: {err}");
            }
        }
    }
    out
}

fn tune(board: &str, app: &str, current: CommModelKind, characterization: Option<&str>) -> String {
    let device = board_by_name(board).expect("validated by the parser");
    let workload = workload_by_name(app);
    let tuner = match characterization {
        Some(path) => match load_characterization(path) {
            Ok(c) => Tuner::with_characterization(device, c),
            Err(err) => return format!("error: {err}\n"),
        },
        None => Tuner::new(device),
    };
    let validation = tuner.validate(&workload, current);
    format!(
        "{}\n\nvalidated against ground truth: {}\n",
        validation.recommendation,
        validation.summary()
    )
}

fn compare(board: &str, app: &str) -> String {
    let device = board_by_name(board).expect("validated by the parser");
    let workload = workload_by_name(app);
    let sc = run_model(CommModelKind::StandardCopy, &device, &workload);
    let mut out = format!("{} on {} (per frame):\n", workload.name, device.name);
    for kind in CommModelKind::EXTENDED {
        let run = run_model(kind, &device, &workload);
        let delta = if kind == CommModelKind::StandardCopy {
            "      -".to_string()
        } else {
            format!("{:+6.0}%", run.speedup_vs_percent(&sc))
        };
        let _ = writeln!(
            out,
            "  {:>3}: {:>10.2} us (cpu {:>9.2}, kernel {:>9.2}, copies {:>8.2}) {delta} vs SC, {:>6.2} mJ",
            kind.abbrev(),
            run.time_per_iteration().as_micros_f64(),
            run.cpu_time_per_iteration().as_micros_f64(),
            run.kernel_time_per_iteration().as_micros_f64(),
            run.copy_time_per_iteration().as_micros_f64(),
            run.energy.as_joules() * 1e3 / run.iterations as f64,
        );
    }
    out
}

/// Loads a cached characterization from a JSON file.
fn load_characterization(path: &str) -> Result<DeviceCharacterization, String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    icomm_persist::from_str(&text).map_err(|err| format!("cannot parse {path}: {err}"))
}

fn run_experiments() -> String {
    let mut reports: Vec<ExperimentReport> = vec![
        experiments::fig5_and_table1(),
        experiments::fig3_xavier(),
        experiments::fig6_tx2(),
        experiments::fig7(1 << 26),
    ];
    let chars = CharacterizationSet::measure();
    reports.push(experiments::table2_shwfs(&chars));
    reports.push(experiments::table3_shwfs());
    reports.push(experiments::table4_orb(&chars));
    reports.push(experiments::table5_orb());
    reports.push(experiments::validation_summary(&chars));
    reports.push(ablation::ablation_io_coherence());
    reports.push(experiments::crossover_sweep());
    reports
        .iter()
        .map(ExperimentReport::render)
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boards_lists_all() {
        let text = boards();
        for name in BOARD_NAMES {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        assert!(text.contains("I/O coherent"));
    }

    #[test]
    fn workloads_resolve() {
        assert!(workload_by_name("shwfs").name.contains("shwfs"));
        assert!(workload_by_name("orb").name.contains("orb"));
        assert!(workload_by_name("lane").name.contains("lane"));
    }

    #[test]
    fn compare_renders_all_models() {
        let text = compare("xavier", "lane");
        for abbrev in ["SC", "UM", "ZC", "SC+"] {
            assert!(text.contains(abbrev), "missing {abbrev}");
        }
    }

    #[test]
    fn execute_help() {
        assert!(execute(&Command::Help).contains("USAGE"));
    }
}
