//! Command implementations for the `icomm` CLI.

use std::fmt::Write as _;
use std::io::{BufRead, Write as _};
use std::sync::Arc;
use std::time::Duration;

use icomm_adapt::{evaluate, ControllerConfig};
use icomm_apps::{LaneApp, OrbApp, ShwfsApp};
use icomm_bench::experiments::{self, CharacterizationSet};
use icomm_bench::{ablation, ExperimentReport};
use icomm_core::Tuner;
use icomm_microbench::{characterize_device, quick_characterize_device, DeviceCharacterization};
use icomm_models::{run_model, CommModelKind, PhasedWorkload, Workload};
use icomm_net::{run_load, warmup, BinaryClient, BinaryServer, LoadReport, NetConfig, WireMode};
use icomm_serve::{
    AdmissionConfig, Server, ServiceConfig, TuneRequest, TuneResponse, TuningService,
};
use icomm_soc::units::ByteSize;
use icomm_soc::{DeviceProfile, PageSize};

use crate::args::{board_by_name, Command, APP_NAMES, BOARD_NAMES, HELP};

/// Builds the workload for an application name.
///
/// # Errors
///
/// Returns a message listing the valid names.
pub fn workload_by_name(app: &str) -> Result<Workload, String> {
    match app.to_ascii_lowercase().as_str() {
        "shwfs" => Ok(ShwfsApp::default().workload()),
        "orb" => Ok(OrbApp::default().workload()),
        "lane" => Ok(LaneApp::default().workload()),
        other => Err(format!(
            "unknown app '{other}' (known: {})",
            APP_NAMES.join(", ")
        )),
    }
}

/// Builds the three-phase workload variant for an application name.
///
/// # Errors
///
/// Returns a message listing the valid names.
pub fn phased_workload_by_name(
    app: &str,
    windows_per_phase: u32,
) -> Result<PhasedWorkload, String> {
    match app.to_ascii_lowercase().as_str() {
        "shwfs" => Ok(ShwfsApp::default().phased_workload(windows_per_phase)),
        "orb" => Ok(OrbApp::default().phased_workload(windows_per_phase)),
        "lane" => Ok(LaneApp::default().phased_workload(windows_per_phase)),
        other => Err(format!(
            "unknown app '{other}' (known: {})",
            APP_NAMES.join(", ")
        )),
    }
}

/// Resolves a board name or fails with the list of valid names.
fn require_board(name: &str) -> Result<DeviceProfile, String> {
    board_by_name(name)
        .ok_or_else(|| format!("unknown board '{name}' (known: {})", BOARD_NAMES.join(", ")))
}

/// Executes a parsed command and returns the text to print.
///
/// # Errors
///
/// Returns a user-facing message; the binary prints it and exits
/// non-zero.
pub fn execute(command: &Command) -> Result<String, String> {
    match command {
        Command::Help => Ok(HELP.to_string()),
        Command::Boards => Ok(boards()),
        Command::Characterize { board, save } => characterize(board, save.as_deref()),
        Command::Tune {
            board,
            app,
            current,
            pages,
            json,
            characterization,
        } => tune(
            board,
            app,
            *current,
            *pages,
            *json,
            characterization.as_deref(),
        ),
        Command::Adapt {
            board,
            app,
            windows,
            stats,
            json,
            characterization,
        } => adapt(
            board,
            app,
            *windows,
            *stats,
            *json,
            characterization.as_deref(),
        ),
        Command::Chaos {
            board,
            app,
            plan,
            seeds,
            windows,
            fleet,
            json,
        } => chaos(board, app, plan, seeds, *windows, *fleet, *json),
        Command::Compare { board, app } => compare(board, app),
        Command::Experiments => run_experiments(),
        Command::Serve {
            addr,
            wire,
            workers,
            registry,
            full,
            stats,
        } => serve(addr, wire, *workers, registry.as_deref(), *full, *stats),
        Command::Servebench {
            requests,
            conns,
            workers,
            batch,
            hostile,
            json,
        } => servebench(*requests, *conns, *workers, *batch, *hostile, *json),
        Command::Batch {
            file,
            workers,
            registry,
            full,
            stats,
        } => batch(
            file.as_deref(),
            *workers,
            registry.as_deref(),
            *full,
            *stats,
        ),
        Command::Fleet {
            mix,
            devices,
            arrival,
            rate,
            seed,
            tenants,
            wire,
            faults,
            mem_cap,
            json,
        } => fleet(
            mix, *devices, arrival, *rate, *seed, *tenants, wire, faults, *mem_cap, *json,
        ),
        Command::Sched {
            board,
            mix,
            policy,
            seed,
            windows,
            mem_cap,
            json,
        } => sched(board, mix, policy, *seed, *windows, *mem_cap, *json),
        Command::Synth {
            board,
            mixes,
            max_size,
            seed,
            save,
            json,
        } => synth(board, mixes, *max_size, *seed, save.as_deref(), *json),
    }
}

fn boards() -> String {
    let mut out = String::from("built-in boards:\n");
    for name in BOARD_NAMES {
        let Some(device) = board_by_name(name) else {
            // A catalog name without a profile is a wiring bug; surface
            // it in the listing instead of aborting the whole command.
            let _ = writeln!(out, "  {name:<10} (unresolvable board name)");
            continue;
        };
        let _ = writeln!(
            out,
            "  {:<10} {} — {} SMs @ {}, DRAM {}, {}",
            name,
            device.name,
            device.gpu.sm_count,
            device.gpu.freq,
            device.dram.peak_bandwidth,
            if device.is_io_coherent() {
                "HW I/O coherent"
            } else {
                "no I/O coherence (ZC bypasses CPU+GPU caches)"
            },
        );
    }
    out
}

fn characterize(board: &str, save: Option<&str>) -> Result<String, String> {
    let device = require_board(board)?;
    let c = characterize_device(&device);
    let mut out = format!("characterization of {}:\n", device.name);
    let _ = writeln!(
        out,
        "  peak GPU cache throughput : {:>9.2} GB/s",
        c.gpu_cache_max_throughput / 1e9
    );
    let _ = writeln!(
        out,
        "  zero-copy path throughput : {:>9.2} GB/s ({:.1}x below peak)",
        c.gpu_zc_throughput / 1e9,
        c.gpu_cache_max_throughput / c.gpu_zc_throughput
    );
    let _ = writeln!(
        out,
        "  GPU cache threshold       : {:>8.1} %",
        c.gpu_cache_threshold_pct
    );
    let _ = writeln!(
        out,
        "  GPU zone-2 limit          : {:>8}",
        c.gpu_cache_zone2_pct
            .map(|v| format!("{v:.1} %"))
            .unwrap_or_else(|| "n/a".into())
    );
    let _ = writeln!(
        out,
        "  CPU cache threshold       : {:>8.1} %",
        c.cpu_cache_threshold_pct
    );
    let _ = writeln!(
        out,
        "  max SC->ZC speedup        : {:>8.2} x{}",
        c.sc_zc_max_speedup,
        if c.zc_viable() {
            ""
        } else {
            "  (zero copy never pays off here)"
        }
    );
    let _ = writeln!(
        out,
        "  max ZC->SC speedup        : {:>8.2} x",
        c.zc_sc_max_speedup
    );
    if c.upm_supported {
        let _ = writeln!(
            out,
            "  UPM kernel penalty        : {:>8.2} x",
            c.upm_kernel_penalty
        );
        let _ = writeln!(
            out,
            "  max UM->UPM speedup       : {:>8.2} x{}",
            c.um_upm_max_speedup,
            if c.um_upm_max_speedup > 1.0 {
                ""
            } else {
                "  (UPM never pays off at this page size)"
            }
        );
    }
    if let Some(path) = save {
        let json =
            icomm_persist::to_string(&c).map_err(|err| format!("cannot serialize: {err}"))?;
        std::fs::write(path, json).map_err(|err| format!("cannot write {path}: {err}"))?;
        let _ = writeln!(out, "saved to {path}");
    }
    Ok(out)
}

fn tune(
    board: &str,
    app: &str,
    current: CommModelKind,
    pages: Option<PageSize>,
    json: bool,
    characterization: Option<&str>,
) -> Result<String, String> {
    let mut device = require_board(board)?;
    if let Some(page) = pages {
        device = device.with_page_size(page);
    }
    let workload = workload_by_name(app)?;
    let tuner = match characterization {
        Some(path) => Tuner::with_characterization(device, load_characterization(path)?),
        None => Tuner::new(device),
    };
    let validation = tuner.validate(&workload, current);
    if json {
        let mut out = icomm_persist::to_string(&validation)
            .map_err(|err| format!("cannot serialize validation: {err}"))?;
        out.push('\n');
        return Ok(out);
    }
    Ok(format!(
        "{}\n\nvalidated against ground truth: {}\n",
        validation.recommendation,
        validation.summary()
    ))
}

/// `icomm adapt`: run the online adaptation controller over an
/// application's three-phase workload and report it against the static
/// and oracle baselines.
fn adapt(
    board: &str,
    app: &str,
    windows: u32,
    stats: bool,
    json: bool,
    characterization: Option<&str>,
) -> Result<String, String> {
    let device = require_board(board)?;
    let phased = phased_workload_by_name(app, windows)?;
    let c = match characterization {
        Some(path) => load_characterization(path)?,
        None => quick_characterize_device(&device),
    };
    let config = ControllerConfig {
        payload_hint: phased.phases[0].workload.bytes_exchanged(),
        ..ControllerConfig::default()
    };
    let report = evaluate(&device, &c, &phased, config);
    if json {
        let mut out = icomm_persist::to_string(&report)
            .map_err(|err| format!("cannot serialize report: {err}"))?;
        out.push('\n');
        return Ok(out);
    }
    let mut out = format!("{report}\n");
    if stats {
        let _ = writeln!(out, "--- stats ---");
        let _ = writeln!(out, "{}", report.stats);
        // The same counters as the serving layer aggregates them.
        let metrics = icomm_serve::Metrics::new();
        metrics.record_adaptation(
            report.stats.windows,
            u64::from(report.stats.switches),
            u64::from(report.stats.drifts),
            report.regret_pct,
        );
        let _ = writeln!(out, "--- serve metrics ---");
        let _ = write!(out, "{}", metrics.snapshot());
    }
    Ok(out)
}

/// `icomm chaos`: replay a seeded fault-injection campaign and report
/// survival, regret inflation, and safe-fallback activations.
#[allow(clippy::too_many_arguments)]
fn chaos(
    board: &str,
    app: &str,
    plan_spec: &str,
    seeds: &[u64],
    windows: u32,
    fleet: bool,
    json: bool,
) -> Result<String, String> {
    let device = require_board(board)?;
    let plan = icomm_chaos::FaultPlan::parse(plan_spec)?;
    if fleet {
        return chaos_fleet(board, &plan, seeds, json);
    }
    let phased = phased_workload_by_name(app, windows)?;
    let characterization = quick_characterize_device(&device);
    let reports = icomm_chaos::chaos_matrix(&device, &characterization, &phased, &plan, seeds);
    if json {
        let mut out = icomm_persist::to_string(&reports)
            .map_err(|err| format!("cannot serialize reports: {err}"))?;
        out.push('\n');
        return Ok(out);
    }
    let mut out = String::new();
    for report in &reports {
        let _ = writeln!(out, "{report}");
    }
    let _ = writeln!(out, "--- matrix ---");
    let _ = write!(out, "{}", icomm_chaos::render_matrix(&reports));
    if reports.iter().all(icomm_chaos::ChaosReport::passed) {
        Ok(out)
    } else {
        Err(format!("chaos campaign FAILED\n\n{out}"))
    }
}

/// `icomm chaos --fleet`: drive the plan's fleet-scale knobs (churn,
/// registry poisoning, shard panics) through a full fleet campaign per
/// seed. The live-fire slice always runs on the supervised binary plane
/// so injected shard panics have a supervisor to recover them.
fn chaos_fleet(
    board: &str,
    plan: &icomm_chaos::FaultPlan,
    seeds: &[u64],
    json: bool,
) -> Result<String, String> {
    let mut reports = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let config = icomm_fleet::FleetConfig {
            boards: board.to_string(),
            seed,
            livefire_wire: WireMode::Binary,
            faults: plan.clone(),
            ..icomm_fleet::FleetConfig::default()
        };
        reports.push(icomm_fleet::run_fleet(&config)?.report);
    }
    if json {
        let mut out = icomm_persist::to_string(&reports)
            .map_err(|err| format!("cannot serialize fleet reports: {err}"))?;
        out.push('\n');
        return Ok(out);
    }
    let mut out = String::new();
    for report in &reports {
        let _ = writeln!(out, "{report}\n");
    }
    if reports.iter().all(icomm_fleet::FleetReport::passed) {
        Ok(out)
    } else {
        Err(format!("fleet chaos campaign FAILED\n\n{out}"))
    }
}

fn compare(board: &str, app: &str) -> Result<String, String> {
    let device = require_board(board)?;
    let workload = workload_by_name(app)?;
    let sc = run_model(CommModelKind::StandardCopy, &device, &workload);
    let mut out = format!("{} on {} (per frame):\n", workload.name, device.name);
    for kind in CommModelKind::EXTENDED {
        // UPM only exists as a distinct path on hardware-coherent boards;
        // elsewhere it would render a duplicate of the UM row.
        if kind == CommModelKind::CoherentUpm && !device.supports_coherent_upm() {
            continue;
        }
        let run = run_model(kind, &device, &workload);
        let delta = if kind == CommModelKind::StandardCopy {
            "      -".to_string()
        } else {
            format!("{:+6.0}%", run.speedup_vs_percent(&sc))
        };
        let footprint = icomm_footprint::model_footprint(kind, &workload, &device);
        let _ = writeln!(
            out,
            "  {:>3}: {:>10.2} us (cpu {:>9.2}, kernel {:>9.2}, copies {:>8.2}) {delta} vs SC, {:>6.2} mJ, {:>10} resident",
            kind.abbrev(),
            run.time_per_iteration().as_micros_f64(),
            run.cpu_time_per_iteration().as_micros_f64(),
            run.kernel_time_per_iteration().as_micros_f64(),
            run.copy_time_per_iteration().as_micros_f64(),
            run.energy.as_joules() * 1e3 / run.iterations as f64,
            icomm_footprint::human_bytes(footprint.as_u64()),
        );
    }
    Ok(out)
}

/// Loads a cached characterization from a JSON file.
fn load_characterization(path: &str) -> Result<DeviceCharacterization, String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    icomm_persist::from_str(&text).map_err(|err| format!("cannot parse {path}: {err}"))
}

fn run_experiments() -> Result<String, String> {
    let mut reports: Vec<ExperimentReport> = vec![
        experiments::fig5_and_table1(),
        experiments::fig3_xavier(),
        experiments::fig6_tx2(),
        experiments::fig7(1 << 26),
    ];
    let chars = CharacterizationSet::measure();
    reports.push(experiments::table2_shwfs(&chars)?);
    reports.push(experiments::table3_shwfs()?);
    reports.push(experiments::table4_orb(&chars)?);
    reports.push(experiments::table5_orb()?);
    reports.push(experiments::validation_summary(&chars)?);
    reports.push(ablation::ablation_io_coherence());
    reports.push(experiments::crossover_sweep());
    Ok(reports
        .iter()
        .map(ExperimentReport::render)
        .collect::<Vec<_>>()
        .join("\n"))
}

/// Builds the service configuration the `serve`/`batch` commands share.
fn service_config(workers: usize, registry: Option<&str>, full: bool) -> ServiceConfig {
    let base = if full {
        ServiceConfig::default()
    } else {
        ServiceConfig::quick()
    };
    let base = base.with_workers(workers);
    match registry {
        Some(path) => base.with_registry_path(path.into()),
        None => base,
    }
}

/// `icomm serve`: run the TCP tuning service until the process is killed.
fn serve(
    addr: &str,
    wire: &str,
    workers: usize,
    registry: Option<&str>,
    full: bool,
    stats: bool,
) -> Result<String, String> {
    let mode = WireMode::parse(wire)?;
    let service = Arc::new(TuningService::start(service_config(
        workers, registry, full,
    )));
    let warm = service.registry().len();
    match mode {
        WireMode::Json => {
            let server = Server::start(service, addr)
                .map_err(|err| format!("cannot listen on {addr}: {err}"))?;
            println!(
                "icomm-serve listening on {} (line JSON, {workers} workers, {} sweep, {} warm registry entries)",
                server.local_addr(),
                if full { "full" } else { "quick" },
                warm,
            );
            println!("one JSON request per line, e.g.:");
            let nc_addr = addr.replacen(':', " ", 1);
            println!(
                "  echo '{{\"id\": 1, \"board\": \"xavier\", \"app\": \"shwfs\"}}' | nc {nc_addr}"
            );
            loop {
                std::thread::sleep(Duration::from_secs(30));
                if stats {
                    eprintln!("{}", server.service().metrics());
                }
            }
        }
        WireMode::Binary => {
            let server = BinaryServer::start(service, addr)
                .map_err(|err| format!("cannot listen on {addr}: {err}"))?;
            println!(
                "icomm-serve listening on {} (icommwire v1 binary, {workers} workers, {} sweep, {} warm registry entries)",
                server.local_addr(),
                if full { "full" } else { "quick" },
                warm,
            );
            println!(
                "frames: [u32 len][u8 ver=1][u8 op][body][u32 crc32]; drive it with `icomm servebench` or icomm-net's BinaryClient"
            );
            loop {
                std::thread::sleep(Duration::from_secs(30));
                if stats {
                    eprintln!("{}", server.service().metrics());
                }
            }
        }
    }
}

/// Sends the same tuning requests down the JSON and the binary plane and
/// counts decision payloads that differ. Transport fields (latency,
/// cache provenance) are excluded by [`TuneResponse::decision_payload`],
/// so a cached binary answer still has to match the JSON plane byte for
/// byte.
fn parity_check(
    json_addr: std::net::SocketAddr,
    binary_addr: std::net::SocketAddr,
) -> Result<(u64, u64), String> {
    let cases: [(&str, &str, Option<&str>); 5] = [
        ("nano", "shwfs", None),
        ("tx2", "orb", Some("SC")),
        ("xavier", "lane", None),
        ("nano", "lane", Some("UM")),
        ("tx2", "shwfs", None),
    ];
    let mut binary = BinaryClient::connect(binary_addr)
        .map_err(|err| format!("parity client cannot reach the binary plane: {err}"))?;
    let stream = std::net::TcpStream::connect(json_addr)
        .map_err(|err| format!("parity client cannot reach the JSON plane: {err}"))?;
    let mut reader = std::io::BufReader::new(
        stream
            .try_clone()
            .map_err(|err| format!("parity client cannot clone its stream: {err}"))?,
    );
    let mut writer = stream;
    let mut mismatches = 0u64;
    for (id, (board, app, current)) in cases.iter().enumerate() {
        let mut request = TuneRequest::new(id as u64, board, app);
        if let Some(model) = current {
            request = request.with_current(model);
        }
        let line = icomm_persist::to_string(&request)
            .map_err(|err| format!("parity request failed to serialize: {err}"))?;
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .map_err(|err| format!("parity request failed to send: {err}"))?;
        let mut reply = String::new();
        reader
            .read_line(&mut reply)
            .map_err(|err| format!("parity response failed to arrive: {err}"))?;
        let json_response: TuneResponse = icomm_persist::from_str(reply.trim())
            .map_err(|err| format!("parity response failed to parse: {err:?}"))?;
        let binary_response = binary
            .tune(&request)
            .map_err(|err| format!("parity request failed on the binary plane: {err}"))?;
        if json_response.decision_payload() != binary_response.decision_payload() {
            mismatches += 1;
        }
    }
    Ok((cases.len() as u64, mismatches))
}

/// `icomm servebench`: run both serving planes over one shared service
/// and report throughput, tail latency, decision parity, and (with
/// `--hostile`) binary-listener survival under malformed traffic.
fn servebench(
    requests: usize,
    conns: usize,
    workers: usize,
    batch: usize,
    hostile: bool,
    json: bool,
) -> Result<String, String> {
    let service = Arc::new(TuningService::start(
        ServiceConfig::quick()
            .with_workers(workers)
            .with_admission(AdmissionConfig::unlimited()),
    ));
    let json_server = Server::start(Arc::clone(&service), "127.0.0.1:0")
        .map_err(|err| format!("servebench cannot bind the JSON listener: {err}"))?;
    // The short read deadline keeps the hostile truncation probe quick;
    // it never fires for well-formed load because only connections with
    // a stalled partial frame are reaped.
    let binary_server = BinaryServer::start_with(
        Arc::clone(&service),
        "127.0.0.1:0",
        NetConfig::default().with_read_deadline(Some(Duration::from_millis(1_500))),
    )
    .map_err(|err| format!("servebench cannot bind the binary listener: {err}"))?;
    let json_addr = json_server.local_addr();
    let binary_addr = binary_server.local_addr();

    // First-touch characterizations would otherwise be billed to
    // whichever plane runs first; warm every board x app pair on both.
    warmup(json_addr, WireMode::Json)?;
    warmup(binary_addr, WireMode::Binary)?;

    let (parity_checked, parity_mismatches) = parity_check(json_addr, binary_addr)?;

    let per_conn = requests.div_ceil(conns.max(1)).max(1);
    let json_report = run_load(json_addr, WireMode::Json, conns, per_conn, 1);
    let binary_report = run_load(binary_addr, WireMode::Binary, conns, per_conn, batch);

    let mut hostile_probes = 0u64;
    let mut hostile_defended = 0u64;
    if hostile {
        use icomm_chaos::tcp::{
            binary_corrupt_crc, binary_garbage, binary_oversized, binary_truncated, BinaryDefense,
        };
        let mut note = |outcome: std::io::Result<BinaryDefense>| {
            hostile_probes += 1;
            if matches!(
                outcome,
                Ok(BinaryDefense::ErrorFrame | BinaryDefense::Disconnected)
            ) {
                hostile_defended += 1;
            }
        };
        for seed in 0..3u64 {
            note(binary_garbage(binary_addr, seed, 64 + seed as usize * 57));
        }
        note(binary_oversized(binary_addr, 1 << 30));
        note(binary_corrupt_crc(binary_addr, 9));
        hostile_probes += 1;
        if binary_truncated(binary_addr, 6, Duration::from_secs(5)).unwrap_or(false) {
            hostile_defended += 1;
        }
    }

    let snapshot = service.metrics();
    json_server.stop();
    binary_server.stop();
    Arc::try_unwrap(service)
        .map_err(|_| "servebench listeners still hold service references".to_string())?
        .shutdown()?;

    let speedup = if json_report.rps > 0.0 {
        binary_report.rps / json_report.rps
    } else {
        0.0
    };

    if json {
        return Ok(format!(
            concat!(
                "{{\"requests_per_plane\":{},\"conns\":{},\"workers\":{},\"batch\":{},",
                "\"json_rps\":{:.1},\"json_p50_us\":{},\"json_p99_us\":{},\"json_failed\":{},",
                "\"binary_rps\":{:.1},\"binary_p50_us\":{},\"binary_p99_us\":{},\"binary_failed\":{},",
                "\"speedup\":{:.2},\"parity_checked\":{},\"parity_mismatches\":{},",
                "\"decision_cache_hits\":{},\"batches_submitted\":{},\"batched_requests\":{},",
                "\"frame_faults\":{},\"hostile_probes\":{},\"hostile_defended\":{}}}\n"
            ),
            json_report.sent,
            conns,
            workers,
            batch,
            json_report.rps,
            json_report.p50_us,
            json_report.p99_us,
            json_report.failed,
            binary_report.rps,
            binary_report.p50_us,
            binary_report.p99_us,
            binary_report.failed,
            speedup,
            parity_checked,
            parity_mismatches,
            snapshot.decision_cache_hits,
            snapshot.batches_submitted,
            snapshot.batched_requests,
            snapshot.frame_faults(),
            hostile_probes,
            hostile_defended,
        ));
    }

    let plane_line = |report: &LoadReport| {
        format!(
            "  {:<7} {:>10.1} rps   p50 {:>7} us   p99 {:>7} us   {}/{} ok",
            report.mode.as_str(),
            report.rps,
            report.p50_us,
            report.p99_us,
            report.ok,
            report.sent,
        )
    };
    let mut out = format!(
        "servebench: {} requests per plane, {conns} conns, {workers} workers, batch {batch}\n",
        json_report.sent,
    );
    out.push_str(&plane_line(&json_report));
    out.push('\n');
    out.push_str(&plane_line(&binary_report));
    out.push('\n');
    let _ = writeln!(out, "  speedup {speedup:.2}x (binary vs json)");
    let _ = writeln!(
        out,
        "  parity  {}/{} decision payloads identical",
        parity_checked - parity_mismatches,
        parity_checked,
    );
    let _ = writeln!(
        out,
        "  engine  {} batches ({} requests batched), {} decision cache hits",
        snapshot.batches_submitted, snapshot.batched_requests, snapshot.decision_cache_hits,
    );
    if hostile {
        let _ = writeln!(
            out,
            "  hostile {hostile_defended}/{hostile_probes} probes defended, {} frame faults counted",
            snapshot.frame_faults(),
        );
    }
    Ok(out)
}

/// `icomm batch`: answer a file (or stdin) of line-JSON requests.
fn batch(
    file: Option<&str>,
    workers: usize,
    registry: Option<&str>,
    full: bool,
    stats: bool,
) -> Result<String, String> {
    let text = match file {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?
        }
        None => {
            let mut buffer = String::new();
            for line in std::io::stdin().lock().lines() {
                let line = line.map_err(|err| format!("cannot read stdin: {err}"))?;
                buffer.push_str(&line);
                buffer.push('\n');
            }
            buffer
        }
    };
    let service = TuningService::start(service_config(workers, registry, full));
    let result = batch_text(&service, &text, stats);
    service.shutdown()?;
    result
}

/// Parses the request lines, runs them as one batch, and renders one
/// response per line (sorted by id, malformed-line failures last).
fn batch_text(service: &TuningService, text: &str, stats: bool) -> Result<String, String> {
    let mut requests = Vec::new();
    let mut malformed = Vec::new();
    for (index, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match icomm_persist::from_str::<TuneRequest>(line) {
            Ok(request) => requests.push(request),
            Err(err) => malformed.push(TuneResponse::failure(
                0,
                format!("line {}: malformed request: {err:?}", index + 1),
            )),
        }
    }
    let mut responses = service.submit_batch(requests).wait();
    responses.extend(malformed);
    let mut out = String::new();
    for response in &responses {
        let json = icomm_persist::to_string(response)
            .map_err(|err| format!("cannot serialize response: {err}"))?;
        let _ = writeln!(out, "{json}");
    }
    if stats {
        let _ = writeln!(out, "--- stats ---");
        let _ = write!(out, "{}", service.metrics());
    }
    Ok(out)
}

/// `icomm fleet`: simulate a clustered device fleet against the tuning
/// stack and report warm-start rate, tail latency, shedding, and
/// transfer regret.
#[allow(clippy::too_many_arguments)]
fn fleet(
    mix: &str,
    devices: usize,
    arrival: &str,
    rate: f64,
    seed: u64,
    tenants: usize,
    wire: &str,
    faults: &str,
    mem_cap: Option<u64>,
    json: bool,
) -> Result<String, String> {
    let process = icomm_fleet::ArrivalProcess::parse(arrival)?;
    let config = icomm_fleet::FleetConfig {
        boards: mix.to_string(),
        devices,
        arrival: icomm_fleet::ArrivalConfig {
            process,
            rate_per_sec: rate,
            ..icomm_fleet::ArrivalConfig::default()
        },
        seed,
        tenants_per_device: tenants,
        livefire_wire: WireMode::parse(wire)?,
        faults: icomm_chaos::FaultPlan::parse(faults)?,
        mem_cap: mem_cap.map(ByteSize),
        ..icomm_fleet::FleetConfig::default()
    };
    let out = icomm_fleet::run_fleet(&config)?;
    if json {
        // Only the deterministic report: the wall-clock live-fire stats
        // would break byte-identical replay.
        let mut text = icomm_persist::to_string(&out.report)
            .map_err(|err| format!("cannot serialize fleet report: {err}"))?;
        text.push('\n');
        return Ok(text);
    }
    let mut text = format!("{}\n", out.report);
    if let Some(livefire) = &out.livefire {
        let _ = writeln!(text, "{livefire}");
    }
    Ok(text)
}

/// Maps a CLI board name (with its aliases) onto the canonical name the
/// synth sweep and rule-set scope keys use.
fn canonical_synth_board(name: &str) -> Result<String, String> {
    let device = require_board(name)?;
    icomm_synth::BOARD_NAMES
        .iter()
        .find(|b| icomm_synth::stock_board(b).is_some_and(|d| d.name == device.name))
        .map(|b| (*b).to_string())
        .ok_or_else(|| format!("board '{name}' has no synthesis sweep profile"))
}

/// `icomm synth`: sweep the simulators, synthesize algebraic decision
/// rules, validate them against the brute-force oracle, and report the
/// rule set with its verified scope and compression ratio.
fn synth(
    board: &str,
    mixes: &[String],
    max_size: u32,
    seed: u64,
    save: Option<&str>,
    json: bool,
) -> Result<String, String> {
    let mut config = icomm_synth::SynthConfig {
        max_size,
        seed,
        ..icomm_synth::SynthConfig::default()
    };
    if board != "all" {
        config.boards = vec![canonical_synth_board(board)?];
    }
    if !mixes.is_empty() {
        config.mixes = mixes.to_vec();
        config.capped_pressure = mixes.iter().any(|m| m == "pressure");
    }
    let out = icomm_synth::synthesize(&config)?;
    let sweep_bytes = out.table.persisted_bytes()?;
    let ruleset_bytes = out.ruleset.persisted_bytes()?;
    let compression = sweep_bytes as f64 / ruleset_bytes as f64;
    if let Some(path) = save {
        out.ruleset.save(std::path::Path::new(path))?;
    }
    let ruleset = &out.ruleset;
    if json {
        // Assembled by hand so the report stays byte-identical per
        // (config): no maps, no wall clock, fixed field order.
        let quote_list = |items: &[String]| -> String {
            items
                .iter()
                .map(|s| format!("\"{s}\""))
                .collect::<Vec<_>>()
                .join(",")
        };
        let rules = ruleset
            .rules
            .iter()
            .map(|r| {
                format!(
                    "{{\"pred\":\"{}\",\"model\":\"{}\",\"support\":{},\"boards\":[{}]}}",
                    r.pred,
                    r.model.abbrev(),
                    r.support,
                    quote_list(&r.boards),
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        return Ok(format!(
            concat!(
                "{{\"boards\":[{}],\"seed\":{},\"max_size\":{},\"samples\":{},",
                "\"rule_count\":{},\"uncovered\":{},\"disagreements\":{},",
                "\"scope_contexts\":{},\"skipped_contexts\":{},",
                "\"sweep_bytes\":{},\"ruleset_bytes\":{},\"compression\":{:.2},",
                "\"rules\":[{}]}}\n"
            ),
            quote_list(&ruleset.boards),
            ruleset.seed,
            ruleset.max_size,
            ruleset.samples,
            ruleset.rules.len(),
            ruleset.uncovered,
            ruleset.disagreements,
            ruleset.scope.len(),
            out.table.skipped_contexts.len(),
            sweep_bytes,
            ruleset_bytes,
            compression,
            rules,
        ));
    }
    let mut text = format!(
        "rule synthesis over {} board(s), seed {seed}, max term size {max_size}:\n",
        ruleset.boards.len(),
    );
    let _ = writeln!(
        text,
        "  sweep        {} samples across {} contexts ({} cap-infeasible contexts skipped)",
        ruleset.samples,
        ruleset.scope.len() as u64 + count_unverified_contexts(&out),
        out.table.skipped_contexts.len(),
    );
    let _ = writeln!(
        text,
        "  enumeration  {} atoms, {} candidate predicates, {} equivalence classes ({} sound)",
        out.atoms_enumerated, out.preds_enumerated, out.classes, out.sound_candidates,
    );
    let _ = writeln!(
        text,
        "  cover        {} rules selected, {} samples uncovered",
        ruleset.rules.len(),
        ruleset.uncovered,
    );
    let _ = writeln!(
        text,
        "  validation   {} oracle disagreements, {} contexts in verified scope",
        ruleset.disagreements,
        ruleset.scope.len(),
    );
    let _ = writeln!(
        text,
        "  compression  {sweep_bytes} B sweep -> {ruleset_bytes} B rules ({compression:.2}x)",
    );
    let _ = writeln!(text, "rules (first match wins):");
    for (index, rule) in ruleset.rules.iter().enumerate() {
        let _ = writeln!(
            text,
            "  {:>2}. {}  =>  {:<4} [support {}, boards {}]",
            index + 1,
            rule.pred,
            rule.model.abbrev(),
            rule.support,
            rule.boards.join(","),
        );
    }
    if let Some(path) = save {
        let _ = writeln!(text, "saved rule set to {path}");
    }
    Ok(text)
}

/// Contexts the sweep produced but validation left out of scope.
fn count_unverified_contexts(out: &icomm_synth::SynthOutput) -> u64 {
    let mut keys: Vec<String> = out
        .table
        .samples
        .iter()
        .map(|s| icomm_synth::RuleSet::scope_key(&s.board, &s.mix, s.mem_cap_bytes))
        .collect();
    keys.sort();
    keys.dedup();
    keys.iter()
        .filter(|k| !out.ruleset.scope.contains(k))
        .count() as u64
}

/// `icomm sched`: co-schedule a named tenant mix on one board and report
/// deadline misses, slowdown vs solo, and bandwidth throttles.
fn sched(
    board: &str,
    mix: &str,
    policy: &str,
    seed: u64,
    windows: u32,
    mem_cap: Option<u64>,
    json: bool,
) -> Result<String, String> {
    let device = require_board(board)?;
    let mut config = icomm_sched::SchedConfig::new(device);
    config.mix = mix.to_string();
    config.policy = icomm_sched::PolicyKind::parse(policy)?;
    config.seed = seed;
    config.jobs_per_tenant = windows;
    config.mem_cap = mem_cap.map(ByteSize);
    let out = icomm_sched::run_sched(&config)?;
    if json {
        let mut text = icomm_persist::to_string(&out.report)
            .map_err(|err| format!("cannot serialize sched report: {err}"))?;
        text.push('\n');
        return Ok(text);
    }
    let mut text = format!("{}\n", out.report);
    let _ = writeln!(text, "--- joint assignment ---");
    for t in &out.assignment.tenants {
        let _ = writeln!(
            text,
            "  {:<12} joint {}  solo-best {}  recommended {}  footprint {}  co-run slowdown {:.3}x{}",
            t.name,
            t.joint.abbrev(),
            t.solo_best.abbrev(),
            t.solo_recommended.abbrev(),
            icomm_footprint::human_bytes(t.footprint.as_u64()),
            t.slowdown,
            if t.flipped { "  [flipped]" } else { "" },
        );
    }
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boards_lists_all() {
        let text = boards();
        for name in BOARD_NAMES {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        assert!(text.contains("I/O coherent"));
    }

    #[test]
    fn workloads_resolve() {
        assert!(workload_by_name("shwfs").unwrap().name.contains("shwfs"));
        assert!(workload_by_name("orb").unwrap().name.contains("orb"));
        assert!(workload_by_name("lane").unwrap().name.contains("lane"));
    }

    #[test]
    fn unknown_app_lists_valid_names() {
        let err = workload_by_name("quake").unwrap_err();
        assert!(err.contains("unknown app 'quake'"), "{err}");
        for name in APP_NAMES {
            assert!(err.contains(name), "missing {name} in: {err}");
        }
    }

    #[test]
    fn unknown_board_lists_valid_names() {
        let err = require_board("pi5").unwrap_err();
        assert!(err.contains("unknown board 'pi5'"), "{err}");
        for name in BOARD_NAMES {
            assert!(err.contains(name), "missing {name} in: {err}");
        }
    }

    #[test]
    fn compare_renders_all_models() {
        let text = compare("xavier", "lane").unwrap();
        for abbrev in ["SC", "UM", "ZC", "SC+"] {
            assert!(text.contains(abbrev), "missing {abbrev}");
        }
        assert!(
            !text.contains("UPM"),
            "UPM row on a non-coherent board:\n{text}"
        );
    }

    #[test]
    fn compare_includes_upm_on_coherent_boards() {
        let text = compare("mi300a-like", "lane").unwrap();
        assert!(text.contains("UPM"), "missing UPM row in:\n{text}");
    }

    #[test]
    fn execute_help() {
        assert!(execute(&Command::Help).unwrap().contains("USAGE"));
    }

    #[test]
    fn tune_json_emits_parseable_validation() {
        let out = tune(
            "xavier",
            "shwfs",
            CommModelKind::StandardCopy,
            None,
            true,
            None,
        )
        .unwrap();
        let validation: icomm_core::Validation = icomm_persist::from_str(out.trim()).unwrap();
        let text = tune(
            "xavier",
            "shwfs",
            CommModelKind::StandardCopy,
            None,
            false,
            None,
        )
        .unwrap();
        assert!(text.contains(&validation.summary()), "{text}");
    }

    #[test]
    fn tune_page_size_applies_to_the_board() {
        // Same board, same app — only the page size differs; both runs
        // must complete and stay internally consistent.
        for page in [PageSize::Small4K, PageSize::Huge2M] {
            let out = tune(
                "mi300a-like",
                "shwfs",
                CommModelKind::UnifiedMemory,
                Some(page),
                true,
                None,
            )
            .unwrap();
            let validation: icomm_core::Validation = icomm_persist::from_str(out.trim()).unwrap();
            let text = tune(
                "mi300a-like",
                "shwfs",
                CommModelKind::UnifiedMemory,
                Some(page),
                false,
                None,
            )
            .unwrap();
            assert!(text.contains(&validation.summary()), "{text}");
        }
    }

    #[test]
    fn adapt_renders_policies_and_regret() {
        let out = adapt("xavier", "shwfs", 6, true, false, None).unwrap();
        for needle in [
            "adapt",
            "static-",
            "oracle",
            "regret vs oracle",
            "--- stats ---",
            "--- serve metrics ---",
            "adaptation               1 runs",
        ] {
            assert!(out.contains(needle), "missing {needle:?} in:\n{out}");
        }
    }

    #[test]
    fn adapt_json_round_trips() {
        let out = adapt("tx2", "lane", 5, false, true, None).unwrap();
        let report: icomm_adapt::AdaptationReport = icomm_persist::from_str(out.trim()).unwrap();
        assert_eq!(report.device, require_board("tx2").unwrap().name);
        assert!(report.workload.contains("lane"), "{}", report.workload);
    }

    #[test]
    fn chaos_reports_survival_and_replays_identically() {
        let run = || chaos("tx2", "shwfs", "hostile", &[7], 6, false, false).unwrap();
        let out = run();
        for needle in [
            "chaos campaign",
            "survived: yes",
            "regret vs oracle",
            "--- matrix ---",
            "1/1 campaigns passed",
        ] {
            assert!(out.contains(needle), "missing {needle:?} in:\n{out}");
        }
        assert_eq!(out, run(), "same-seed chaos output not byte-identical");
    }

    #[test]
    fn chaos_json_round_trips() {
        let out = chaos("tx2", "shwfs", "noise", &[1, 2], 4, false, true).unwrap();
        let reports: Vec<icomm_chaos::ChaosReport> = icomm_persist::from_str(out.trim()).unwrap();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(icomm_chaos::ChaosReport::passed));
    }

    #[test]
    fn chaos_rejects_bad_plans() {
        let err = chaos("tx2", "shwfs", "mayhem", &[1], 4, false, false).unwrap_err();
        assert!(err.contains("unknown fault preset"), "{err}");
    }

    #[test]
    fn phased_workloads_resolve() {
        for app in APP_NAMES {
            let phased = phased_workload_by_name(app, 4).unwrap();
            assert_eq!(phased.phases.len(), 3);
            assert!(phased.name.contains(app), "{}", phased.name);
        }
        assert!(phased_workload_by_name("quake", 4).is_err());
    }

    #[test]
    fn fleet_json_is_deterministic_and_parses() {
        let run = || {
            fleet(
                "nano,tx2", 48, "poisson", 400.0, 7, 1, "json", "none", None, true,
            )
            .unwrap()
        };
        let a = run();
        assert_eq!(a, run(), "same-seed fleet JSON not byte-identical");
        let report: icomm_fleet::FleetReport = icomm_persist::from_str(a.trim()).unwrap();
        assert_eq!(report.devices, 48);
        assert_eq!(report.seed, 7);
        assert_eq!(report.livefire_failed, 0);
        // Human rendering carries the wall-clock side channel instead;
        // drive the live-fire stage over the binary plane here so the
        // CLI path through `--wire binary` is covered too.
        let text = fleet(
            "nano", 24, "burst", 600.0, 3, 2, "binary", "none", None, false,
        )
        .unwrap();
        assert!(text.contains("verdict"), "{text}");
        assert!(text.contains("livefire wall-clock"), "{text}");
    }

    #[test]
    fn fleet_faults_inject_and_replay() {
        let spec = "none,churn_prob=0.2,poison_prob=0.2";
        let run = || {
            fleet(
                "nano,tx2", 64, "poisson", 400.0, 11, 1, "json", spec, None, true,
            )
            .unwrap()
        };
        let a = run();
        assert_eq!(a, run(), "same-seed faulted fleet JSON not byte-identical");
        let report: icomm_fleet::FleetReport = icomm_persist::from_str(a.trim()).unwrap();
        assert!(report.churn_events > 0, "churn never fired");
        assert!(report.poisoned_sources > 0, "poisoning never fired");
        assert!(
            report.quarantined_sources > 0,
            "robust transfer caught no poisoned sources"
        );
    }

    #[test]
    fn chaos_fleet_campaign_survives_and_round_trips() {
        let plan =
            icomm_chaos::FaultPlan::parse("none,churn_prob=0.05,poison_prob=0.05,shard_panics=1")
                .unwrap();
        let out = chaos_fleet("nano", &plan, &[7], true).unwrap();
        let reports: Vec<icomm_fleet::FleetReport> = icomm_persist::from_str(out.trim()).unwrap();
        assert_eq!(reports.len(), 1);
        let report = &reports[0];
        assert!(report.passed(), "fleet chaos campaign failed: {report}");
        assert!(report.churn_events + report.poisoned_sources > 0);
        assert_eq!(report.livefire_shard_restarts, 1);
        assert_eq!(report.livefire_failed, 0);
    }

    #[test]
    fn sched_json_is_deterministic_and_parses() {
        let run = || sched("tx2", "contended", "deadline", 42, 4, None, true).unwrap();
        let a = run();
        assert_eq!(a, run(), "same-seed sched JSON not byte-identical");
        let report: icomm_sched::SchedReport = icomm_persist::from_str(a.trim()).unwrap();
        assert_eq!(report.seed, 42);
        assert_eq!(report.mix, "contended");
        assert_eq!(report.policy, "deadline");
        // Human rendering carries the joint-assignment detail instead.
        let text = sched("tx2", "duo", "fifo", 7, 2, None, false).unwrap();
        assert!(text.contains("footprint"), "{text}");
        assert!(text.contains("--- joint assignment ---"), "{text}");
        assert!(text.contains("deadlines"), "{text}");
    }

    #[test]
    fn servebench_json_reports_parity_and_speedup() {
        let out = servebench(24, 3, 2, 4, false, true).unwrap();
        assert!(out.contains("\"parity_mismatches\":0"), "{out}");
        assert!(out.contains("\"json_failed\":0"), "{out}");
        assert!(out.contains("\"binary_failed\":0"), "{out}");
        assert!(out.contains("\"speedup\":"), "{out}");
        assert!(out.contains("\"decision_cache_hits\":"), "{out}");
    }

    #[test]
    fn servebench_hostile_text_counts_defenses() {
        let out = servebench(6, 2, 2, 3, true, false).unwrap();
        assert!(out.contains("speedup"), "{out}");
        assert!(out.contains("5/5 decision payloads identical"), "{out}");
        assert!(out.contains("hostile 6/6 probes defended"), "{out}");
        assert!(!out.contains("0 frame faults"), "{out}");
    }

    #[test]
    fn synth_json_is_deterministic_and_validates_cleanly() {
        let mixes = vec!["solo:shwfs".to_string(), "duo".to_string()];
        let run = || synth("jetson-tx2", &mixes, 2, 42, None, true).unwrap();
        let a = run();
        assert_eq!(a, run(), "same-seed synth JSON not byte-identical");
        // The alias normalizes to the canonical sweep board name.
        assert!(a.contains("\"boards\":[\"tx2\"]"), "{a}");
        assert!(a.contains("\"disagreements\":0"), "{a}");
        assert!(!a.contains("\"rule_count\":0"), "{a}");
        let text = synth("tx2", &mixes, 2, 42, None, false).unwrap();
        assert!(text.contains("rules (first match wins):"), "{text}");
        assert!(text.contains("0 oracle disagreements"), "{text}");
    }

    #[test]
    fn batch_text_answers_and_reports_stats() {
        let service = TuningService::start(icomm_serve::ServiceConfig::quick().with_workers(2));
        let input = "\
{\"id\": 2, \"board\": \"tx2\", \"app\": \"orb\", \"current\": \"zc\"}\n\
{\"id\": 1, \"board\": \"tx2\", \"app\": \"shwfs\"}\n\
not json\n";
        let out = batch_text(&service, input, true).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        // Two responses sorted by id, then the malformed-line failure.
        assert!(lines[0].contains("\"id\":1"), "{}", lines[0]);
        assert!(lines[1].contains("\"id\":2"), "{}", lines[1]);
        assert!(lines[2].contains("malformed request"), "{}", lines[2]);
        assert!(out.contains("--- stats ---"));
        assert!(out.contains("hit rate"));
        service.shutdown().unwrap();
    }
}
