//! # icomm-cli — command-line front end
//!
//! A small std-only CLI over the `icomm` framework:
//!
//! ```sh
//! icomm boards                        # list built-in device profiles
//! icomm characterize xavier           # run the three micro-benchmarks
//! icomm tune tx2 orb --current zc     # profile + verdict + validation
//! icomm compare xavier lane           # ground truth under every model
//! icomm experiments                   # regenerate the paper's tables
//! ```
//!
//! The binary lives in `src/main.rs`; [`args`] parses, [`run`] executes.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod args;
pub mod run;
