//! Round-trip tests for the real workspace data types: everything the
//! framework wants to persist must survive serialize → parse →
//! deserialize unchanged.

use icomm_microbench::DeviceCharacterization;
use icomm_models::{CommModelKind, CpuPhase, GpuPhase, RunReport, Workload};
use icomm_persist::{from_str, to_string};
use icomm_soc::cache::AccessKind;
use icomm_soc::stats::SocSnapshot;
use icomm_soc::units::{ByteSize, Energy, Picos};
use icomm_soc::DeviceProfile;
use icomm_trace::Pattern;

#[test]
fn device_profiles_round_trip() {
    for device in [
        DeviceProfile::jetson_nano(),
        DeviceProfile::jetson_tx2(),
        DeviceProfile::jetson_agx_xavier(),
        DeviceProfile::orin_like(),
    ] {
        let text = to_string(&device).expect("serialize");
        let back: DeviceProfile = from_str(&text).expect("deserialize");
        assert_eq!(back, device, "{} must round-trip", device.name);
    }
}

#[test]
fn characterization_round_trips() {
    let c = DeviceCharacterization {
        device: "Jetson TX2".into(),
        gpu_cache_max_throughput: 96.0e9,
        gpu_zc_throughput: 1.28e9,
        gpu_um_throughput: 96.0e9,
        gpu_cache_threshold_pct: 0.7,
        gpu_cache_zone2_pct: None,
        cpu_cache_threshold_pct: 13.3,
        sc_zc_max_speedup: 0.13,
        zc_sc_max_speedup: 75.2,
        upm_supported: false,
        gpu_upm_throughput: 0.0,
        upm_kernel_penalty: 1.0,
        um_upm_max_speedup: 1.0,
    };
    let text = to_string(&c).expect("serialize");
    let back: DeviceCharacterization = from_str(&text).expect("deserialize");
    assert_eq!(back, c);

    // And the Some(zone2) shape.
    let with_zone = DeviceCharacterization {
        gpu_cache_zone2_pct: Some(14.1),
        ..c
    };
    let text = to_string(&with_zone).expect("serialize");
    let back: DeviceCharacterization = from_str(&text).expect("deserialize");
    assert_eq!(back, with_zone);
}

#[test]
fn workloads_with_recursive_patterns_round_trip() {
    let workload = Workload::builder("round-trip")
        .bytes_to_gpu(ByteSize::mib(1))
        .bytes_from_gpu(ByteSize::kib(16))
        .cpu(CpuPhase {
            ops: vec![icomm_soc::cpu::OpCount::new(
                icomm_soc::cpu::CpuOpClass::FpSqrt,
                123,
            )],
            shared_accesses: Pattern::Repeat {
                body: Box::new(Pattern::Sequence(vec![
                    Pattern::LinearRmw {
                        start: 0,
                        bytes: 4096,
                        txn_bytes: 64,
                    },
                    Pattern::SparseUniform {
                        start: 0,
                        region_bytes: 1 << 20,
                        count: 99,
                        txn_bytes: 8,
                        seed: 42,
                        kind: AccessKind::Read,
                    },
                ])),
                times: 3,
            },
            private_accesses: Some(Pattern::SingleAddress {
                addr: 7,
                count: 11,
                txn_bytes: 4,
                kind: AccessKind::Write,
            }),
        })
        .gpu(GpuPhase {
            compute_work: 1 << 20,
            shared_accesses: Pattern::Linear {
                start: 0,
                bytes: 1 << 20,
                txn_bytes: 64,
                kind: AccessKind::Read,
            },
            private_accesses: None,
        })
        .overlappable(true)
        .iterations(5)
        .build();
    let text = to_string(&workload).expect("serialize");
    let back: Workload = from_str(&text).expect("deserialize");
    assert_eq!(back, workload);
}

#[test]
fn run_reports_round_trip() {
    let report = RunReport {
        model: CommModelKind::ZeroCopy,
        workload: "sample".into(),
        iterations: 4,
        total_time: Picos::from_micros(123),
        copy_time: Picos::ZERO,
        kernel_time: Picos::from_nanos(456_789),
        cpu_time: Picos(987_654_321),
        sync_time: Picos::from_micros(2),
        overlap_saved: Picos::from_micros(40),
        energy: Energy::from_nanojoules(55_555),
        counters: SocSnapshot::default(),
    };
    let text = to_string(&report).expect("serialize");
    let back: RunReport = from_str(&text).expect("deserialize");
    assert_eq!(back, report);
}

#[test]
fn comm_model_kinds_round_trip_as_strings() {
    for kind in CommModelKind::EXTENDED {
        let text = to_string(&kind).expect("serialize");
        assert!(text.starts_with('"'), "unit variants serialize as strings");
        let back: CommModelKind = from_str(&text).expect("deserialize");
        assert_eq!(back, kind);
    }
}

#[test]
fn picos_u64_precision_is_preserved() {
    // The whole point of Number::U64: picosecond timestamps near u64::MAX
    // must not pass through f64.
    let t = Picos(u64::MAX - 1);
    let text = to_string(&t).expect("serialize");
    let back: Picos = from_str(&text).expect("deserialize");
    assert_eq!(back, t);
}
