//! Byte-level corruption sweeps over the load paths.
//!
//! Two layers are exercised:
//!
//! - the raw JSON parser must reject every truncation of an object
//!   document and all trailing garbage, without panicking on any input;
//! - the snapshot framing must reject *every* truncation and *every*
//!   single-byte flip — stronger than raw JSON can promise (a flipped
//!   digit still parses), and the reason durable files use it.

use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Sample {
    name: String,
    values: Vec<f64>,
    threshold: f64,
    enabled: bool,
}

fn sample() -> Sample {
    Sample {
        name: "tx2".into(),
        values: vec![1.5, -2.25, 1e9],
        threshold: 12.5,
        enabled: true,
    }
}

#[test]
fn every_truncation_of_a_json_document_errors() {
    let json = icomm_persist::to_string(&sample()).unwrap();
    // Any proper prefix of an object document is unterminated JSON.
    for cut in 0..json.len() {
        if !json.is_char_boundary(cut) {
            continue;
        }
        let prefix = &json[..cut];
        assert!(
            icomm_persist::from_str::<Sample>(prefix).is_err(),
            "prefix of {cut} bytes parsed: {prefix:?}"
        );
    }
}

#[test]
fn trailing_garbage_after_a_document_errors() {
    let json = icomm_persist::to_string(&sample()).unwrap();
    for tail in ["x", " {}", "[1]", "null", "\"extra\"", "}"] {
        let doc = format!("{json}{tail}");
        assert!(
            icomm_persist::from_str::<Sample>(&doc).is_err(),
            "document with trailing {tail:?} parsed"
        );
    }
}

#[test]
fn single_byte_flips_never_panic() {
    let json = icomm_persist::to_string(&sample()).unwrap();
    let bytes = json.as_bytes();
    for i in 0..bytes.len() {
        for bit in 0..8u8 {
            let mut bad = bytes.to_vec();
            bad[i] ^= 1 << bit;
            // The flip may produce invalid UTF-8; only valid strings reach
            // the parser, which must return (Ok or Err) without panicking.
            if let Ok(text) = std::str::from_utf8(&bad) {
                let _ = icomm_persist::from_str::<Sample>(text);
            }
        }
    }
}

#[test]
fn snapshot_framing_rejects_every_truncation_and_flip() {
    let payload = icomm_persist::to_string(&sample()).unwrap();
    let framed = icomm_persist::snapshot::encode(&payload);
    for cut in 0..framed.len() {
        assert!(
            icomm_persist::snapshot::decode(&framed[..cut]).is_err(),
            "snapshot prefix of {cut} bytes decoded"
        );
    }
    for i in 0..framed.len() {
        for bit in 0..8u8 {
            let mut bad = framed.clone();
            bad[i] ^= 1 << bit;
            assert!(
                icomm_persist::snapshot::decode(&bad).is_err(),
                "snapshot flip at byte {i} bit {bit} decoded"
            );
        }
    }
}

#[test]
fn snapshot_errors_are_descriptive() {
    let framed = icomm_persist::snapshot::encode("{}");
    let truncated = icomm_persist::snapshot::decode(&framed[..framed.len() - 1]);
    assert!(truncated.unwrap_err().to_string().contains("truncated"));
    let mut flipped = framed.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x01;
    let corrupt = icomm_persist::snapshot::decode(&flipped);
    assert!(corrupt.unwrap_err().to_string().contains("checksum"));
    let mut garbage = framed;
    garbage.extend_from_slice(b"tail");
    let trailing = icomm_persist::snapshot::decode(&garbage);
    assert!(trailing.unwrap_err().to_string().contains("trailing"));
}
