//! A `serde::Deserializer` over a parsed [`Value`] tree.

use std::collections::btree_map;
use std::fmt;

use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};

use crate::value::{parse, Number, Value};

/// Error raised while deserializing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeserializeJsonError(pub String);

impl fmt::Display for DeserializeJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json deserialize error: {}", self.0)
    }
}

impl std::error::Error for DeserializeJsonError {}

impl de::Error for DeserializeJsonError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        DeserializeJsonError(msg.to_string())
    }
}

/// Deserializes a value from JSON text.
///
/// # Errors
///
/// Returns a syntax error from the parser or a shape mismatch from serde.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, DeserializeJsonError> {
    let value = parse(text).map_err(|e| DeserializeJsonError(e.to_string()))?;
    from_value(value)
}

/// Deserializes a value from an already-parsed [`Value`].
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, DeserializeJsonError> {
    T::deserialize(Deserializer { value })
}

struct Deserializer {
    value: Value,
}

impl Deserializer {
    fn type_name(&self) -> &'static str {
        match self.value {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    fn mismatch(&self, expected: &str) -> DeserializeJsonError {
        DeserializeJsonError(format!("expected {expected}, found {}", self.type_name()))
    }
}

macro_rules! deserialize_integer {
    ($method:ident, $visit:ident, $convert:ident, $ty:literal) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
            match self.value {
                Value::Number(n) => {
                    let wide = n.$convert().ok_or_else(|| {
                        DeserializeJsonError(format!("number does not fit in {}", $ty))
                    })?;
                    let narrow = wide.try_into().map_err(|_| {
                        DeserializeJsonError(format!("number does not fit in {}", $ty))
                    })?;
                    visitor.$visit(narrow)
                }
                _ => Err(self.mismatch($ty)),
            }
        }
    };
}

impl<'de> de::Deserializer<'de> for Deserializer {
    type Error = DeserializeJsonError;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        match self.value {
            Value::Null => visitor.visit_unit(),
            Value::Bool(b) => visitor.visit_bool(b),
            Value::Number(Number::U64(v)) => visitor.visit_u64(v),
            Value::Number(Number::I64(v)) => visitor.visit_i64(v),
            Value::Number(Number::F64(v)) => visitor.visit_f64(v),
            Value::String(s) => visitor.visit_string(s),
            Value::Array(items) => visitor.visit_seq(SeqAccess {
                iter: items.into_iter(),
            }),
            Value::Object(map) => visitor.visit_map(MapAccess {
                iter: map.into_iter(),
                pending: None,
            }),
        }
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        match self.value {
            Value::Bool(b) => visitor.visit_bool(b),
            _ => Err(self.mismatch("bool")),
        }
    }

    deserialize_integer!(deserialize_i8, visit_i8, as_i64, "i8");
    deserialize_integer!(deserialize_i16, visit_i16, as_i64, "i16");
    deserialize_integer!(deserialize_i32, visit_i32, as_i64, "i32");
    deserialize_integer!(deserialize_u8, visit_u8, as_u64, "u8");
    deserialize_integer!(deserialize_u16, visit_u16, as_u64, "u16");
    deserialize_integer!(deserialize_u32, visit_u32, as_u64, "u32");

    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        match self.value {
            Value::Number(n) => visitor.visit_i64(
                n.as_i64()
                    .ok_or_else(|| DeserializeJsonError("number does not fit in i64".into()))?,
            ),
            _ => Err(self.mismatch("i64")),
        }
    }

    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        match self.value {
            Value::Number(n) => visitor.visit_u64(
                n.as_u64()
                    .ok_or_else(|| DeserializeJsonError("number does not fit in u64".into()))?,
            ),
            _ => Err(self.mismatch("u64")),
        }
    }

    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_f64(visitor)
    }

    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        match self.value {
            Value::Number(n) => visitor.visit_f64(n.as_f64()),
            _ => Err(self.mismatch("f64")),
        }
    }

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        match self.value {
            Value::String(s) if s.chars().count() == 1 => {
                visitor.visit_char(s.chars().next().expect("one char"))
            }
            _ => Err(self.mismatch("single-character string")),
        }
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_string(visitor)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        match self.value {
            Value::String(s) => visitor.visit_string(s),
            _ => Err(self.mismatch("string")),
        }
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_seq(visitor)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_seq(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        match self.value {
            Value::Null => visitor.visit_none(),
            other => visitor.visit_some(Deserializer { value: other }),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        match self.value {
            Value::Null => visitor.visit_unit(),
            _ => Err(self.mismatch("null")),
        }
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_unit(visitor)
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        match self.value {
            Value::Array(items) => visitor.visit_seq(SeqAccess {
                iter: items.into_iter(),
            }),
            _ => Err(self.mismatch("array")),
        }
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_seq(visitor)
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_seq(visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        match self.value {
            Value::Object(map) => visitor.visit_map(MapAccess {
                iter: map.into_iter(),
                pending: None,
            }),
            _ => Err(self.mismatch("object")),
        }
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_map(visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        match self.value {
            // Unit variant: a bare string.
            Value::String(s) => visitor.visit_enum(s.into_deserializer()),
            // Newtype/tuple/struct variant: {"Variant": payload}.
            Value::Object(map) => {
                let mut iter = map.into_iter();
                let Some((variant, payload)) = iter.next() else {
                    return Err(DeserializeJsonError("empty object for enum".into()));
                };
                if iter.next().is_some() {
                    return Err(DeserializeJsonError(
                        "enum object must have exactly one key".into(),
                    ));
                }
                visitor.visit_enum(EnumAccess { variant, payload })
            }
            _ => Err(self.mismatch("string or single-key object (enum)")),
        }
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_string(visitor)
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        visitor.visit_unit()
    }
}

struct SeqAccess {
    iter: std::vec::IntoIter<Value>,
}

impl<'de> de::SeqAccess<'de> for SeqAccess {
    type Error = DeserializeJsonError;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error> {
        match self.iter.next() {
            Some(value) => seed.deserialize(Deserializer { value }).map(Some),
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.iter.len())
    }
}

struct MapAccess {
    iter: btree_map::IntoIter<String, Value>,
    pending: Option<Value>,
}

impl<'de> de::MapAccess<'de> for MapAccess {
    type Error = DeserializeJsonError;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error> {
        match self.iter.next() {
            Some((key, value)) => {
                self.pending = Some(value);
                seed.deserialize(Deserializer {
                    value: Value::String(key),
                })
                .map(Some)
            }
            None => Ok(None),
        }
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error> {
        let value = self
            .pending
            .take()
            .ok_or_else(|| DeserializeJsonError("value requested before key".into()))?;
        seed.deserialize(Deserializer { value })
    }
}

struct EnumAccess {
    variant: String,
    payload: Value,
}

impl<'de> de::EnumAccess<'de> for EnumAccess {
    type Error = DeserializeJsonError;
    type Variant = VariantAccess;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error> {
        let variant = seed.deserialize(Deserializer {
            value: Value::String(self.variant),
        })?;
        Ok((
            variant,
            VariantAccess {
                payload: self.payload,
            },
        ))
    }
}

struct VariantAccess {
    payload: Value,
}

impl<'de> de::VariantAccess<'de> for VariantAccess {
    type Error = DeserializeJsonError;

    fn unit_variant(self) -> Result<(), Self::Error> {
        match self.payload {
            Value::Null => Ok(()),
            _ => Err(DeserializeJsonError(
                "unexpected payload for unit variant".into(),
            )),
        }
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error> {
        seed.deserialize(Deserializer {
            value: self.payload,
        })
    }

    fn tuple_variant<V: Visitor<'de>>(
        self,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        de::Deserializer::deserialize_seq(
            Deserializer {
                value: self.payload,
            },
            visitor,
        )
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        de::Deserializer::deserialize_map(
            Deserializer {
                value: self.payload,
            },
            visitor,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    use crate::ser::to_string;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Demo {
        name: String,
        count: u64,
        ratio: f64,
        flag: bool,
        maybe: Option<i32>,
        list: Vec<u8>,
        map: BTreeMap<String, i64>,
    }

    #[test]
    fn struct_round_trip() {
        let mut map = BTreeMap::new();
        map.insert("a".to_string(), -3i64);
        let d = Demo {
            name: "hello \"quoted\"\nworld".into(),
            count: u64::MAX,
            ratio: 0.1 + 0.2,
            flag: false,
            maybe: Some(-42),
            list: vec![0, 255],
            map,
        };
        let text = to_string(&d).unwrap();
        let back: Demo = from_str(&text).unwrap();
        assert_eq!(back, d);
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum E {
        Unit,
        Newtype(u32),
        Tuple(u32, i64),
        Struct { a: bool, b: Option<f32> },
    }

    #[test]
    fn enum_round_trip() {
        for e in [
            E::Unit,
            E::Newtype(7),
            E::Tuple(1, -2),
            E::Struct {
                a: true,
                b: Some(1.5),
            },
        ] {
            let text = to_string(&e).unwrap();
            let back: E = from_str(&text).unwrap();
            assert_eq!(back, e);
        }
    }

    #[test]
    fn recursive_enum_round_trip() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        enum Tree {
            Leaf(u32),
            Node(Box<Tree>, Box<Tree>),
        }
        let tree = Tree::Node(
            Box::new(Tree::Leaf(1)),
            Box::new(Tree::Node(Box::new(Tree::Leaf(2)), Box::new(Tree::Leaf(3)))),
        );
        let text = to_string(&tree).unwrap();
        let back: Tree = from_str(&text).unwrap();
        assert_eq!(back, tree);
    }

    #[test]
    fn shape_mismatches_error() {
        assert!(from_str::<u64>(r#""nope""#).is_err());
        assert!(from_str::<bool>("1").is_err());
        assert!(from_str::<Vec<u8>>(r#"{"a":1}"#).is_err());
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<u64>("-1").is_err());
    }

    #[test]
    fn unknown_fields_rejected_by_default_derive() {
        #[derive(Debug, Deserialize)]
        #[allow(dead_code)]
        struct Strict {
            a: u32,
        }
        // Serde's default tolerates unknown fields; verify ours does too
        // (the derive calls deserialize_ignored_any).
        let v: Strict = from_str(r#"{"a":1,"extra":[1,2,3]}"#).unwrap();
        assert_eq!(v.a, 1);
    }

    #[test]
    fn option_handling() {
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("5").unwrap(), Some(5));
    }

    proptest::proptest! {
        #[test]
        fn prop_scalar_round_trips(v in proptest::num::f64::NORMAL, n in 0u64..u64::MAX, s in "\\PC*") {
            let t = to_string(&v).unwrap();
            let back: f64 = from_str(&t).unwrap();
            proptest::prop_assert_eq!(back, v);

            let t = to_string(&n).unwrap();
            let back: u64 = from_str(&t).unwrap();
            proptest::prop_assert_eq!(back, n);

            let t = to_string(&s).unwrap();
            let back: String = from_str(&t).unwrap();
            proptest::prop_assert_eq!(back, s);
        }
    }
}
