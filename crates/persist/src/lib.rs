//! # icomm-persist — minimal self-contained JSON for icomm data
//!
//! Device characterizations are expensive to measure (they run three
//! micro-benchmarks) and worth caching to disk; run reports are worth
//! archiving next to experiment logs. All `icomm` data types derive
//! serde's traits, but `serde_json` is not part of this workspace's
//! pinned dependency set — so this crate provides the small JSON backend
//! the framework needs, written from scratch:
//!
//! - [`ser::to_string`] — a `serde::Serializer` emitting compact JSON,
//! - [`value::parse`] — a recursive-descent JSON parser into a
//!   [`value::Value`] tree,
//! - [`de::from_str`] / [`de::from_value`] — a `serde::Deserializer` over
//!   that tree,
//! - [`snapshot`] — checksummed, versioned, atomically-written snapshot
//!   framing for durable files, so truncation, bit rot and torn writes are
//!   detected instead of parsed.
//!
//! It supports the full default serde data model (externally tagged
//! enums, options, maps with string keys, lossless `u64`/`i64`/`f64`),
//! which round-trips every type in the workspace — see the integration
//! tests for `DeviceProfile`, `DeviceCharacterization`, `Workload` and
//! `RunReport` round-trips.
//!
//! # Example
//!
//! ```
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Debug, PartialEq, Serialize, Deserialize)]
//! struct Point {
//!     x: i32,
//!     y: i32,
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = Point { x: 1, y: -2 };
//! let text = icomm_persist::to_string(&p)?;
//! assert_eq!(text, r#"{"x":1,"y":-2}"#);
//! let back: Point = icomm_persist::from_str(&text)?;
//! assert_eq!(back, p);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod de;
pub mod ser;
pub mod snapshot;
pub mod value;

pub use de::{from_str, from_value, DeserializeJsonError};
pub use ser::{to_string, SerializeJsonError};
pub use snapshot::{crc32, read_verified, write_atomic, SnapshotError};
pub use value::{parse, Number, ParseJsonError, Value};
