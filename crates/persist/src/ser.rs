//! A `serde::Serializer` that writes JSON text.
//!
//! Covers everything the `icomm` data types use (and the rest of the
//! serde data model for completeness): all primitives, options, units,
//! newtypes, sequences, tuples, maps, structs, and externally tagged
//! enums — the representations `#[derive(Serialize)]` emits by default.

use std::fmt;

use serde::ser::{self, Serialize};

/// Error raised while serializing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerializeJsonError(pub String);

impl fmt::Display for SerializeJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialize error: {}", self.0)
    }
}

impl std::error::Error for SerializeJsonError {}

impl ser::Error for SerializeJsonError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        SerializeJsonError(msg.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Returns an error for non-finite floats and for map keys that are not
/// strings (JSON cannot represent either).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, SerializeJsonError> {
    let mut out = String::new();
    value.serialize(&mut Serializer { out: &mut out })?;
    Ok(out)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Serializer<'a> {
    out: &'a mut String,
}

/// Compound-serialization state shared by seq/tuple/map/struct variants.
struct Compound<'a> {
    out: &'a mut String,
    first: bool,
    closer: &'static str,
}

impl Compound<'_> {
    fn comma(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.out.push(',');
        }
    }
}

impl<'a> ser::Serializer for &'a mut Serializer<'_> {
    type Ok = ();
    type Error = SerializeJsonError;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Self::Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<(), Self::Error> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i16(self, v: i16) -> Result<(), Self::Error> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i32(self, v: i32) -> Result<(), Self::Error> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i64(self, v: i64) -> Result<(), Self::Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), Self::Error> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u16(self, v: u16) -> Result<(), Self::Error> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u32(self, v: u32) -> Result<(), Self::Error> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u64(self, v: u64) -> Result<(), Self::Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<(), Self::Error> {
        self.serialize_f64(v as f64)
    }

    fn serialize_f64(self, v: f64) -> Result<(), Self::Error> {
        if !v.is_finite() {
            return Err(SerializeJsonError(
                "JSON cannot represent non-finite floats".into(),
            ));
        }
        // `{:?}` keeps enough digits for an exact f64 round-trip.
        self.out.push_str(&format!("{v:?}"));
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<(), Self::Error> {
        write_escaped(self.out, &v.to_string());
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), Self::Error> {
        write_escaped(self.out, v);
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), Self::Error> {
        use serde::ser::SerializeSeq;
        let mut seq = self.serialize_seq(Some(v.len()))?;
        for byte in v {
            seq.serialize_element(byte)?;
        }
        seq.end()
    }

    fn serialize_none(self) -> Result<(), Self::Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), Self::Error> {
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), Self::Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), Self::Error> {
        self.serialize_unit()
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
    ) -> Result<(), Self::Error> {
        self.serialize_str(variant)
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), Self::Error> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), Self::Error> {
        self.out.push('{');
        write_escaped(self.out, variant);
        self.out.push(':');
        value.serialize(&mut Serializer { out: self.out })?;
        self.out.push('}');
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error> {
        self.out.push('[');
        Ok(Compound {
            out: self.out,
            first: true,
            closer: "]",
        })
    }

    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error> {
        self.out.push('{');
        write_escaped(self.out, variant);
        self.out.push_str(":[");
        Ok(Compound {
            out: self.out,
            first: true,
            closer: "]}",
        })
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<Self::SerializeMap, Self::Error> {
        self.out.push('{');
        Ok(Compound {
            out: self.out,
            first: true,
            closer: "}",
        })
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error> {
        self.serialize_map(None)
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error> {
        self.out.push('{');
        write_escaped(self.out, variant);
        self.out.push_str(":{");
        Ok(Compound {
            out: self.out,
            first: true,
            closer: "}}",
        })
    }
}

impl ser::SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = SerializeJsonError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error> {
        self.comma();
        value.serialize(&mut Serializer { out: self.out })
    }

    fn end(self) -> Result<(), Self::Error> {
        self.out.push_str(self.closer);
        Ok(())
    }
}

impl ser::SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = SerializeJsonError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), Self::Error> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleStruct for Compound<'_> {
    type Ok = ();
    type Error = SerializeJsonError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), Self::Error> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = SerializeJsonError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), Self::Error> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = SerializeJsonError;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error> {
        self.comma();
        // JSON keys must be strings: serialize into a scratch buffer and
        // reject anything that is not a string literal.
        let mut scratch = String::new();
        key.serialize(&mut Serializer { out: &mut scratch })?;
        if !scratch.starts_with('"') {
            return Err(SerializeJsonError(
                "JSON object keys must be strings".into(),
            ));
        }
        self.out.push_str(&scratch);
        self.out.push(':');
        Ok(())
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error> {
        value.serialize(&mut Serializer { out: self.out })
    }

    fn end(self) -> Result<(), Self::Error> {
        self.out.push_str(self.closer);
        Ok(())
    }
}

impl ser::SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = SerializeJsonError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error> {
        self.comma();
        write_escaped(self.out, key);
        self.out.push(':');
        value.serialize(&mut Serializer { out: self.out })
    }

    fn end(self) -> Result<(), Self::Error> {
        self.out.push_str(self.closer);
        Ok(())
    }
}

impl ser::SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = SerializeJsonError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error> {
        ser::SerializeStruct::serialize_field(self, key, value)
    }

    fn end(self) -> Result<(), Self::Error> {
        self.out.push_str(self.closer);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;
    use std::collections::BTreeMap;

    #[derive(Serialize)]
    struct Demo {
        name: String,
        count: u64,
        ratio: f64,
        flag: bool,
        maybe: Option<i32>,
        list: Vec<u8>,
    }

    #[test]
    fn struct_serializes_to_object() {
        let d = Demo {
            name: "x\"y".into(),
            count: 3,
            ratio: 1.5,
            flag: true,
            maybe: None,
            list: vec![1, 2],
        };
        let s = to_string(&d).unwrap();
        assert_eq!(
            s,
            r#"{"name":"x\"y","count":3,"ratio":1.5,"flag":true,"maybe":null,"list":[1,2]}"#
        );
    }

    #[derive(Serialize)]
    enum E {
        Unit,
        Newtype(u32),
        Tuple(u32, u32),
        Struct { a: bool },
    }

    #[test]
    fn enum_representations() {
        assert_eq!(to_string(&E::Unit).unwrap(), r#""Unit""#);
        assert_eq!(to_string(&E::Newtype(7)).unwrap(), r#"{"Newtype":7}"#);
        assert_eq!(to_string(&E::Tuple(1, 2)).unwrap(), r#"{"Tuple":[1,2]}"#);
        assert_eq!(
            to_string(&E::Struct { a: false }).unwrap(),
            r#"{"Struct":{"a":false}}"#
        );
    }

    #[test]
    fn maps_require_string_keys() {
        let mut good: BTreeMap<String, u32> = BTreeMap::new();
        good.insert("k".into(), 1);
        assert_eq!(to_string(&good).unwrap(), r#"{"k":1}"#);
        let mut bad: BTreeMap<u32, u32> = BTreeMap::new();
        bad.insert(1, 1);
        assert!(to_string(&bad).is_err());
    }

    #[test]
    fn non_finite_floats_rejected() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn floats_round_trip_exactly() {
        let v = 0.1f64 + 0.2;
        let s = to_string(&v).unwrap();
        assert_eq!(s.parse::<f64>().unwrap(), v);
    }

    #[test]
    fn control_characters_escaped() {
        let s = to_string(&"\u{1}").unwrap();
        assert_eq!(s, r#""\u0001""#);
    }
}
