//! Checksummed, versioned, atomically-written snapshot files.
//!
//! Plain JSON on disk fails silently: a truncated write after a power cut
//! parses as far as it goes, a flipped digit still parses, and the loader
//! cannot tell a short file from a short registry. Snapshots wrap the JSON
//! payload in a one-line header that makes every such corruption loud:
//!
//! ```text
//! icommsnap v1 crc32=1a2b3c4d len=1234
//! {"entries":[...]}
//! ```
//!
//! - `len` is the exact payload byte count — truncation and trailing
//!   garbage are both detected before parsing;
//! - `crc32` (IEEE polynomial) covers the payload — any bit flip in the
//!   body fails the checksum;
//! - [`write_atomic`] stages the bytes in a temp file in the target
//!   directory and `rename`s it into place, so readers never observe a
//!   half-written snapshot.
//!
//! The format is self-describing and versioned; [`read_verified`] rejects
//! unknown versions instead of guessing.

use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// Magic token opening every snapshot header.
pub const SNAPSHOT_MAGIC: &str = "icommsnap";

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a snapshot could not be read back.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The header line is missing or malformed.
    Format(String),
    /// The header names a version this build does not understand.
    Version(u32),
    /// The payload is shorter than the header's `len` (interrupted write).
    Truncated {
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// Extra bytes follow the payload.
    TrailingGarbage(usize),
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// CRC32 recorded in the header.
        expected: u32,
        /// CRC32 of the bytes on disk.
        found: u32,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Format(msg) => write!(f, "malformed snapshot header: {msg}"),
            SnapshotError::Version(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads v{SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::Truncated { expected, found } => write!(
                f,
                "truncated snapshot: header promises {expected} payload bytes, found {found}"
            ),
            SnapshotError::TrailingGarbage(n) => {
                write!(f, "snapshot has {n} trailing bytes after the payload")
            }
            SnapshotError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot checksum mismatch: header crc32={expected:08x}, payload crc32={found:08x}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// CRC32 (IEEE 802.3 polynomial, reflected) of `bytes`.
///
/// Bitwise implementation — snapshot payloads are small (kilobytes), so a
/// table buys nothing over the obvious loop.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Frames `payload` with the v1 snapshot header.
pub fn encode(payload: &str) -> Vec<u8> {
    let body = payload.as_bytes();
    let mut out = format!(
        "{SNAPSHOT_MAGIC} v{SNAPSHOT_VERSION} crc32={:08x} len={}\n",
        crc32(body),
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

/// Verifies the framing of snapshot `bytes` and returns the payload.
///
/// # Errors
///
/// Returns the first framing violation found: bad header, unknown
/// version, truncation, trailing garbage, or checksum mismatch.
pub fn decode(bytes: &[u8]) -> Result<&str, SnapshotError> {
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| SnapshotError::Format("no header line".into()))?;
    let header = std::str::from_utf8(&bytes[..newline])
        .map_err(|_| SnapshotError::Format("header is not UTF-8".into()))?;
    let mut fields = header.split(' ');
    match fields.next() {
        Some(SNAPSHOT_MAGIC) => {}
        _ => return Err(SnapshotError::Format(format!("bad magic in '{header}'"))),
    }
    let version = fields
        .next()
        .and_then(|v| v.strip_prefix('v'))
        .and_then(|v| v.parse::<u32>().ok())
        .ok_or_else(|| SnapshotError::Format(format!("bad version in '{header}'")))?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::Version(version));
    }
    let expected_crc = fields
        .next()
        .and_then(|v| v.strip_prefix("crc32="))
        // Exactly eight lowercase hex digits, as encode() writes them — a
        // lenient parse would let a case-flipped digit alias the same value.
        .filter(|v| v.len() == 8 && v.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')))
        .and_then(|v| u32::from_str_radix(v, 16).ok())
        .ok_or_else(|| SnapshotError::Format(format!("bad crc32 in '{header}'")))?;
    let expected_len = fields
        .next()
        .and_then(|v| v.strip_prefix("len="))
        .and_then(|v| v.parse::<usize>().ok())
        .ok_or_else(|| SnapshotError::Format(format!("bad len in '{header}'")))?;
    if fields.next().is_some() {
        return Err(SnapshotError::Format(format!(
            "unexpected extra header fields in '{header}'"
        )));
    }
    let body = &bytes[newline + 1..];
    if body.len() < expected_len {
        return Err(SnapshotError::Truncated {
            expected: expected_len,
            found: body.len(),
        });
    }
    if body.len() > expected_len {
        return Err(SnapshotError::TrailingGarbage(body.len() - expected_len));
    }
    let found_crc = crc32(body);
    if found_crc != expected_crc {
        return Err(SnapshotError::ChecksumMismatch {
            expected: expected_crc,
            found: found_crc,
        });
    }
    std::str::from_utf8(body).map_err(|_| SnapshotError::Format("payload is not UTF-8".into()))
}

/// Writes `payload` to `path` as a framed snapshot, atomically: the bytes
/// are staged in a temp file in the same directory and renamed into place,
/// so a crash mid-write leaves either the old snapshot or the new one,
/// never a torn mix.
///
/// # Errors
///
/// Propagates I/O failures (including the rename).
pub fn write_atomic(path: &Path, payload: &str) -> Result<(), SnapshotError> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| SnapshotError::Format(format!("'{}' has no file name", path.display())))?;
    let mut tmp = std::ffi::OsString::from(".");
    tmp.push(file_name);
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp_path = match dir {
        Some(d) => d.join(&tmp),
        None => std::path::PathBuf::from(&tmp),
    };
    let bytes = encode(payload);
    let result = (|| {
        let mut file = std::fs::File::create(&tmp_path)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
        std::fs::rename(&tmp_path, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp_path);
    }
    result.map_err(SnapshotError::Io)
}

/// Reads a snapshot from `path` and returns the verified payload.
///
/// # Errors
///
/// Returns [`SnapshotError`] on I/O failure or any framing violation.
pub fn read_verified(path: &Path) -> Result<String, SnapshotError> {
    let bytes = std::fs::read(path)?;
    decode(&bytes).map(str::to_owned)
}

/// Whether `bytes` begin with the snapshot magic — used by loaders that
/// also accept legacy bare-JSON files.
pub fn is_snapshot(bytes: &[u8]) -> bool {
    bytes.starts_with(SNAPSHOT_MAGIC.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_round_trips() {
        let payload = r#"{"entries":[1,2,3]}"#;
        let framed = encode(payload);
        assert_eq!(decode(&framed).unwrap(), payload);
    }

    #[test]
    fn every_truncation_is_detected() {
        let framed = encode(r#"{"a":1,"b":[true,false]}"#);
        for cut in 0..framed.len() {
            assert!(
                decode(&framed[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let framed = encode(r#"{"a":1}"#);
        for i in 0..framed.len() {
            for bit in 0..8 {
                let mut bad = framed.clone();
                bad[i] ^= 1 << bit;
                assert!(decode(&bad).is_err(), "flip of byte {i} bit {bit} decoded");
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut framed = encode("{}");
        framed.extend_from_slice(b"junk");
        assert!(matches!(
            decode(&framed),
            Err(SnapshotError::TrailingGarbage(4))
        ));
    }

    #[test]
    fn unknown_version_is_rejected() {
        let framed = encode("{}");
        let text = String::from_utf8(framed).unwrap().replace(" v1 ", " v9 ");
        assert!(matches!(
            decode(text.as_bytes()),
            Err(SnapshotError::Version(9))
        ));
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join(format!("icomm-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reg.snap");
        write_atomic(&path, r#"{"x":1}"#).unwrap();
        assert_eq!(read_verified(&path).unwrap(), r#"{"x":1}"#);
        // Overwrite is atomic too: the old file is replaced wholesale.
        write_atomic(&path, r#"{"x":2}"#).unwrap();
        assert_eq!(read_verified(&path).unwrap(), r#"{"x":2}"#);
        assert!(is_snapshot(&std::fs::read(&path).unwrap()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
