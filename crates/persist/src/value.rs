//! The JSON value tree and its text parser.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number, kept in its widest lossless representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
}

impl Number {
    /// The value as `f64` (lossy for very large integers).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// The value as `u64` when exactly representable.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// The value as `i64` when exactly representable.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F64(_) => None,
        }
    }
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; keys are kept sorted for deterministic output.
    Object(BTreeMap<String, Value>),
}

/// Error raised while parsing JSON text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseJsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseJsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseJsonError> {
        Err(ParseJsonError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseJsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            self.error(format!(
                "expected '{}', found {:?}",
                byte as char,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn expect_literal(&mut self, literal: &str) -> Result<(), ParseJsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            self.error(format!("expected literal '{literal}'"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseJsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => self.error(format!("unexpected {:?}", other.map(|b| b as char))),
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseJsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return self.error("unterminated string"),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        // Surrogate pairs for characters beyond the BMP.
                        let ch = if (0xD800..=0xDBFF).contains(&code) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.parse_hex4()?;
                            if !(0xDC00..=0xDFFF).contains(&low) {
                                return self.error("invalid low surrogate");
                            }
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        match ch {
                            Some(c) => out.push(c),
                            None => return self.error("invalid unicode escape"),
                        }
                    }
                    other => {
                        return self.error(format!("invalid escape {:?}", other.map(|b| b as char)))
                    }
                },
                Some(byte) if byte < 0x20 => return self.error("control character in string"),
                Some(byte) => {
                    // Re-assemble UTF-8 multibyte sequences.
                    let len = utf8_len(byte);
                    if len == 1 {
                        out.push(byte as char);
                    } else {
                        let start = self.pos - 1;
                        let end = start + len;
                        if end > self.bytes.len() {
                            return self.error("truncated utf-8 sequence");
                        }
                        match std::str::from_utf8(&self.bytes[start..end]) {
                            Ok(s) => {
                                out.push_str(s);
                                self.pos = end;
                            }
                            Err(_) => return self.error("invalid utf-8 in string"),
                        }
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseJsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(b) = self.bump() else {
                return self.error("truncated unicode escape");
            };
            let digit = (b as char).to_digit(16).ok_or(ParseJsonError {
                offset: self.pos,
                message: "invalid hex digit".into(),
            })?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, ParseJsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(v)));
            }
        }
        match text.parse::<f64>() {
            Ok(v) => Ok(Value::Number(Number::F64(v))),
            Err(_) => self.error(format!("invalid number '{text}'")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, ParseJsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                other => {
                    return self.error(format!(
                        "expected ',' or ']', found {:?}",
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, ParseJsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                other => {
                    return self.error(format!(
                        "expected ',' or '}}', found {:?}",
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns the byte offset and message of the first syntax error,
/// including trailing garbage after the document.
pub fn parse(text: &str) -> Result<Value, ParseJsonError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.error("trailing characters after document");
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Number(Number::U64(42)));
        assert_eq!(parse("-7").unwrap(), Value::Number(Number::I64(-7)));
        assert_eq!(parse("2.5").unwrap(), Value::Number(Number::F64(2.5)));
        assert_eq!(parse("1e3").unwrap(), Value::Number(Number::F64(1000.0)));
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            parse(r#""a\nb\t\"c\" \\""#).unwrap(),
            Value::String("a\nb\t\"c\" \\".into())
        );
        assert_eq!(parse(r#""é""#).unwrap(), Value::String("é".into()));
        // Surrogate pair (emoji).
        assert_eq!(parse(r#""😀""#).unwrap(), Value::String("😀".into()));
        // Raw multibyte UTF-8 passes through.
        assert_eq!(parse("\"héllo\"").unwrap(), Value::String("héllo".into()));
    }

    #[test]
    fn arrays_and_objects() {
        let v = parse(r#"[1, "two", null, {"a": true}]"#).unwrap();
        let Value::Array(items) = &v else {
            panic!("expected Value::Array, got {v:?}")
        };
        assert_eq!(items.len(), 4);
        let Value::Object(map) = &items[3] else {
            panic!("expected Value::Object at index 3, got {:?}", items[3])
        };
        assert_eq!(map.get("a"), Some(&Value::Bool(true)));
    }

    #[test]
    fn nested_structures() {
        let text = r#"{"outer": {"inner": [[1,2],[3,4]], "x": -1.5e-3}}"#;
        let v = parse(text).unwrap();
        let Value::Object(map) = &v else {
            panic!("expected Value::Object, got {v:?}")
        };
        assert!(map.contains_key("outer"));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Object(BTreeMap::new()));
    }

    #[test]
    fn error_positions() {
        assert!(parse("").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("nulls").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn big_u64_roundtrip() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v, Value::Number(Number::U64(u64::MAX)));
        assert_eq!(Number::U64(u64::MAX).as_u64(), Some(u64::MAX));
    }

    #[test]
    fn number_conversions() {
        assert_eq!(Number::F64(2.0).as_u64(), Some(2));
        assert_eq!(Number::F64(2.5).as_u64(), None);
        assert_eq!(Number::F64(-2.0).as_i64(), Some(-2));
        assert_eq!(Number::U64(5).as_i64(), Some(5));
        assert_eq!(Number::I64(-5).as_u64(), None);
    }
}
