//! The profile report: what a standard profiling tool reports about one
//! application run.
//!
//! The paper's performance model (Section III-A) consumes exactly these
//! quantities: CPU L1/LLC miss rates, GPU L1 hit rate, the number and size
//! of GPU memory transactions, and the runtime decomposition (kernel time,
//! CPU-task time, copy time). On real hardware they come from
//! `nvprof`/`perf`; here they are projected from the simulator's counters.

use serde::{Deserialize, Serialize};

use icomm_models::{CommModelKind, RunReport};
use icomm_soc::units::Picos;

/// Profiler output for one application under one communication model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Application name.
    pub workload: String,
    /// The communication model the application currently uses.
    pub model: CommModelKind,
    /// CPU L1 data-cache miss rate in `[0, 1]`.
    pub miss_rate_l1_cpu: f64,
    /// CPU LLC miss rate in `[0, 1]`.
    pub miss_rate_ll_cpu: f64,
    /// GPU L1 hit rate in `[0, 1]`.
    pub hit_rate_l1_gpu: f64,
    /// GPU memory transactions per iteration (`t_n` in Eqn. 2).
    pub gpu_transactions: u64,
    /// Mean GPU transaction size in bytes (`t_size` in Eqn. 2).
    pub gpu_transaction_bytes: f64,
    /// Kernel runtime per iteration.
    pub kernel_time: Picos,
    /// CPU task time per iteration.
    pub cpu_time: Picos,
    /// Communication (copy/migration) time per iteration.
    pub copy_time: Picos,
    /// End-to-end time per iteration.
    pub total_time: Picos,
}

impl ProfileReport {
    /// Projects a profile out of a model run.
    ///
    /// GPU cache rates are taken from the GPU L1 counters; when the L1 was
    /// bypassed for every access (the zero-copy case) the hit rate is zero
    /// by definition — the profiler on real hardware observes the same.
    pub fn from_run(run: &RunReport) -> Self {
        let iterations = run.iterations.max(1) as u64;
        let c = &run.counters;
        let gpu_txn = c.gpu.mem_transactions;
        ProfileReport {
            workload: run.workload.clone(),
            model: run.model,
            miss_rate_l1_cpu: c.cpu_l1.miss_rate(),
            miss_rate_ll_cpu: c.cpu_llc.miss_rate(),
            hit_rate_l1_gpu: c.gpu_l1.hit_rate(),
            gpu_transactions: gpu_txn / iterations,
            gpu_transaction_bytes: if gpu_txn == 0 {
                0.0
            } else {
                c.gpu.mem_bytes as f64 / gpu_txn as f64
            },
            kernel_time: run.kernel_time_per_iteration(),
            cpu_time: run.cpu_time_per_iteration(),
            copy_time: run.copy_time_per_iteration(),
            total_time: run.time_per_iteration(),
        }
    }

    /// Checks the counters are physically plausible — the gate a consumer
    /// of *streamed* profiles (the adaptation runtime, the tuning service)
    /// applies before trusting a window.
    ///
    /// On real hardware counters arrive multiplexed, dropped or saturated:
    /// a NaN rate, a rate outside `[0, 1]`, a negative or non-finite
    /// transaction size, a zero total time, or component times that dwarf
    /// the total are all symptoms of a corrupted sample rather than of any
    /// application behavior. Such windows must be quarantined, not fed
    /// into Eqns. 1/2.
    ///
    /// # Errors
    ///
    /// Returns a description of the first implausible counter.
    pub fn check_plausible(&self) -> Result<(), String> {
        for (name, rate) in [
            ("miss_rate_l1_cpu", self.miss_rate_l1_cpu),
            ("miss_rate_ll_cpu", self.miss_rate_ll_cpu),
            ("hit_rate_l1_gpu", self.hit_rate_l1_gpu),
        ] {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(format!("{name} {rate} outside [0, 1]"));
            }
        }
        if !self.gpu_transaction_bytes.is_finite() || self.gpu_transaction_bytes < 0.0 {
            return Err(format!(
                "gpu_transaction_bytes {} not a plausible size",
                self.gpu_transaction_bytes
            ));
        }
        if self.total_time == Picos::ZERO {
            return Err("total_time is zero: the window measured nothing".into());
        }
        // One profiling window is a reporting interval (micro- to
        // milliseconds); an hour-long "window" is a saturated or wrapped
        // timer, not a slow run.
        const MAX_WINDOW: Picos = Picos(3_600_000_000_000_000_000);
        if self.total_time > MAX_WINDOW {
            return Err(format!(
                "total_time {} exceeds any plausible window",
                self.total_time.0
            ));
        }
        // Components can legitimately exceed the total under overlap, but
        // not by orders of magnitude.
        let parts = self.kernel_time.0 as f64 + self.cpu_time.0 as f64 + self.copy_time.0 as f64;
        if parts > self.total_time.0 as f64 * 16.0 {
            return Err("component times dwarf the total: inconsistent decomposition".into());
        }
        Ok(())
    }

    /// Bytes the GPU fetched from beyond its L1 per iteration — the
    /// numerator of Eqn. 2 (`t_n * t_size * (1 - hit_rate_L1_GPU)`).
    pub fn gpu_ll_bytes(&self) -> f64 {
        self.gpu_transactions as f64 * self.gpu_transaction_bytes * (1.0 - self.hit_rate_l1_gpu)
    }

    /// Observed LL-to-L1 throughput of the GPU in bytes/second.
    pub fn gpu_ll_throughput(&self) -> f64 {
        let secs = self.kernel_time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.gpu_ll_bytes() / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icomm_soc::stats::SocSnapshot;
    use icomm_soc::units::Energy;

    fn run_with_counters() -> RunReport {
        let mut counters = SocSnapshot::default();
        counters.cpu_l1.hits = 90;
        counters.cpu_l1.misses = 10;
        counters.cpu_llc.hits = 5;
        counters.cpu_llc.misses = 5;
        counters.gpu_l1.hits = 60;
        counters.gpu_l1.misses = 40;
        counters.gpu.mem_transactions = 200;
        counters.gpu.mem_bytes = 200 * 64;
        RunReport {
            model: CommModelKind::StandardCopy,
            workload: "t".into(),
            iterations: 2,
            total_time: Picos::from_micros(200),
            copy_time: Picos::from_micros(40),
            kernel_time: Picos::from_micros(100),
            cpu_time: Picos::from_micros(60),
            sync_time: Picos::ZERO,
            overlap_saved: Picos::ZERO,
            energy: Energy::ZERO,
            counters,
        }
    }

    #[test]
    fn rates_projected_from_counters() {
        let p = ProfileReport::from_run(&run_with_counters());
        assert!((p.miss_rate_l1_cpu - 0.1).abs() < 1e-12);
        assert!((p.miss_rate_ll_cpu - 0.5).abs() < 1e-12);
        assert!((p.hit_rate_l1_gpu - 0.6).abs() < 1e-12);
        assert_eq!(p.gpu_transactions, 100);
        assert!((p.gpu_transaction_bytes - 64.0).abs() < 1e-12);
    }

    #[test]
    fn per_iteration_times() {
        let p = ProfileReport::from_run(&run_with_counters());
        assert_eq!(p.kernel_time, Picos::from_micros(50));
        assert_eq!(p.cpu_time, Picos::from_micros(30));
        assert_eq!(p.copy_time, Picos::from_micros(20));
        assert_eq!(p.total_time, Picos::from_micros(100));
    }

    #[test]
    fn gpu_ll_bytes_formula() {
        let p = ProfileReport::from_run(&run_with_counters());
        // 100 txns * 64 B * (1 - 0.6) = 2560 B per iteration.
        assert!((p.gpu_ll_bytes() - 2560.0).abs() < 1e-9);
        // 2560 B over 50 us.
        let expected = 2560.0 / 50e-6;
        assert!((p.gpu_ll_throughput() - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn empty_run_is_all_zero() {
        let mut run = run_with_counters();
        run.counters = SocSnapshot::default();
        run.kernel_time = Picos::ZERO;
        let p = ProfileReport::from_run(&run);
        assert_eq!(p.hit_rate_l1_gpu, 0.0);
        assert_eq!(p.gpu_transaction_bytes, 0.0);
        assert_eq!(p.gpu_ll_throughput(), 0.0);
    }
}
