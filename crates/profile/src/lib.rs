//! # icomm-profile — profiler emulation
//!
//! The decision framework consumes standard profiler counters (CPU L1/LLC
//! miss rates, GPU L1 hit rate, transaction counts, runtime decomposition).
//! On real hardware these come from `nvprof`/`perf`; this crate projects
//! them from the `icomm-soc` simulator counters, giving the exact inputs of
//! the paper's Eqns. 1–2.
//!
//! See [`Profiler`] for the entry point and [`ProfileReport`] for the
//! collected quantities.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod profiler;
pub mod report;

pub use profiler::Profiler;
pub use report::ProfileReport;
