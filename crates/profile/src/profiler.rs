//! The profiler front-end: run an application under its current
//! communication model and collect the counters the framework needs.

use icomm_models::{model_for, CommModelKind, RunReport, Workload};
use icomm_soc::{DeviceProfile, Soc};

use crate::report::ProfileReport;

/// Profiles workloads on a device, the way `nvprof` profiles a process on
/// a Jetson board.
///
/// # Examples
///
/// ```
/// use icomm_models::{CommModelKind, GpuPhase, Workload};
/// use icomm_profile::Profiler;
/// use icomm_soc::cache::AccessKind;
/// use icomm_soc::DeviceProfile;
/// use icomm_trace::Pattern;
///
/// let w = Workload::builder("stream")
///     .gpu(GpuPhase {
///         compute_work: 1 << 16,
///         shared_accesses: Pattern::Linear {
///             start: 0,
///             bytes: 64 * 1024,
///             txn_bytes: 64,
///             kind: AccessKind::Read,
///         },
///         private_accesses: None,
///     })
///     .build();
/// let profiler = Profiler::new(DeviceProfile::jetson_tx2());
/// let profile = profiler.profile(&w, CommModelKind::StandardCopy);
/// assert_eq!(profile.model, CommModelKind::StandardCopy);
/// ```
#[derive(Debug, Clone)]
pub struct Profiler {
    device: DeviceProfile,
    /// Warm-up iterations excluded from the counters (cold-cache effects
    /// would otherwise skew single-iteration profiles).
    warmup_iterations: u32,
}

impl Profiler {
    /// Creates a profiler for a device with one warm-up iteration.
    pub fn new(device: DeviceProfile) -> Self {
        Profiler {
            device,
            warmup_iterations: 1,
        }
    }

    /// Overrides the number of warm-up iterations.
    pub fn with_warmup(mut self, iterations: u32) -> Self {
        self.warmup_iterations = iterations;
        self
    }

    /// The device being profiled.
    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    /// Runs `workload` under `model` and returns both the profile and the
    /// raw run report.
    pub fn profile_run(
        &self,
        workload: &Workload,
        model: CommModelKind,
    ) -> (ProfileReport, RunReport) {
        let comm = model_for(model);
        let mut soc = Soc::new(self.device.clone());
        if self.warmup_iterations > 0 {
            let mut warmup = workload.clone();
            warmup.iterations = self.warmup_iterations;
            let _ = comm.run(&mut soc, &warmup);
            soc.reset_stats();
        }
        let run = comm.run(&mut soc, workload);
        (ProfileReport::from_run(&run), run)
    }

    /// Runs `workload` under `model` and returns the profile.
    pub fn profile(&self, workload: &Workload, model: CommModelKind) -> ProfileReport {
        self.profile_run(workload, model).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icomm_models::{CpuPhase, GpuPhase};
    use icomm_soc::cache::AccessKind;
    use icomm_soc::units::ByteSize;
    use icomm_trace::Pattern;

    fn cache_friendly_workload() -> Workload {
        // 4 passes over 128 KiB: strong reuse in the GPU LLC.
        let sweep = Pattern::Repeat {
            body: Box::new(Pattern::Linear {
                start: 0,
                bytes: 128 * 1024,
                txn_bytes: 64,
                kind: AccessKind::Read,
            }),
            times: 4,
        };
        Workload::builder("cache-friendly")
            .bytes_to_gpu(ByteSize::kib(128))
            .cpu(CpuPhase::idle())
            .gpu(GpuPhase {
                compute_work: 1 << 18,
                shared_accesses: sweep,
                private_accesses: None,
            })
            .iterations(2)
            .build()
    }

    #[test]
    fn warmup_makes_gpu_l1_hit_rate_visible() {
        let profiler = Profiler::new(DeviceProfile::jetson_tx2());
        let p = profiler.profile(&cache_friendly_workload(), CommModelKind::StandardCopy);
        // Within one kernel, 3 of 4 passes can hit (footprint exceeds L1
        // but the LLC serves them; L1 hit rate is at least nonzero for
        // adjacent reuse of lines).
        assert!(p.gpu_transactions > 0);
        assert!(p.kernel_time > icomm_soc::units::Picos::ZERO);
    }

    #[test]
    fn zc_profile_shows_zero_gpu_hits() {
        let profiler = Profiler::new(DeviceProfile::jetson_tx2());
        let p = profiler.profile(&cache_friendly_workload(), CommModelKind::ZeroCopy);
        assert_eq!(p.hit_rate_l1_gpu, 0.0);
        assert_eq!(p.copy_time, icomm_soc::units::Picos::ZERO);
    }

    #[test]
    fn profile_run_returns_consistent_pair() {
        let profiler = Profiler::new(DeviceProfile::jetson_agx_xavier());
        let (p, run) =
            profiler.profile_run(&cache_friendly_workload(), CommModelKind::StandardCopy);
        assert_eq!(p.total_time, run.time_per_iteration());
        assert_eq!(p.model, run.model);
    }

    #[test]
    fn no_warmup_includes_cold_misses() {
        let cold = Profiler::new(DeviceProfile::jetson_tx2()).with_warmup(0);
        let warm = Profiler::new(DeviceProfile::jetson_tx2()).with_warmup(1);
        let w = cache_friendly_workload();
        let p_cold = cold.profile(&w, CommModelKind::StandardCopy);
        let p_warm = warm.profile(&w, CommModelKind::StandardCopy);
        // Cold profile sees at least as many CPU LLC misses.
        assert!(p_cold.miss_rate_ll_cpu >= p_warm.miss_rate_ll_cpu);
    }
}
