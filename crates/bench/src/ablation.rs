//! Ablation studies for the design choices DESIGN.md calls out.

use icomm_apps::{LaneApp, ShwfsApp};
use icomm_microbench::mb3::{Mb3Config, OverlapProbe};
use icomm_models::model::CommModel;
use icomm_models::tiling::TilingConfig;
use icomm_models::zero_copy::ZeroCopy;
use icomm_models::{run_model, CommModelKind};
use icomm_soc::hierarchy::ZcRules;
use icomm_soc::units::Picos;
use icomm_soc::{DeviceProfile, Soc};

use crate::experiments::ExperimentReport;
use crate::table::{us, TextTable};

/// **Ablation: hardware I/O coherence.** Re-runs the SH-WFS zero-copy
/// configuration on an AGX Xavier with I/O coherence disabled: the board
/// degenerates to TX2-like behaviour, demonstrating that the coherence
/// fabric — not clocks or bandwidth — is what keeps zero copy viable.
pub fn ablation_io_coherence() -> ExperimentReport {
    let workload = ShwfsApp::default().workload();
    let mut t = TextTable::new(["Configuration", "ZC time/frame", "ZC kernel", "ZC CPU"]);

    let stock = DeviceProfile::jetson_agx_xavier();
    let zc = run_model(CommModelKind::ZeroCopy, &stock, &workload);
    t.row([
        "Xavier (I/O coherent)".to_string(),
        us(zc.time_per_iteration()),
        us(zc.kernel_time_per_iteration()),
        us(zc.cpu_time_per_iteration()),
    ]);

    let mut crippled = stock.clone();
    crippled.zc_rules = ZcRules {
        cpu_caches_pinned: false,
        io_coherent: false,
    };
    let zc_off = run_model(CommModelKind::ZeroCopy, &crippled, &workload);
    t.row([
        "Xavier (coherence disabled)".to_string(),
        us(zc_off.time_per_iteration()),
        us(zc_off.kernel_time_per_iteration()),
        us(zc_off.cpu_time_per_iteration()),
    ]);

    let slowdown = zc_off.total_time.as_picos() as f64 / zc.total_time.as_picos() as f64;
    ExperimentReport {
        id: "ablation-io-coherence".into(),
        title: "Zero copy with the Xavier's I/O coherence toggled off".into(),
        text: format!("{}\ncoherence-off slowdown: {slowdown:.1}x\n", t.render()),
    }
}

/// **Ablation: pipeline phase count / barrier cost.** Sweeps the tiled
/// zero-copy pattern's phase count on the MB3 workload: more phases mean
/// finer-grained hand-off (lower latency to first result) but more
/// barrier overhead.
pub fn ablation_tiling() -> ExperimentReport {
    let device = DeviceProfile::jetson_agx_xavier();
    let probe = OverlapProbe::with_config(Mb3Config {
        array_bytes: 1 << 24,
        ..Mb3Config::default()
    });
    let workload = probe.workload(&device);
    let mut t = TextTable::new(["Phases", "Barrier", "ZC wall time", "Sync time"]);
    for phases in [2u32, 4, 8, 16, 64] {
        for barrier_us in [1u64, 5, 20] {
            let tiling = TilingConfig {
                phases,
                barrier_cost: Picos::from_micros(barrier_us),
                ..TilingConfig::for_device(&device)
            };
            let mut soc = Soc::new(device.clone());
            let run = ZeroCopy::with_tiling(tiling).run(&mut soc, &workload);
            t.row([
                phases.to_string(),
                format!("{barrier_us} us"),
                us(run.time_per_iteration()),
                us(run.sync_time / run.iterations as u64),
            ]);
        }
    }
    ExperimentReport {
        id: "ablation-tiling".into(),
        title: "Tiled pipeline: phase count vs barrier overhead".into(),
        text: t.render(),
    }
}

/// **Ablation: GPU memory-level parallelism on the pinned path.** The
/// single most important calibration parameter: sweeping it moves a
/// device continuously between "TX2-like" (ZC collapses) and
/// "Xavier-like" (ZC viable) behaviour.
pub fn ablation_pinned_mlp() -> ExperimentReport {
    let workload = ShwfsApp::default().workload();
    let mut t = TextTable::new(["mlp_pinned", "ZC kernel", "SC kernel", "ZC/SC ratio"]);
    for mlp in [2.0f64, 8.0, 16.0, 32.0, 64.0, 128.0] {
        let mut device = DeviceProfile::jetson_agx_xavier();
        device.gpu.mlp_pinned = mlp;
        let sc = run_model(CommModelKind::StandardCopy, &device, &workload);
        let zc = run_model(CommModelKind::ZeroCopy, &device, &workload);
        let ratio = zc.kernel_time_per_iteration().as_picos() as f64
            / sc.kernel_time_per_iteration().as_picos() as f64;
        t.row([
            format!("{mlp:.0}"),
            us(zc.kernel_time_per_iteration()),
            us(sc.kernel_time_per_iteration()),
            format!("{ratio:.2}x"),
        ]);
    }
    ExperimentReport {
        id: "ablation-mlp".into(),
        title: "Sensitivity of the ZC kernel penalty to pinned-path MLP".into(),
        text: t.render(),
    }
}

/// **Ablation: UM migration granularity.** The unified-memory driver's
/// fault-group size is what keeps UM within a few percent of SC at every
/// transfer size; shrinking it toward the 4 KiB base page makes the
/// per-fault overhead dominate large transfers.
pub fn ablation_um_chunk() -> ExperimentReport {
    use icomm_models::{run_model, CommModelKind, CpuPhase, GpuPhase, Workload};
    use icomm_soc::cache::AccessKind;
    use icomm_soc::units::ByteSize;
    use icomm_trace::Pattern;

    let bytes: u64 = 1 << 25; // 32 MiB payload
    let workload = Workload::builder("um-chunk-sweep")
        .bytes_to_gpu(ByteSize(bytes))
        .cpu(CpuPhase::idle())
        .gpu(GpuPhase {
            compute_work: 1 << 22,
            shared_accesses: Pattern::Linear {
                start: 0,
                bytes,
                txn_bytes: 64,
                kind: AccessKind::Read,
            },
            private_accesses: None,
        })
        .iterations(2)
        .build();
    let mut t = TextTable::new(["Migration chunk", "UM time/frame", "UM vs SC"]);
    let base = DeviceProfile::jetson_agx_xavier();
    let sc = run_model(CommModelKind::StandardCopy, &base, &workload);
    for chunk_kib in [4u64, 64, 256, 1024, 2048, 8192] {
        let mut device = base.clone();
        device.um.migration_chunk_bytes = chunk_kib * 1024;
        let um = run_model(CommModelKind::UnifiedMemory, &device, &workload);
        t.row([
            format!("{chunk_kib} KiB"),
            us(um.time_per_iteration()),
            format!("{:+.1}%", -um.speedup_vs_percent(&sc)),
        ]);
    }
    ExperimentReport {
        id: "ablation-um-chunk".into(),
        title: "Unified-memory migration granularity vs the SC baseline (32 MiB payload)".into(),
        text: t.render(),
    }
}

/// **Ablation: double-buffered standard copy (SC+).** How much of zero
/// copy's advantage is *overlap* (which double buffering also gets) and
/// how much is *copy elimination* (which only zero copy gets)?
pub fn ablation_async_copy() -> ExperimentReport {
    let workload = LaneApp::default().workload();
    let mut t = TextTable::new(["Board", "Model", "Time/frame", "vs SC"]);
    for device in [
        DeviceProfile::jetson_tx2(),
        DeviceProfile::jetson_agx_xavier(),
    ] {
        let sc = run_model(CommModelKind::StandardCopy, &device, &workload);
        for kind in CommModelKind::EXTENDED {
            let run = run_model(kind, &device, &workload);
            let delta = if kind == CommModelKind::StandardCopy {
                "-".to_string()
            } else {
                format!("{:+.0}%", run.speedup_vs_percent(&sc))
            };
            t.row([
                device.name.clone(),
                kind.abbrev().to_string(),
                us(run.time_per_iteration()),
                delta,
            ]);
        }
    }
    ExperimentReport {
        id: "ablation-async-copy".into(),
        title: "Double-buffered SC vs the paper's models (lane-detection pipeline)".into(),
        text: t.render(),
    }
}

/// **Ablation: DVFS power modes.** Jetson boards ship with `nvpmodel`
/// power caps that scale clocks and memory. Sweeping an Xavier through
/// three modes shows the framework's *verdict* for the SH-WFS pipeline is
/// stable even as absolute times scale — the communication-model choice
/// is an architectural property, not a clock-speed one.
pub fn ablation_power_modes() -> ExperimentReport {
    let workload = ShwfsApp::default().workload();
    let mut t = TextTable::new(["Power mode", "SC time/frame", "ZC time/frame", "ZC vs SC"]);
    let base = DeviceProfile::jetson_agx_xavier();
    for (label, cpu, gpu, mem) in [
        ("MAXN (stock)", 1.0, 1.0, 1.0),
        ("balanced (~30W)", 0.8, 0.75, 0.85),
        ("capped (~15W)", 0.55, 0.5, 0.65),
    ] {
        let device = base.with_power_scale(cpu, gpu, mem);
        let sc = run_model(CommModelKind::StandardCopy, &device, &workload);
        let zc = run_model(CommModelKind::ZeroCopy, &device, &workload);
        t.row([
            label.to_string(),
            us(sc.time_per_iteration()),
            us(zc.time_per_iteration()),
            format!("{:+.0}%", zc.speedup_vs_percent(&sc)),
        ]);
    }
    ExperimentReport {
        id: "ablation-power-modes".into(),
        title: "SH-WFS under Xavier DVFS power modes".into(),
        text: t.render(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_coherence_ablation_shows_collapse() {
        let r = ablation_io_coherence();
        assert!(r.text.contains("slowdown"));
        // Parse the slowdown out of the report tail.
        let line = r
            .text
            .lines()
            .find(|l| l.contains("coherence-off slowdown"))
            .unwrap();
        let x: f64 = line
            .split(':')
            .nth(1)
            .unwrap()
            .trim()
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!(x > 1.5, "disabling coherence must hurt, got {x:.2}x");
    }

    #[test]
    fn tiling_ablation_monotone_in_barrier_cost() {
        let r = ablation_tiling();
        assert!(r.text.contains("Phases"));
    }

    #[test]
    fn um_chunk_ablation_smaller_chunks_cost_more() {
        let r = ablation_um_chunk();
        assert!(r.text.contains("4 KiB"));
        assert!(r.text.contains("2048 KiB"));
    }

    #[test]
    fn async_copy_ablation_renders_extended_models() {
        let r = ablation_async_copy();
        assert!(r.text.contains("SC+"));
    }

    #[test]
    fn power_modes_keep_the_verdict() {
        let r = ablation_power_modes();
        // Zero copy must win in every mode (positive percentages only).
        let wins = r.text.matches('+').count();
        assert!(wins >= 3, "ZC should win in all three modes:\n{}", r.text);
    }
}
