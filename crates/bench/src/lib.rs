//! # icomm-bench — experiment harness and benchmarks
//!
//! Regenerates every table and figure of the paper's evaluation section
//! against the `icomm` simulator:
//!
//! | Target | Paper artefact |
//! |--------|----------------|
//! | [`experiments::fig5_and_table1`] | Fig. 5 + Table I (MB1) |
//! | [`experiments::fig3_xavier`] | Fig. 3 (MB2 on Xavier) |
//! | [`experiments::fig6_tx2`] | Fig. 6 (MB2 on TX2) |
//! | [`experiments::fig7`] | Fig. 7 (MB3) |
//! | [`experiments::table2_shwfs`] | Table II |
//! | [`experiments::table3_shwfs`] | Table III |
//! | [`experiments::table4_orb`] | Table IV |
//! | [`experiments::table5_orb`] | Table V |
//! | [`ablation`] | design-choice ablations |
//!
//! The Criterion bench targets under `benches/` print these reports and
//! measure the wall-clock cost of the underlying simulations, so
//! `cargo bench -p icomm-bench` reproduces the whole evaluation.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablation;
pub mod chart;
pub mod expected;
pub mod experiments;
pub mod table;

pub use experiments::{CharacterizationSet, ExperimentReport};
