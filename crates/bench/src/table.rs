//! Fixed-width text tables for experiment reports.

use std::fmt::Write as _;

/// A simple left-padded text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let render_row = |cells: &[String], out: &mut String| {
            let line = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!(" {:<width$} ", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("|");
            let _ = writeln!(out, "{line}");
        };
        render_row(&self.header, &mut out);
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }
}

/// Formats a microsecond quantity compactly.
pub fn us(t: icomm_soc::units::Picos) -> String {
    format!("{:.2} us", t.as_micros_f64())
}

/// Formats a GB/s quantity compactly.
pub fn gbps(bytes_per_sec: f64) -> String {
    format!("{:.2} GB/s", bytes_per_sec / 1e9)
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_pads_columns() {
        let mut t = TextTable::new(["a", "bbbb"]);
        t.row(["xxxx", "y"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[1].contains('+'));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn formatters() {
        assert_eq!(us(icomm_soc::units::Picos::from_micros(41)), "41.00 us");
        assert_eq!(gbps(97.34e9), "97.34 GB/s");
        assert_eq!(pct(16.2), "16.2%");
    }
}
