//! Experiment harness: one function per table/figure of the paper.
//!
//! Every function runs the full experiment on the simulator and renders a
//! report with the measured values next to the paper's published numbers.
//! The Criterion bench targets in `benches/` call these once per run and
//! print the reports, so `cargo bench` regenerates every table and figure.

use icomm_apps::{OrbApp, ShwfsApp};
use icomm_core::Tuner;
use icomm_microbench::mb1::PeakCacheThroughput;
use icomm_microbench::mb2::ThresholdSweep;
use icomm_microbench::mb3::{Mb3Config, OverlapProbe};
use icomm_microbench::{characterize_device, DeviceCharacterization};
use icomm_models::{run_model, CommModelKind, RunReport, Workload};
use icomm_soc::DeviceProfile;

use crate::chart::{self, Series};
use crate::expected;
use crate::table::{gbps, pct, us, TextTable};

/// A rendered experiment report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentReport {
    /// Short identifier (e.g. `table1`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Rendered body.
    pub text: String,
}

impl ExperimentReport {
    /// Renders the full report with its header.
    pub fn render(&self) -> String {
        format!("== {} — {} ==\n{}", self.id, self.title, self.text)
    }
}

/// Pre-measured characterizations of the three boards (the expensive
/// once-per-board step shared by the application experiments).
#[derive(Debug, Clone)]
pub struct CharacterizationSet {
    /// Jetson Nano.
    pub nano: DeviceCharacterization,
    /// Jetson TX2.
    pub tx2: DeviceCharacterization,
    /// Jetson AGX Xavier.
    pub xavier: DeviceCharacterization,
}

impl CharacterizationSet {
    /// Runs the three micro-benchmarks on every board.
    pub fn measure() -> Self {
        CharacterizationSet {
            nano: characterize_device(&DeviceProfile::jetson_nano()),
            tx2: characterize_device(&DeviceProfile::jetson_tx2()),
            xavier: characterize_device(&DeviceProfile::jetson_agx_xavier()),
        }
    }

    /// The characterization for a device (matched by name).
    ///
    /// # Errors
    ///
    /// Returns a message listing the characterized boards for devices
    /// outside the built-in three.
    pub fn for_device(&self, device: &DeviceProfile) -> Result<&DeviceCharacterization, String> {
        match device.name.as_str() {
            "Jetson Nano" => Ok(&self.nano),
            "Jetson TX2" => Ok(&self.tx2),
            "Jetson AGX Xavier" => Ok(&self.xavier),
            other => Err(format!(
                "no characterization for '{other}' (characterized: Jetson Nano, Jetson TX2, Jetson AGX Xavier)"
            )),
        }
    }
}

/// **Fig. 5 + Table I**: first micro-benchmark — per-model CPU/GPU times
/// and peak GPU cache throughputs on TX2 and Xavier.
pub fn fig5_and_table1() -> ExperimentReport {
    let mut times = TextTable::new(["Board", "Model", "CPU routine", "GPU kernel"]);
    let mut throughput = TextTable::new([
        "Board",
        "ZC (measured)",
        "ZC (paper)",
        "SC (measured)",
        "SC (paper)",
        "UM (measured)",
        "UM (paper)",
    ]);
    for (device, paper) in [
        (DeviceProfile::jetson_nano(), None),
        (DeviceProfile::jetson_tx2(), Some(&expected::TABLE1[0])),
        (
            DeviceProfile::jetson_agx_xavier(),
            Some(&expected::TABLE1[1]),
        ),
    ] {
        let r = PeakCacheThroughput::new().run(&device);
        for m in &r.per_model {
            times.row([
                device.name.clone(),
                m.model.abbrev().to_string(),
                us(m.cpu_time),
                us(m.kernel_time),
            ]);
        }
        // The paper omits Nano numbers ("equivalent to those of the TX2").
        let paper_cell = |v: Option<f64>| v.map(|g| gbps(g * 1e9)).unwrap_or_else(|| "n/a".into());
        throughput.row([
            device.name.clone(),
            gbps(r.model(CommModelKind::ZeroCopy).ll_throughput),
            paper_cell(paper.map(|p| p.zc_gbps)),
            gbps(r.model(CommModelKind::StandardCopy).ll_throughput),
            paper_cell(paper.map(|p| p.sc_gbps)),
            gbps(r.model(CommModelKind::UnifiedMemory).ll_throughput),
            paper_cell(paper.map(|p| p.um_gbps)),
        ]);
    }
    ExperimentReport {
        id: "fig5+table1".into(),
        title: "MB1: execution times per model and peak GPU cache throughput".into(),
        text: format!("{}\n{}", times.render(), throughput.render()),
    }
}

fn threshold_sweep_report(
    device: &DeviceProfile,
    paper_threshold: f64,
    paper_zone2: Option<f64>,
    id: &str,
) -> ExperimentReport {
    let sweep = ThresholdSweep::new().run_gpu(device);
    let mut t = TextTable::new([
        "Fraction",
        "SC kernel",
        "ZC kernel",
        "ZC slowdown",
        "SC LL thr.",
        "Usage",
    ]);
    for p in &sweep.points {
        t.row([
            format!("1/{:.0}", 1.0 / p.fraction),
            us(p.sc_time),
            us(p.zc_time),
            format!("{:+.0}%", p.zc_slowdown() * 100.0),
            gbps(p.sc_ll_throughput),
            pct(p.sc_usage_pct),
        ]);
    }
    let zone2 = sweep
        .zone2_limit_pct
        .map(pct)
        .unwrap_or_else(|| "beyond sweep".into());
    let paper_zone2 = paper_zone2.map(pct).unwrap_or_else(|| "n/a".into());
    // The paper presents this data as a figure; render the kernel-time
    // curves the same way.
    let plot = chart::render(
        &format!("{} kernel time vs accessed fraction (log-log)", device.name),
        "us",
        &[
            Series::new(
                "SC kernel",
                'o',
                sweep
                    .points
                    .iter()
                    .map(|p| (p.fraction, p.sc_time.as_micros_f64()))
                    .collect(),
            ),
            Series::new(
                "ZC kernel",
                '*',
                sweep
                    .points
                    .iter()
                    .map(|p| (p.fraction, p.zc_time.as_micros_f64()))
                    .collect(),
            ),
        ],
        60,
        14,
        true,
        true,
    );
    ExperimentReport {
        id: id.into(),
        title: format!("MB2 threshold sweep on the {}", device.name),
        text: format!(
            "{}\n{}\nGPU cache threshold: measured {} (paper {})\nzone-2 limit: measured {} (paper {})\n",
            t.render(),
            plot,
            pct(sweep.threshold_pct),
            pct(paper_threshold),
            zone2,
            paper_zone2,
        ),
    }
}

/// **Fig. 3**: second micro-benchmark on the AGX Xavier.
pub fn fig3_xavier() -> ExperimentReport {
    threshold_sweep_report(
        &DeviceProfile::jetson_agx_xavier(),
        expected::GPU_THRESHOLD_XAVIER_PCT,
        Some(expected::GPU_ZONE2_XAVIER_PCT),
        "fig3",
    )
}

/// **Fig. 6**: second micro-benchmark on the TX2.
pub fn fig6_tx2() -> ExperimentReport {
    threshold_sweep_report(
        &DeviceProfile::jetson_tx2(),
        expected::GPU_THRESHOLD_TX2_PCT,
        None,
        "fig6",
    )
}

/// **Fig. 7**: third micro-benchmark — overlapped zero copy versus SC/UM
/// on a large data set (the paper uses 2^27 floats = 512 MB).
pub fn fig7(array_bytes: u64) -> ExperimentReport {
    let mut t = TextTable::new([
        "Board",
        "Model",
        "Total",
        "CPU half",
        "GPU half",
        "Copies",
        "Overlap saved",
    ]);
    let mut summary = String::new();
    for device in [
        DeviceProfile::jetson_agx_xavier(),
        DeviceProfile::jetson_tx2(),
    ] {
        let probe = OverlapProbe::with_config(Mb3Config {
            array_bytes,
            ..Mb3Config::default()
        });
        let r = probe.run(&device);
        for run in &r.runs {
            t.row([
                device.name.clone(),
                run.model.abbrev().to_string(),
                us(run.total_time),
                us(run.cpu_time),
                us(run.kernel_time),
                us(run.copy_time),
                us(run.overlap_saved),
            ]);
        }
        summary.push_str(&format!(
            "{}: ZC vs SC {:+.0}% (paper, Xavier: up to +{:.0}%), ZC vs UM {:+.0}% (paper: up to +{:.0}%)\n",
            device.name,
            r.zc_advantage_pct(CommModelKind::StandardCopy),
            expected::MB3_ZC_VS_SC_PCT,
            r.zc_advantage_pct(CommModelKind::UnifiedMemory),
            expected::MB3_ZC_VS_UM_PCT,
        ));
    }
    ExperimentReport {
        id: "fig7".into(),
        title: format!("MB3 overlap probe, {} byte array", array_bytes),
        text: format!("{}\n{}", t.render(), summary),
    }
}

/// **Table II**: SH-WFS profiling + framework prediction on every board.
/// # Errors
///
/// Returns a message when a board in the set has no characterization.
pub fn table2_shwfs(characterizations: &CharacterizationSet) -> Result<ExperimentReport, String> {
    let app = ShwfsApp::default();
    let workload = app.workload();
    let mut t = TextTable::new([
        "Board",
        "CPU usage",
        "CPU thr.",
        "GPU usage",
        "GPU thr.",
        "Kernel",
        "Copy/kernel",
        "Pred. SC/ZC speedup",
        "Paper pred.",
    ]);
    for (device, paper) in DeviceProfile::all_boards()
        .iter()
        .zip(expected::TABLE2.iter())
    {
        let c = characterizations.for_device(device)?;
        let tuner = Tuner::with_characterization(device.clone(), c.clone());
        let outcome = tuner.recommend(&workload, CommModelKind::StandardCopy);
        let rec = &outcome.recommendation;
        let predicted = rec
            .estimated_speedup
            .map(|e| format!("{:+.1}%", e.as_percent()))
            .unwrap_or_else(|| "-".into());
        let paper_pred = paper
            .predicted_speedup_pct
            .map(|p| format!("+{p:.1}%"))
            .unwrap_or_else(|| "-".into());
        t.row([
            device.name.clone(),
            pct(rec.cpu_usage_pct),
            pct(rec.cpu_threshold_pct),
            pct(rec.gpu_usage_pct),
            pct(rec.gpu_threshold_pct),
            us(outcome.profile.kernel_time),
            us(outcome.profile.copy_time),
            predicted,
            paper_pred,
        ]);
    }
    Ok(ExperimentReport {
        id: "table2".into(),
        title: "SH-WFS profiling results and framework predictions".into(),
        text: t.render(),
    })
}

fn perf_rows(
    t: &mut TextTable,
    device: &DeviceProfile,
    runs: &[RunReport],
    paper_zc_speedup_pct: f64,
) -> Result<(), String> {
    let sc = runs
        .iter()
        .find(|r| r.model == CommModelKind::StandardCopy)
        .ok_or_else(|| {
            format!(
                "no StandardCopy run for {} to compute speedups against",
                device.name
            )
        })?;
    for run in runs {
        let speedup = if run.model == CommModelKind::StandardCopy {
            "-".to_string()
        } else {
            format!("{:+.0}%", run.speedup_vs_percent(sc))
        };
        let paper = if run.model == CommModelKind::ZeroCopy {
            format!("{paper_zc_speedup_pct:+.0}%")
        } else {
            "-".to_string()
        };
        t.row([
            device.name.clone(),
            run.model.abbrev().to_string(),
            us(run.time_per_iteration()),
            us(run.cpu_time_per_iteration()),
            us(run.kernel_time_per_iteration()),
            us(run.copy_time_per_iteration()),
            speedup,
            paper,
        ]);
    }
    Ok(())
}

/// **Table III**: SH-WFS measured performance under all three models on
/// every board.
///
/// # Errors
///
/// Returns a message when a board's run set is missing its SC baseline.
pub fn table3_shwfs() -> Result<ExperimentReport, String> {
    let app = ShwfsApp::default();
    let workload = app.workload();
    let mut t = TextTable::new([
        "Board",
        "Model",
        "Time/frame",
        "CPU only",
        "Kernel",
        "Copies",
        "vs SC",
        "Paper (ZC vs SC)",
    ]);
    for (device, paper) in DeviceProfile::all_boards()
        .iter()
        .zip(expected::TABLE3.iter())
    {
        let runs: Vec<RunReport> = CommModelKind::ALL
            .iter()
            .map(|&kind| run_model(kind, device, &workload))
            .collect();
        perf_rows(&mut t, device, &runs, paper.zc_speedup_pct)?;
    }
    Ok(ExperimentReport {
        id: "table3".into(),
        title: "SH-WFS centroid extraction performance".into(),
        text: t.render(),
    })
}

/// **Table IV**: ORB profiling + framework verdicts on TX2 and Xavier.
///
/// The application is profiled under its original zero-copy
/// implementation, as in the paper.
///
/// # Errors
///
/// Returns a message when a board in the set has no characterization.
pub fn table4_orb(characterizations: &CharacterizationSet) -> Result<ExperimentReport, String> {
    let app = OrbApp::default();
    let workload = app.workload();
    let mut t = TextTable::new([
        "Board",
        "CPU usage",
        "GPU usage",
        "GPU thr.",
        "Zone",
        "Kernel",
        "Verdict",
        "Paper GPU usage",
    ]);
    for (device, paper) in [
        (DeviceProfile::jetson_tx2(), &expected::TABLE4[0]),
        (DeviceProfile::jetson_agx_xavier(), &expected::TABLE4[1]),
    ] {
        let c = characterizations.for_device(&device)?;
        let tuner = Tuner::with_characterization(device.clone(), c.clone());
        let outcome = tuner.recommend(&workload, CommModelKind::ZeroCopy);
        let rec = &outcome.recommendation;
        t.row([
            device.name.clone(),
            pct(rec.cpu_usage_pct),
            pct(rec.gpu_usage_pct),
            pct(rec.gpu_threshold_pct),
            rec.zone.to_string(),
            us(outcome.profile.kernel_time),
            format!("use {}", rec.recommended.abbrev()),
            pct(paper.gpu_usage_pct),
        ]);
    }
    Ok(ExperimentReport {
        id: "table4".into(),
        title: "ORB front-end profiling results and framework verdicts".into(),
        text: t.render(),
    })
}

/// **Table V**: ORB measured performance under SC and ZC on TX2 and
/// Xavier.
///
/// # Errors
///
/// Returns a message when a board's run set is missing its SC baseline.
pub fn table5_orb() -> Result<ExperimentReport, String> {
    let app = OrbApp::default();
    let workload = app.workload();
    let mut t = TextTable::new([
        "Board",
        "Model",
        "Time/frame",
        "CPU only",
        "Kernel",
        "Copies",
        "vs SC",
        "Paper (ZC vs SC)",
    ]);
    for (device, paper) in [
        (DeviceProfile::jetson_tx2(), &expected::TABLE5[0]),
        (DeviceProfile::jetson_agx_xavier(), &expected::TABLE5[1]),
    ] {
        let runs: Vec<RunReport> = [CommModelKind::StandardCopy, CommModelKind::ZeroCopy]
            .iter()
            .map(|&kind| run_model(kind, &device, &workload))
            .collect();
        perf_rows(&mut t, &device, &runs, paper.zc_speedup_pct)?;
    }
    Ok(ExperimentReport {
        id: "table5".into(),
        title: "ORB front-end performance".into(),
        text: t.render(),
    })
}

/// **Crossover sweep** (extension): for a parametric streaming workload,
/// sweep the payload size and report where zero copy overtakes standard
/// copy on each device. Small payloads are dominated by the fixed copy
/// setup (ZC wins by skipping it); at larger sizes the outcome is decided
/// by the device's pinned-path quality — ZC keeps winning on I/O-coherent
/// boards and loses everywhere on TX2-class boards.
pub fn crossover_sweep() -> ExperimentReport {
    use icomm_models::{CpuPhase, GpuPhase};
    use icomm_soc::cache::AccessKind;
    use icomm_soc::units::ByteSize;
    use icomm_trace::Pattern;

    let make = |bytes: u64| {
        Workload::builder(format!("crossover/{bytes}"))
            .bytes_to_gpu(ByteSize(bytes))
            .cpu(CpuPhase {
                ops: vec![icomm_soc::cpu::OpCount::new(
                    icomm_soc::cpu::CpuOpClass::FpMulAdd,
                    bytes / 16,
                )],
                shared_accesses: Pattern::Linear {
                    start: 0,
                    bytes: bytes / 2,
                    txn_bytes: 64,
                    kind: AccessKind::Write,
                },
                private_accesses: None,
            })
            .gpu(GpuPhase {
                compute_work: bytes * 4,
                shared_accesses: Pattern::Linear {
                    start: 0,
                    bytes,
                    txn_bytes: 64,
                    kind: AccessKind::Read,
                },
                private_accesses: None,
            })
            .overlappable(true)
            .iterations(2)
            .build()
    };
    let sizes: Vec<u64> = (12..=24).step_by(2).map(|p| 1u64 << p).collect();
    let mut t = TextTable::new(["Payload", "Nano", "TX2", "Xavier", "Orin-like"]);
    let boards = [
        DeviceProfile::jetson_nano(),
        DeviceProfile::jetson_tx2(),
        DeviceProfile::jetson_agx_xavier(),
        DeviceProfile::orin_like(),
    ];
    for &bytes in &sizes {
        let w = make(bytes);
        let mut cells = vec![format!("{} KiB", bytes / 1024)];
        for device in &boards {
            let sc = run_model(CommModelKind::StandardCopy, device, &w);
            let zc = run_model(CommModelKind::ZeroCopy, device, &w);
            cells.push(format!("{:+.0}%", zc.speedup_vs_percent(&sc)));
        }
        t.row(cells);
    }
    ExperimentReport {
        id: "crossover".into(),
        title: "ZC-vs-SC advantage across payload sizes (streaming pipeline)".into(),
        text: t.render(),
    }
}

/// **Real-time stream check** (extension): the ORB front-end against a
/// 30 Hz camera, the framing the paper uses for its energy numbers and
/// its reason for omitting the Nano ("does not allow satisfying the real
/// time constraints").
pub fn realtime_orb() -> ExperimentReport {
    use icomm_models::stream::{run_stream, StreamConfig};

    let app = OrbApp {
        iterations: 1,
        ..OrbApp::default()
    };
    let workload = app.workload();
    let cfg = StreamConfig::camera(30, 8);
    let mut t = TextTable::new([
        "Board",
        "Model",
        "Sustained?",
        "Mean latency",
        "Max latency",
        "Power",
    ]);
    for device in DeviceProfile::all_boards() {
        for kind in [CommModelKind::StandardCopy, CommModelKind::ZeroCopy] {
            let r = run_stream(kind, &device, &workload, cfg);
            t.row([
                device.name.clone(),
                kind.abbrev().to_string(),
                if r.sustained() {
                    "yes".to_string()
                } else {
                    format!("NO ({} misses)", r.deadline_misses)
                },
                us(r.mean_latency),
                us(r.max_latency),
                format!("{:.2} W", r.mean_power_watts),
            ]);
        }
    }
    ExperimentReport {
        id: "realtime".into(),
        title: "ORB front-end against a 30 Hz camera".into(),
        text: t.render(),
    }
}

/// End-to-end framework validation: for every board and both case
/// studies, follow the framework's recommendation and verify it never
/// hurts (the paper's headline claim).
/// # Errors
///
/// Returns a message when a board in the set has no characterization.
pub fn validation_summary(
    characterizations: &CharacterizationSet,
) -> Result<ExperimentReport, String> {
    let mut t = TextTable::new([
        "Board",
        "App",
        "Current",
        "Recommended",
        "Predicted",
        "Actual",
        "Sound?",
    ]);
    let apps: Vec<(&str, Workload, CommModelKind)> = vec![
        (
            "sh-wfs",
            ShwfsApp::default().workload(),
            CommModelKind::StandardCopy,
        ),
        ("orb", OrbApp::default().workload(), CommModelKind::ZeroCopy),
    ];
    for device in DeviceProfile::all_boards() {
        for (name, workload, current) in &apps {
            let c = characterizations.for_device(&device)?;
            let tuner = Tuner::with_characterization(device.clone(), c.clone());
            let v = tuner.validate(workload, *current);
            // Switches to SC are bounded by the device's cache-recovery
            // ceiling (Eqn. 4's "<= Max" side); switches to ZC use the
            // Eqn. 3 point estimate.
            let predicted = match (
                &v.recommendation.estimated_speedup,
                v.recommendation.recommended,
            ) {
                (Some(e), CommModelKind::StandardCopy) => {
                    format!("up to {:+.0}%", (e.max_bound - 1.0) * 100.0)
                }
                (Some(e), _) => format!("{:+.0}%", e.as_percent()),
                (None, _) => "-".into(),
            };
            t.row([
                device.name.clone(),
                (*name).to_string(),
                current.abbrev().to_string(),
                v.recommendation.recommended.abbrev().to_string(),
                predicted,
                format!("{:+.0}%", (v.actual_speedup - 1.0) * 100.0),
                if v.recommendation_sound(0.05) {
                    "yes"
                } else {
                    "NO"
                }
                .to_string(),
            ]);
        }
    }
    Ok(ExperimentReport {
        id: "validation".into(),
        title: "Framework recommendations validated against ground truth".into(),
        text: t.render(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_report_renders() {
        let r = fig5_and_table1();
        assert!(r.text.contains("Jetson TX2"));
        assert!(r.text.contains("GB/s"));
    }

    #[test]
    fn fig7_report_renders_small() {
        let r = fig7(1 << 22);
        assert!(r.text.contains("ZC vs SC"));
    }
}
