//! The paper's published numbers, for paper-vs-measured reporting.
//!
//! Absolute values are not expected to match (the substrate is a
//! simulator, not the authors' testbed); the *shape* — who wins, by
//! roughly what factor, where thresholds fall — is the reproduction
//! target. Each experiment report prints these next to the measured
//! values.

/// Table I: maximum GPU cache throughput, GB/s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Board name.
    pub board: &'static str,
    /// Zero-copy path throughput.
    pub zc_gbps: f64,
    /// Standard-copy (cached) throughput.
    pub sc_gbps: f64,
    /// Unified-memory throughput.
    pub um_gbps: f64,
}

/// Table I as published.
pub const TABLE1: [Table1Row; 2] = [
    Table1Row {
        board: "Jetson TX2",
        zc_gbps: 1.28,
        sc_gbps: 97.34,
        um_gbps: 104.15,
    },
    Table1Row {
        board: "Jetson AGX Xavier",
        zc_gbps: 32.29,
        sc_gbps: 214.64,
        um_gbps: 231.14,
    },
];

/// Fig. 3 / Fig. 6: GPU cache thresholds (percent).
pub const GPU_THRESHOLD_TX2_PCT: f64 = 2.7;
/// Xavier threshold (zone-1/zone-2 boundary).
pub const GPU_THRESHOLD_XAVIER_PCT: f64 = 16.2;
/// Xavier zone-2/zone-3 boundary.
pub const GPU_ZONE2_XAVIER_PCT: f64 = 57.1;
/// CPU cache threshold on Nano/TX2.
pub const CPU_THRESHOLD_TX2_PCT: f64 = 15.6;

/// Fig. 7: ZC advantage over SC (percent, "up to").
pub const MB3_ZC_VS_SC_PCT: f64 = 152.0;
/// Fig. 7: ZC advantage over UM (percent, "up to").
pub const MB3_ZC_VS_UM_PCT: f64 = 164.0;

/// Table II: SH-WFS profiling results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Board name.
    pub board: &'static str,
    /// CPU cache usage (Eqn. 1), percent.
    pub cpu_usage_pct: f64,
    /// CPU cache threshold, percent.
    pub cpu_threshold_pct: f64,
    /// GPU cache usage (Eqn. 2), percent.
    pub gpu_usage_pct: f64,
    /// Kernel time, microseconds.
    pub kernel_us: f64,
    /// Copy time per kernel, microseconds.
    pub copy_us: f64,
    /// Predicted SC->ZC speedup, percent (None = not recommended).
    pub predicted_speedup_pct: Option<f64>,
}

/// Table II as published.
pub const TABLE2: [Table2Row; 3] = [
    Table2Row {
        board: "Jetson Nano",
        cpu_usage_pct: 19.8,
        cpu_threshold_pct: 15.6,
        gpu_usage_pct: 1.7,
        kernel_us: 453.5,
        copy_us: 44.8,
        predicted_speedup_pct: None,
    },
    Table2Row {
        board: "Jetson TX2",
        cpu_usage_pct: 19.8,
        cpu_threshold_pct: 15.6,
        gpu_usage_pct: 3.7,
        kernel_us: 175.2,
        copy_us: 22.4,
        predicted_speedup_pct: None,
    },
    Table2Row {
        board: "Jetson AGX Xavier",
        cpu_usage_pct: 6.1,
        cpu_threshold_pct: 100.0,
        gpu_usage_pct: 7.0,
        kernel_us: 41.2,
        copy_us: 16.88,
        predicted_speedup_pct: Some(69.3),
    },
];

/// Table III: SH-WFS measured performance (microseconds / percent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// Board name.
    pub board: &'static str,
    /// SC total time, microseconds.
    pub sc_us: f64,
    /// SC kernel time, microseconds.
    pub sc_kernel_us: f64,
    /// ZC total time, microseconds.
    pub zc_us: f64,
    /// ZC kernel time, microseconds.
    pub zc_kernel_us: f64,
    /// Measured ZC-vs-SC speedup, percent (negative = slower).
    pub zc_speedup_pct: f64,
}

/// Table III as published (SC and ZC columns).
pub const TABLE3: [Table3Row; 3] = [
    Table3Row {
        board: "Jetson Nano",
        sc_us: 1070.1,
        sc_kernel_us: 453.54,
        zc_us: 1796.1,
        zc_kernel_us: 467.21,
        zc_speedup_pct: -67.0,
    },
    Table3Row {
        board: "Jetson TX2",
        sc_us: 765.04,
        sc_kernel_us: 175.18,
        zc_us: 801.24,
        zc_kernel_us: 244.17,
        zc_speedup_pct: -5.0,
    },
    Table3Row {
        board: "Jetson AGX Xavier",
        sc_us: 304.57,
        sc_kernel_us: 41.24,
        zc_us: 220.15,
        zc_kernel_us: 47.14,
        zc_speedup_pct: 38.0,
    },
];

/// Table IV: ORB profiling results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table4Row {
    /// Board name.
    pub board: &'static str,
    /// CPU cache usage, percent.
    pub cpu_usage_pct: f64,
    /// GPU cache usage, percent.
    pub gpu_usage_pct: f64,
    /// Kernel time, microseconds.
    pub kernel_us: f64,
    /// Copy time per kernel, microseconds.
    pub copy_us: f64,
}

/// Table IV as published.
pub const TABLE4: [Table4Row; 2] = [
    Table4Row {
        board: "Jetson TX2",
        cpu_usage_pct: 0.0,
        gpu_usage_pct: 25.3,
        kernel_us: 93.56,
        copy_us: 1.57,
    },
    Table4Row {
        board: "Jetson AGX Xavier",
        cpu_usage_pct: 0.0,
        gpu_usage_pct: 20.1,
        kernel_us: 24.22,
        copy_us: 1.35,
    },
];

/// Table V: ORB measured performance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table5Row {
    /// Board name.
    pub board: &'static str,
    /// SC total time, milliseconds.
    pub sc_ms: f64,
    /// SC kernel time, microseconds.
    pub sc_kernel_us: f64,
    /// ZC total time, milliseconds.
    pub zc_ms: f64,
    /// ZC kernel time, microseconds.
    pub zc_kernel_us: f64,
    /// Measured ZC-vs-SC speedup, percent.
    pub zc_speedup_pct: f64,
}

/// Table V as published.
pub const TABLE5: [Table5Row; 2] = [
    Table5Row {
        board: "Jetson TX2",
        sc_ms: 70.0,
        sc_kernel_us: 93.56,
        zc_ms: 521.0,
        zc_kernel_us: 824.20,
        zc_speedup_pct: -744.0,
    },
    Table5Row {
        board: "Jetson AGX Xavier",
        sc_ms: 30.0,
        sc_kernel_us: 24.22,
        zc_ms: 30.0,
        zc_kernel_us: 26.99,
        zc_speedup_pct: 0.0,
    },
];

/// Relative comparison of a measured value against the paper's: the ratio
/// `measured / paper` (1.0 = exact).
pub fn ratio(measured: f64, paper: f64) -> f64 {
    if paper == 0.0 {
        if measured == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        measured / paper
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_gap_constants() {
        let tx2 = &TABLE1[0];
        assert!((tx2.sc_gbps / tx2.zc_gbps - 76.0).abs() < 1.0);
        let xavier = &TABLE1[1];
        assert!((xavier.sc_gbps / xavier.zc_gbps - 6.6).abs() < 0.2);
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(ratio(0.0, 0.0), 1.0);
        assert!(ratio(1.0, 0.0).is_infinite());
        assert!((ratio(2.0, 4.0) - 0.5).abs() < 1e-12);
    }
}
