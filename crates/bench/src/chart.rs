//! Minimal ASCII charts for the figure experiments.
//!
//! The paper's Figs. 3 and 6 are throughput/runtime curves over the
//! access-fraction sweep; rendering them as text keeps the "regenerate
//! every figure" promise self-contained (no plotting dependencies).

/// One named series of (x, y) points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Plot glyph.
    pub glyph: char,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, glyph: char, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            glyph,
            points,
        }
    }
}

/// Renders series into a fixed-size ASCII chart.
///
/// `log_x` plots x on a log10 axis (the paper's access-fraction sweeps
/// span four decades). Points with non-positive coordinates are skipped
/// on log axes. Returns an empty string if there is nothing to plot.
pub fn render(
    title: &str,
    y_label: &str,
    series: &[Series],
    width: usize,
    height: usize,
    log_x: bool,
    log_y: bool,
) -> String {
    let transform = |v: f64, log: bool| if log { v.log10() } else { v };
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for s in series {
        for &(x, y) in &s.points {
            if (log_x && x <= 0.0) || (log_y && y <= 0.0) {
                continue;
            }
            xs.push(transform(x, log_x));
            ys.push(transform(y, log_y));
        }
    }
    if xs.is_empty() {
        return String::new();
    }
    let (x_min, x_max) = bounds(&xs);
    let (y_min, y_max) = bounds(&ys);
    let x_span = (x_max - x_min).max(f64::MIN_POSITIVE);
    let y_span = (y_max - y_min).max(f64::MIN_POSITIVE);

    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        for &(x, y) in &s.points {
            if (log_x && x <= 0.0) || (log_y && y <= 0.0) {
                continue;
            }
            let fx = (transform(x, log_x) - x_min) / x_span;
            let fy = (transform(y, log_y) - y_min) / y_span;
            let col = ((fx * (width - 1) as f64).round() as usize).min(width - 1);
            let row = height - 1 - ((fy * (height - 1) as f64).round() as usize).min(height - 1);
            grid[row][col] = s.glyph;
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let fmt_axis = |v: f64, log: bool| {
        let raw = if log { 10f64.powf(v) } else { v };
        if raw.abs() >= 1000.0 || (raw != 0.0 && raw.abs() < 0.01) {
            format!("{raw:.2e}")
        } else {
            format!("{raw:.2}")
        }
    };
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{:>10} |", fmt_axis(y_max, log_y))
        } else if i == height - 1 {
            format!("{:>10} |", fmt_axis(y_min, log_y))
        } else {
            format!("{:>10} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>10}  {}{}{}\n",
        y_label,
        fmt_axis(x_min, log_x),
        " ".repeat(width.saturating_sub(16)),
        fmt_axis(x_max, log_x),
    ));
    for s in series {
        out.push_str(&format!("{:>12}: {}\n", s.glyph, s.label));
    }
    out
}

fn bounds(values: &[f64]) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
    }
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Series> {
        vec![
            Series::new(
                "linear",
                '*',
                (1..=10).map(|i| (i as f64, i as f64)).collect(),
            ),
            Series::new("flat", 'o', (1..=10).map(|i| (i as f64, 5.0)).collect()),
        ]
    }

    #[test]
    fn renders_title_legend_and_grid() {
        let text = render("demo", "y", &sample(), 40, 10, false, false);
        assert!(text.starts_with("demo"));
        assert!(text.contains("*: linear"));
        assert!(text.contains("o: flat"));
        assert!(text.contains('|'));
        assert!(text.contains('+'));
    }

    #[test]
    fn increasing_series_touches_top_right() {
        let text = render("demo", "y", &sample(), 40, 10, false, false);
        let lines: Vec<&str> = text.lines().collect();
        // First grid row (top) must contain the '*' of the max point.
        assert!(lines[1].contains('*'), "{text}");
    }

    #[test]
    fn log_axes_skip_nonpositive_points() {
        let s = vec![Series::new(
            "mixed",
            '#',
            vec![(0.0, 1.0), (0.001, 1.0), (1.0, 10.0)],
        )];
        let text = render("log", "y", &s, 30, 8, true, true);
        assert!(text.contains('#'));
    }

    #[test]
    fn empty_input_renders_nothing() {
        assert_eq!(render("t", "y", &[], 30, 8, false, false), "");
        let all_skipped = vec![Series::new("neg", 'x', vec![(-1.0, -1.0)])];
        assert_eq!(render("t", "y", &all_skipped, 30, 8, true, true), "");
    }

    #[test]
    fn single_point_does_not_panic() {
        let s = vec![Series::new("dot", '.', vec![(2.0, 3.0)])];
        let text = render("p", "y", &s, 20, 6, false, false);
        assert!(text.contains('.'));
    }
}
