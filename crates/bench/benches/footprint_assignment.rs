//! Footprint-assignment benchmark: what the memory cap costs the
//! joint solver at N = 4..8 tenants on a TX2.
//!
//! The uncapped solver enumerates 3^N model combinations; the capped
//! solver prices every combination's summed residency on top and
//! rejects the ones that bust the budget. The cap is chosen one byte
//! under each mix's unconstrained optimum, so it always binds — the
//! measured gap is the full price of cap-aware search, not a no-op
//! fast path. Footprints and chosen models are printed alongside so
//! baseline diffs show *which* assignments moved, not just how fast.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use icomm_apps::corun::{contended, pressure};
use icomm_core::{joint_assignment, joint_assignment_capped, CorunTenant};
use icomm_microbench::quick_characterize_device;
use icomm_soc::units::ByteSize;
use icomm_soc::DeviceProfile;

/// First `n` tenants from the memory-heavy pool: the pressure trio,
/// then the contended trio, then HD repeats — enough distinct
/// workloads to exercise MAX_TENANTS without duplicate names.
fn tenant_pool(n: usize) -> Vec<CorunTenant> {
    let specs: Vec<_> = pressure().into_iter().chain(contended()).collect();
    (0..n)
        .map(|i| {
            let s = &specs[i % specs.len()];
            CorunTenant {
                name: if i < specs.len() {
                    s.name.clone()
                } else {
                    format!("{}-{}", s.name, i / specs.len() + 1)
                },
                workload: s.workload.clone(),
                current: s.current,
            }
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let device = DeviceProfile::jetson_tx2();
    let characterization = quick_characterize_device(&device);
    let mut group = c.benchmark_group("footprint_assignment");
    group.sample_size(10);
    for n in 4..=8usize {
        let tenants = tenant_pool(n);
        let open = joint_assignment(&device, &characterization, &tenants)
            .expect("uncapped assignment succeeds");
        let cap = ByteSize(open.footprint.as_u64() - 1);
        let capped = joint_assignment_capped(&device, &characterization, &tenants, Some(cap))
            .expect("capped assignment succeeds");
        println!(
            "footprint n={n}: open {} ({:?}), cap {} -> {} ({:?})",
            icomm_footprint::human_bytes(open.footprint.as_u64()),
            open.models(),
            icomm_footprint::human_bytes(cap.as_u64()),
            icomm_footprint::human_bytes(capped.footprint.as_u64()),
            capped.models(),
        );
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(&format!("uncapped_{n}"), |b| {
            b.iter(|| {
                joint_assignment(&device, &characterization, &tenants)
                    .expect("uncapped assignment succeeds")
            })
        });
        group.bench_function(&format!("capped_{n}"), |b| {
            b.iter(|| {
                joint_assignment_capped(&device, &characterization, &tenants, Some(cap))
                    .expect("capped assignment succeeds")
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
