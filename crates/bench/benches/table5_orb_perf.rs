//! Regenerates Table V: ORB performance under SC and ZC on TX2 and
//! Xavier.

use criterion::{criterion_group, criterion_main, Criterion};
use icomm_apps::OrbApp;
use icomm_bench::experiments;
use icomm_models::{run_model, CommModelKind};
use icomm_soc::DeviceProfile;

fn bench(c: &mut Criterion) {
    match experiments::table5_orb() {
        Ok(report) => println!("{}", report.render()),
        Err(err) => eprintln!("table5 unavailable: {err}"),
    }
    // Keep the timing loop light.
    let app = OrbApp {
        matching_reads: 100_000,
        iterations: 1,
        ..OrbApp::default()
    };
    let workload = app.workload();
    let device = DeviceProfile::jetson_agx_xavier();
    c.bench_function("table5/orb_sc_xavier", |b| {
        b.iter(|| run_model(CommModelKind::StandardCopy, &device, &workload))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
