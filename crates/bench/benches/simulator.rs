//! Microbenchmarks of the simulator substrate itself: how fast the cache
//! model, the GPU path and a full communication-model run execute on the
//! host.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use icomm_soc::cache::{AccessKind, Cache, CacheGeometry};
use icomm_soc::hierarchy::MemSpace;
use icomm_soc::request::MemRequest;
use icomm_soc::units::ByteSize;
use icomm_soc::{DeviceProfile, Soc};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);

    let n: u64 = 100_000;
    group.throughput(Throughput::Elements(n));
    group.bench_function("cache_accesses", |b| {
        let geo = CacheGeometry::new(ByteSize::kib(512), 64, 16);
        b.iter(|| {
            let mut cache = Cache::new(geo);
            for i in 0..n {
                cache.access(i * 64 % (1 << 22), AccessKind::Read);
            }
            cache.stats().hits
        })
    });

    group.throughput(Throughput::Elements(n));
    group.bench_function("gpu_kernel_requests", |b| {
        let device = DeviceProfile::jetson_tx2();
        b.iter(|| {
            let mut soc = Soc::new(device.clone());
            let reqs = (0..n).map(|i| MemRequest::read(i * 64, 64, MemSpace::Cached));
            soc.run_kernel(0, reqs).transactions
        })
    });

    group.throughput(Throughput::Bytes(1 << 20));
    group.bench_function("dma_copy_1mib", |b| {
        let device = DeviceProfile::jetson_agx_xavier();
        let mut soc = Soc::new(device.clone());
        b.iter(|| soc.copy(ByteSize::mib(1)).time)
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
