//! Regenerates Table III: SH-WFS performance under SC/UM/ZC on all
//! three boards.

use criterion::{criterion_group, criterion_main, Criterion};
use icomm_apps::ShwfsApp;
use icomm_bench::experiments;
use icomm_models::{run_model, CommModelKind};
use icomm_soc::DeviceProfile;

fn bench(c: &mut Criterion) {
    match experiments::table3_shwfs() {
        Ok(report) => println!("{}", report.render()),
        Err(err) => eprintln!("table3 unavailable: {err}"),
    }
    let workload = ShwfsApp::default().workload();
    let device = DeviceProfile::jetson_tx2();
    c.bench_function("table3/shwfs_sc_tx2", |b| {
        b.iter(|| run_model(CommModelKind::StandardCopy, &device, &workload))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
