//! Regenerates Fig. 5: MB1 execution times per communication model.

use criterion::{criterion_group, criterion_main, Criterion};
use icomm_bench::experiments;
use icomm_microbench::PeakCacheThroughput;
use icomm_soc::DeviceProfile;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::fig5_and_table1().render());
    let device = DeviceProfile::jetson_agx_xavier();
    c.bench_function("fig5/mb1_xavier", |b| {
        b.iter(|| PeakCacheThroughput::new().run(&device))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
