//! Regenerates Fig. 3: the MB2 threshold sweep on the AGX Xavier, and
//! benchmarks the cost of one sweep point.

use criterion::{criterion_group, criterion_main, Criterion};
use icomm_bench::experiments;
use icomm_microbench::mb2::ThresholdSweep;
use icomm_models::{run_model, CommModelKind};
use icomm_soc::DeviceProfile;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::fig3_xavier().render());
    let device = DeviceProfile::jetson_agx_xavier();
    let sweep = ThresholdSweep::new();
    let workload = sweep.gpu_workload(&device, 64);
    c.bench_function("fig3/sweep_point_sc", |b| {
        b.iter(|| run_model(CommModelKind::StandardCopy, &device, &workload))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
