//! Regenerates Table II: SH-WFS profiling results and framework
//! predictions on all three boards.

use criterion::{criterion_group, criterion_main, Criterion};
use icomm_apps::ShwfsApp;
use icomm_bench::experiments::{self, CharacterizationSet};
use icomm_models::CommModelKind;
use icomm_profile::Profiler;
use icomm_soc::DeviceProfile;

fn bench(c: &mut Criterion) {
    let chars = CharacterizationSet::measure();
    match experiments::table2_shwfs(&chars) {
        Ok(report) => println!("{}", report.render()),
        Err(err) => eprintln!("table2 unavailable: {err}"),
    }
    match experiments::validation_summary(&chars) {
        Ok(report) => println!("{}", report.render()),
        Err(err) => eprintln!("validation summary unavailable: {err}"),
    }
    let workload = ShwfsApp::default().workload();
    let profiler = Profiler::new(DeviceProfile::jetson_agx_xavier());
    c.bench_function("table2/profile_shwfs_xavier", |b| {
        b.iter(|| profiler.profile(&workload, CommModelKind::StandardCopy))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
