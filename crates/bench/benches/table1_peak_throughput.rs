//! Regenerates Table I: maximum GPU cache throughput per model.

use criterion::{criterion_group, criterion_main, Criterion};
use icomm_bench::experiments;
use icomm_microbench::PeakCacheThroughput;
use icomm_soc::DeviceProfile;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::fig5_and_table1().render());
    let device = DeviceProfile::jetson_tx2();
    c.bench_function("table1/mb1_tx2", |b| {
        b.iter(|| PeakCacheThroughput::new().run(&device))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
