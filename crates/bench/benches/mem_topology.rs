//! Memory-topology benchmark: what the NUMA/TLB layer adds to the
//! simulator's hot paths.
//!
//! Three costs matter: building a device profile from its topology
//! (paid once per board), pricing a coherent UPM fill
//! (`MemTopology::upm_fill_extra`, paid on every simulated LLC miss in
//! UPM runs), and the fourth micro-benchmark's full UM-vs-UPM probe
//! (paid once per characterization). The deterministic headline numbers
//! — kernel penalty and UM->UPM bound per page size — are printed
//! alongside and captured into `BENCH_mem.json` by
//! `scripts/bench_snapshot.sh`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use icomm_microbench::UpmProbe;
use icomm_models::{run_model, CommModelKind};
use icomm_soc::{DeviceProfile, MemAgent, PageSize};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("mem");
    group.sample_size(10);

    // Once-per-board: topology construction + page-size remap.
    group.bench_function("build_gh_like_with_huge_pages", |b| {
        b.iter(|| DeviceProfile::gh_like().with_page_size(PageSize::Huge2M))
    });

    // Once-per-LLC-miss: the UPM fill pricing across a footprint sweep
    // that straddles the 4K TLB reach on both agents.
    let gh = DeviceProfile::gh_like();
    let topology = gh.topology.clone();
    let footprints: Vec<u64> = (0..16).map(|i| 1u64 << (16 + i)).collect();
    group.throughput(Throughput::Elements(footprints.len() as u64 * 2));
    group.bench_function("upm_fill_pricing_sweep", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for &fp in &footprints {
                for agent in [MemAgent::Cpu, MemAgent::Gpu] {
                    total += topology.upm_fill_extra(agent, fp).as_picos();
                }
            }
            total
        })
    });
    group.throughput(Throughput::Elements(1));

    // Once-per-characterization: the UM-vs-UPM probe, plus its headline
    // numbers per page size.
    for page in [PageSize::Small4K, PageSize::Huge2M] {
        for make in [
            DeviceProfile::mi300a_like as fn() -> DeviceProfile,
            DeviceProfile::gh_like,
        ] {
            let device = make().with_page_size(page);
            let result = UpmProbe::new().run(&device);
            println!(
                "mem {} @{}: penalty {:.3}x, UM->UPM bound {:.3}",
                make().name,
                page.name(),
                result.kernel_penalty(),
                result.um_upm_max_speedup(),
            );
        }
    }
    let mi300a = DeviceProfile::mi300a_like().with_page_size(PageSize::Huge2M);
    group.bench_function("upm_probe_mi300a_2m", |b| {
        b.iter(|| UpmProbe::new().run(&mi300a))
    });

    // The coherent model itself on the probe workload — the ground-truth
    // run the oracle and validation paths repeat.
    let workload = UpmProbe::new().workload(&mi300a);
    group.bench_function("coherent_upm_run_8mib", |b| {
        b.iter(|| run_model(CommModelKind::CoherentUpm, &mi300a, &workload))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
