//! Regenerates Table IV: ORB profiling results and framework verdicts.

use criterion::{criterion_group, criterion_main, Criterion};
use icomm_apps::OrbApp;
use icomm_bench::experiments::{self, CharacterizationSet};

fn bench(c: &mut Criterion) {
    let chars = CharacterizationSet::measure();
    match experiments::table4_orb(&chars) {
        Ok(report) => println!("{}", report.render()),
        Err(err) => eprintln!("table4 unavailable: {err}"),
    }
    c.bench_function("table4/orb_workload_build", |b| {
        b.iter(|| OrbApp::default().workload())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
