//! Scheduler-scaling benchmark: the joint assignment plus the
//! virtual-time co-run engine across the named tenant mixes on a TX2.
//!
//! The characterization is done once outside the measured loop, so the
//! timings isolate what `icomm sched` adds on top of a warm registry:
//! the 3^N joint enumeration and the discrete-event schedule itself.
//! Deadline-miss rates per mix and policy are printed alongside.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use icomm_apps::MIX_NAMES;
use icomm_microbench::quick_characterize_device;
use icomm_sched::{run_sched_with, PolicyKind, SchedConfig};
use icomm_soc::DeviceProfile;

fn bench(c: &mut Criterion) {
    let device = DeviceProfile::jetson_tx2();
    let characterization = quick_characterize_device(&device);
    for mix in MIX_NAMES {
        let mut group = c.benchmark_group("sched");
        group.sample_size(10);
        for policy in [PolicyKind::Fifo, PolicyKind::DeadlineBudget] {
            let mut config = SchedConfig::new(device.clone());
            config.mix = mix.to_string();
            config.policy = policy;
            let report = run_sched_with(&config, &characterization)
                .expect("named mix schedules")
                .report;
            println!(
                "sched {mix}/{policy}: {} tenants, miss {:.1}%, mean slowdown {:.3}x, makespan {} us",
                report.tenants.len(),
                report.deadline_miss_pct,
                report.mean_slowdown,
                report.makespan_us,
            );
            group.throughput(Throughput::Elements(u64::from(report.total_jobs())));
            let name = format!("{mix}_{policy}");
            group.bench_function(&name, |b| {
                b.iter(|| run_sched_with(&config, &characterization).expect("named mix schedules"))
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
