//! Regenerates Fig. 7: the MB3 overlap probe at the paper's data-set size
//! (2^27 floats = 512 MB).

use criterion::{criterion_group, criterion_main, Criterion};
use icomm_bench::experiments;
use icomm_microbench::mb3::{Mb3Config, OverlapProbe};
use icomm_soc::DeviceProfile;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::fig7(1 << 27).render());
    let device = DeviceProfile::jetson_agx_xavier();
    let probe = OverlapProbe::with_config(Mb3Config {
        array_bytes: 1 << 22,
        ..Mb3Config::default()
    });
    c.bench_function("fig7/mb3_small_probe", |b| b.iter(|| probe.run(&device)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
