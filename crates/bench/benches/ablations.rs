//! Ablation studies: I/O coherence, tiling parameters, pinned-path MLP.

use criterion::{criterion_group, criterion_main, Criterion};
use icomm_bench::ablation;

fn bench(c: &mut Criterion) {
    println!("{}", ablation::ablation_io_coherence().render());
    println!("{}", ablation::ablation_tiling().render());
    println!("{}", ablation::ablation_pinned_mlp().render());
    println!("{}", ablation::ablation_um_chunk().render());
    println!("{}", ablation::ablation_async_copy().render());
    println!("{}", ablation::ablation_power_modes().render());
    c.bench_function("ablation/io_coherence_report", |b| {
        b.iter(ablation::ablation_io_coherence)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
