//! Serving-layer throughput: batches of tuning requests through the
//! concurrent service, cold and warm.
//!
//! The experiment behind the `icomm-serve` design claim: once the
//! device characterizations are cached, a batch of requests costs only
//! the (cheap) profile + recommend flow per request, so throughput is
//! bounded by the worker pool rather than the micro-benchmark sweeps.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use icomm_serve::{ServiceConfig, TuneRequest, TuningService};

const BOARDS: [&str; 6] = [
    "nano",
    "tx2",
    "xavier",
    "orin-like",
    "mi300a-like",
    "gh-like",
];
const APPS: [&str; 3] = ["shwfs", "orb", "lane"];

fn request_batch(n: u64) -> Vec<TuneRequest> {
    (0..n)
        .map(|i| {
            TuneRequest::new(
                i,
                BOARDS[(i % BOARDS.len() as u64) as usize],
                APPS[(i % APPS.len() as u64) as usize],
            )
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    // One shared warm service: the first batch fills the registry, the
    // measured iterations then exercise the steady-state path.
    let service = TuningService::start(ServiceConfig::quick().with_workers(4));
    service.submit_batch(request_batch(8)).wait();

    let batch = 96u64;
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.throughput(Throughput::Elements(batch));
    group.bench_function("warm_batch_96_requests_4_workers", |b| {
        b.iter(|| {
            let responses = service.submit_batch(request_batch(batch)).wait();
            assert!(responses.iter().all(|r| r.ok));
            responses
        })
    });
    group.bench_function("warm_single_request", |b| {
        b.iter(|| service.handle(TuneRequest::new(0, "xavier", "shwfs")))
    });
    group.finish();

    let snapshot = service.metrics();
    println!(
        "steady state: {:.2}% hit rate over {} requests ({} characterization runs)",
        snapshot.hit_rate() * 100.0,
        snapshot.requests,
        snapshot.characterizations,
    );

    // Cold start measured separately: every iteration pays the four
    // characterization sweeps.
    c.bench_function("serve/cold_start_batch_16_requests", |b| {
        b.iter(|| {
            let cold = TuningService::start(ServiceConfig::quick().with_workers(4));
            let responses = cold.submit_batch(request_batch(16)).wait();
            assert!(responses.iter().all(|r| r.ok));
            cold.shutdown().unwrap();
        })
    });

    service.shutdown().unwrap();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
