//! Serving-layer throughput: batches of tuning requests through the
//! concurrent service, cold and warm.
//!
//! The experiment behind the `icomm-serve` design claim: once the
//! device characterizations are cached, a batch of requests costs only
//! the (cheap) profile + recommend flow per request, so throughput is
//! bounded by the worker pool rather than the micro-benchmark sweeps.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use icomm_net::{warmup, BinaryClient, BinaryServer, WireMode};
use icomm_serve::{Server, ServiceConfig, TuneRequest, TuneResponse, TuningService};

const BOARDS: [&str; 6] = [
    "nano",
    "tx2",
    "xavier",
    "orin-like",
    "mi300a-like",
    "gh-like",
];
const APPS: [&str; 3] = ["shwfs", "orb", "lane"];

fn request_batch(n: u64) -> Vec<TuneRequest> {
    (0..n)
        .map(|i| {
            TuneRequest::new(
                i,
                BOARDS[(i % BOARDS.len() as u64) as usize],
                APPS[(i % APPS.len() as u64) as usize],
            )
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    // One shared warm service: the first batch fills the registry, the
    // measured iterations then exercise the steady-state path.
    let service = TuningService::start(ServiceConfig::quick().with_workers(4));
    service.submit_batch(request_batch(8)).wait();

    let batch = 96u64;
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.throughput(Throughput::Elements(batch));
    group.bench_function("warm_batch_96_requests_4_workers", |b| {
        b.iter(|| {
            let responses = service.submit_batch(request_batch(batch)).wait();
            assert!(responses.iter().all(|r| r.ok));
            responses
        })
    });
    group.bench_function("warm_single_request", |b| {
        b.iter(|| service.handle(TuneRequest::new(0, "xavier", "shwfs")))
    });
    group.finish();

    let snapshot = service.metrics();
    println!(
        "steady state: {:.2}% hit rate over {} requests ({} characterization runs)",
        snapshot.hit_rate() * 100.0,
        snapshot.requests,
        snapshot.characterizations,
    );

    // Cold start measured separately: every iteration pays the four
    // characterization sweeps.
    c.bench_function("serve/cold_start_batch_16_requests", |b| {
        b.iter(|| {
            let cold = TuningService::start(ServiceConfig::quick().with_workers(4));
            let responses = cold.submit_batch(request_batch(16)).wait();
            assert!(responses.iter().all(|r| r.ok));
            cold.shutdown().unwrap();
        })
    });

    service.shutdown().unwrap();

    bench_tcp_planes(c);
}

/// One warm round trip over real TCP on each serving plane: the
/// thread-per-connection line-JSON listener versus the event-driven
/// `icommwire v1` binary listener (whose shards answer repeat decisions
/// from the shard-local cache without an engine hop).
fn bench_tcp_planes(c: &mut Criterion) {
    let service = Arc::new(TuningService::start(ServiceConfig::quick().with_workers(4)));
    let json_server = Server::start(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let binary_server = BinaryServer::start(Arc::clone(&service), "127.0.0.1:0").unwrap();
    warmup(json_server.local_addr(), WireMode::Json).unwrap();
    warmup(binary_server.local_addr(), WireMode::Binary).unwrap();

    let mut group = c.benchmark_group("serve_tcp");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1));

    let stream = TcpStream::connect(json_server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    group.bench_function("json_roundtrip_warm", |b| {
        b.iter(|| {
            let request = TuneRequest::new(1, "xavier", "shwfs");
            let line = icomm_persist::to_string(&request).unwrap();
            writer.write_all(line.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            let response: TuneResponse = icomm_persist::from_str(reply.trim()).unwrap();
            assert!(response.ok);
        })
    });

    let mut client = BinaryClient::connect(binary_server.local_addr()).unwrap();
    group.bench_function("binary_roundtrip_warm", |b| {
        b.iter(|| {
            let response = client
                .tune(&TuneRequest::new(1, "xavier", "shwfs"))
                .unwrap();
            assert!(response.ok);
        })
    });

    let batch = 16u64;
    group.throughput(Throughput::Elements(batch));
    group.bench_function("binary_batch_16_roundtrip_warm", |b| {
        b.iter(|| {
            let requests: Vec<TuneRequest> = (0..batch)
                .map(|i| TuneRequest::new(i, "xavier", "shwfs"))
                .collect();
            let responses = client.tune_batch(&requests).unwrap();
            assert!(responses.iter().all(|r| r.ok));
        })
    });
    group.finish();

    drop(reader);
    drop(writer);
    drop(client);
    json_server.stop();
    binary_server.stop();
    Arc::try_unwrap(service).unwrap().shutdown().unwrap();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
