//! Adaptation regret: how close the online controller gets to the
//! clairvoyant per-phase oracle, and what the adaptation layer itself
//! costs per window.
//!
//! Two measurements per app/board pair:
//!
//! - `evaluate`: the full comparison (adaptive + three statics +
//!   oracle) — the number the `icomm adapt` subcommand reports.
//! - `controller_overhead`: just the adaptive run, i.e. the detector +
//!   controller bookkeeping on top of the simulated windows.
//!
//! After the timed runs it prints the regret table so the benchmark
//! doubles as the results generator for docs/RESULTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use icomm_adapt::{evaluate, ControllerConfig};
use icomm_apps::{LaneApp, OrbApp, ShwfsApp};
use icomm_microbench::quick_characterize_device;
use icomm_models::PhasedWorkload;
use icomm_soc::DeviceProfile;

const WINDOWS_PER_PHASE: u32 = 12;

fn phased_apps() -> Vec<PhasedWorkload> {
    vec![
        ShwfsApp::default().phased_workload(WINDOWS_PER_PHASE),
        OrbApp::default().phased_workload(WINDOWS_PER_PHASE),
        LaneApp::default().phased_workload(WINDOWS_PER_PHASE),
    ]
}

fn config_for(phased: &PhasedWorkload) -> ControllerConfig {
    ControllerConfig {
        payload_hint: phased.phases[0].workload.bytes_exchanged(),
        ..ControllerConfig::default()
    }
}

fn bench(c: &mut Criterion) {
    let device = DeviceProfile::jetson_agx_xavier();
    let characterization = quick_characterize_device(&device);
    let apps = phased_apps();

    let mut group = c.benchmark_group("adapt");
    group.sample_size(10);
    for phased in &apps {
        group.bench_function(&format!("evaluate/{}", phased.name), |b| {
            b.iter(|| evaluate(&device, &characterization, phased, config_for(phased)))
        });
        group.bench_function(&format!("controller_overhead/{}", phased.name), |b| {
            b.iter(|| {
                let mut controller = icomm_adapt::AdaptController::new(
                    device.clone(),
                    characterization.clone(),
                    config_for(phased),
                );
                icomm_models::run_phased(&device, phased, &mut controller)
            })
        });
    }
    group.finish();

    println!("\nregret vs per-phase oracle ({WINDOWS_PER_PHASE} windows/phase, Xavier):");
    println!(
        "  {:<24} {:>10} {:>12} {:>9} {:>13}",
        "workload", "regret", "best static", "switches", "mean latency"
    );
    for phased in &apps {
        let report = evaluate(&device, &characterization, phased, config_for(phased));
        let best = report.best_static();
        println!(
            "  {:<24} {:>9.2}% {:>11.2}% {:>9} {:>11} w",
            report.workload,
            report.regret_pct,
            (best.total_time.as_picos() as f64 / report.oracle.total_time.as_picos() as f64 - 1.0)
                * 100.0,
            report.stats.switches,
            report
                .mean_detection_latency()
                .map(|l| format!("{l:.1}"))
                .unwrap_or_else(|| "n/a".into()),
        );
        // The SH-WFS and lane phases flip the optimal model, so adapting
        // must beat any fixed choice. ORB is CPU-bound and nearly
        // model-indifferent: there the win is *not thrashing*.
        if report.workload.starts_with("orb") {
            assert!(report.stats.switches as usize <= report.boundaries.len());
            assert!(report.regret_pct <= 1.0, "orb regret {}", report.regret_pct);
        } else {
            assert!(
                report.beats_best_static(),
                "{}: adaptive should beat every static model",
                report.workload
            );
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
