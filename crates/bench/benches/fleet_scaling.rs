//! Fleet-scaling benchmark: the deterministic virtual-time simulation
//! at two population sizes (live-fire disabled — this measures the
//! registry + transfer + admission pipeline, not socket wall time).
//!
//! The interesting output is printed alongside the timings: warm-start
//! rate and transfer hit rate at each scale, which is the number the
//! federated-transfer design exists to move.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use icomm_fleet::{run_fleet, FleetConfig};

fn config(devices: usize) -> FleetConfig {
    FleetConfig {
        devices,
        livefire: false,
        regret_samples: 4,
        ..FleetConfig::default()
    }
}

fn bench(c: &mut Criterion) {
    for devices in [64usize, 256] {
        let report = run_fleet(&config(devices))
            .expect("default fleet config is valid")
            .report;
        println!(
            "fleet {devices} devices: warm start {:.1}%, transfer hit {:.1}%, p99 {} us, {:.0} req/s",
            report.warm_start_pct,
            report.transfer_hit_pct,
            report.latency_p99_us,
            report.throughput_rps,
        );
        let mut group = c.benchmark_group("fleet");
        group.sample_size(10);
        group.throughput(Throughput::Elements(devices as u64));
        let name = format!("simulate_{devices}_devices");
        group.bench_function(&name, |b| {
            b.iter(|| run_fleet(&config(devices)).expect("default fleet config is valid"))
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
