//! Regenerates Fig. 6: the MB2 threshold sweep on the TX2.

use criterion::{criterion_group, criterion_main, Criterion};
use icomm_bench::experiments;
use icomm_microbench::mb2::ThresholdSweep;
use icomm_models::{run_model, CommModelKind};
use icomm_soc::DeviceProfile;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::fig6_tx2().render());
    let device = DeviceProfile::jetson_tx2();
    let sweep = ThresholdSweep::new();
    let workload = sweep.gpu_workload(&device, 64);
    c.bench_function("fig6/sweep_point_zc", |b| {
        b.iter(|| run_model(CommModelKind::ZeroCopy, &device, &workload))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
