//! Rule-synthesis benchmark: what distilling the oracle sweep costs,
//! and what serving decisions from the rules saves.
//!
//! Setup sweeps a TX2 through the full default context set once — that
//! is the expensive brute-force oracle labeling. The benchmarks then
//! measure (a) the synthesis core (bottom-up enumeration plus greedy
//! cover) over the prepared table and (b) answering a quad-mix decision
//! from the synthesized rules versus re-running the `M^N` oracle sweep
//! the rules replace. The learned rule count and validation counters
//! are printed alongside so baseline diffs show behavior changes, not
//! just timing drift.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use icomm_core::oracle_assignment;
use icomm_synth::{
    context_tenants, enumerate_classes, select_cover, stock_board, synthesize, RuleDecider,
    SynthConfig,
};

fn bench(c: &mut Criterion) {
    let config = SynthConfig {
        boards: vec!["tx2".to_string()],
        ..SynthConfig::default()
    };
    let out = synthesize(&config).expect("tx2 synthesis runs");
    let features: Vec<Vec<f64>> = out
        .table
        .samples
        .iter()
        .map(|s| s.features.clone())
        .collect();
    let labels: Vec<_> = out.table.samples.iter().map(|s| s.label).collect();
    let boards: Vec<String> = out.table.samples.iter().map(|s| s.board.clone()).collect();
    println!(
        "rule_synthesis: {} samples -> {} rules, {} uncovered, {} disagreements",
        out.ruleset.samples,
        out.ruleset.rules.len(),
        out.ruleset.uncovered,
        out.ruleset.disagreements,
    );

    let mut group = c.benchmark_group("rule_synthesis");
    group.sample_size(10);
    group.throughput(Throughput::Elements(features.len() as u64));
    group.bench_function("enumerate_and_cover_tx2", |b| {
        b.iter(|| {
            let enumeration = enumerate_classes(&features, config.max_size, config.seed);
            select_cover(&enumeration, &labels, &boards)
        })
    });

    let decider = RuleDecider::new(out.ruleset.clone());
    let device = stock_board("tx2").expect("tx2 resolves");
    let tenants = context_tenants("quad").expect("quad mix resolves");
    group.throughput(Throughput::Elements(tenants.len() as u64));
    group.bench_function("decide_quad_from_rules", |b| {
        b.iter(|| {
            decider
                .decide("tx2", "quad", None)
                .expect("in-scope decision succeeds")
        })
    });
    group.bench_function("decide_quad_from_oracle_sweep", |b| {
        b.iter(|| oracle_assignment(&device, &tenants).expect("oracle succeeds"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
