use icomm_bench::ablation;
use icomm_bench::experiments::{self, CharacterizationSet};

fn main() -> Result<(), String> {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    println!("{}", experiments::fig5_and_table1().render());
    println!("{}", experiments::fig3_xavier().render());
    println!("{}", experiments::fig6_tx2().render());
    let fig7_bytes = if quick { 1 << 24 } else { 1 << 27 };
    println!("{}", experiments::fig7(fig7_bytes).render());
    let chars = CharacterizationSet::measure();
    println!("{}", experiments::table2_shwfs(&chars)?.render());
    println!("{}", experiments::table3_shwfs()?.render());
    println!("{}", experiments::table4_orb(&chars)?.render());
    println!("{}", experiments::table5_orb()?.render());
    println!("{}", experiments::validation_summary(&chars)?.render());
    println!("{}", ablation::ablation_io_coherence().render());
    println!("{}", ablation::ablation_tiling().render());
    println!("{}", ablation::ablation_pinned_mlp().render());
    println!("{}", ablation::ablation_um_chunk().render());
    println!("{}", ablation::ablation_async_copy().render());
    println!("{}", ablation::ablation_power_modes().render());
    println!("{}", experiments::crossover_sweep().render());
    println!("{}", experiments::realtime_orb().render());
    Ok(())
}
