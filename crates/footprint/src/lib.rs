//! # icomm-footprint — memory-footprint models and per-board budgets
//!
//! The decision framework in `icomm-core` picks communication models by
//! latency; on embedded boards the binding resource is often *memory*.
//! SC keeps a host+device double buffer, UM duplicates pages while
//! migration is in flight, ZC pins host memory for the lifetime of the
//! application, and coherent UPM's residency follows the placement
//! policy. This crate prices all of that in closed form so every
//! tuning and admission decision can solve perf-under-a-memory-cap:
//!
//! - [`FootprintModel`] — peak resident bytes per [`CommModelKind`],
//!   with a [`FootprintBreakdown`] splitting resident / transient /
//!   pinned and home- / remote-node shares.
//! - [`MemBudget`] — per-board capacity, stock presets derived from the
//!   device's NUMA-node sizes and overridable from the CLI.
//! - [`BudgetLedger`] — charge/release bookkeeping with peak tracking
//!   and headroom, refusing over-budget charges atomically.
//!
//! `icomm-core` consumes these to prune infeasible models and cap
//! combined footprints in `joint_assignment`, `icomm-sched` to demote
//! or evict over-budget tenants at admission, and `icomm-fleet` to
//! account budgets per device.
//!
//! # Example
//!
//! ```
//! use icomm_footprint::{model_footprint, MemBudget};
//! use icomm_models::workload::{GpuPhase, Workload};
//! use icomm_models::CommModelKind;
//! use icomm_soc::cache::AccessKind;
//! use icomm_soc::units::ByteSize;
//! use icomm_soc::DeviceProfile;
//! use icomm_trace::Pattern;
//!
//! let device = DeviceProfile::jetson_tx2();
//! let frame = Workload::builder("frame")
//!     .bytes_to_gpu(ByteSize::mib(2))
//!     .gpu(GpuPhase {
//!         compute_work: 1 << 16,
//!         shared_accesses: Pattern::Linear {
//!             start: 0,
//!             bytes: 2 << 20,
//!             txn_bytes: 64,
//!             kind: AccessKind::Read,
//!         },
//!         private_accesses: None,
//!     })
//!     .build();
//!
//! let sc = model_footprint(CommModelKind::StandardCopy, &frame, &device);
//! let zc = model_footprint(CommModelKind::ZeroCopy, &frame, &device);
//! assert!(zc < sc, "zero-copy never allocates the device copy");
//!
//! let mut ledger = MemBudget::for_device(&device).ledger();
//! ledger.charge("frame", sc)?;
//! assert!(ledger.headroom() < ledger.capacity());
//! # Ok::<(), icomm_footprint::FootprintError>(())
//! ```

#![warn(missing_docs)]

pub mod budget;
pub mod model;

pub use budget::{BudgetLedger, FootprintError, MemBudget};
pub use model::{
    model_footprint, round_to_pages, shared_bytes, FootprintBreakdown, FootprintModel,
};

use icomm_mem::units::ByteSize;
use icomm_models::CommModelKind;

/// Parses a human byte-size cap: a bare integer is bytes, and a `k`,
/// `m`, or `g` suffix (optionally `kb`/`kib` etc., case-insensitive)
/// scales by binary units — `16m` is 16 MiB.
///
/// # Errors
///
/// Returns a descriptive message for empty input, unknown suffixes, or
/// sizes that overflow `u64`.
pub fn parse_cap(input: &str) -> Result<ByteSize, String> {
    let trimmed = input.trim().to_ascii_lowercase();
    let digits_end = trimmed
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(trimmed.len());
    let (digits, suffix) = trimmed.split_at(digits_end);
    let value: u64 = digits
        .parse()
        .map_err(|_| format!("invalid memory cap '{input}': expected digits then k/m/g"))?;
    let shift = match suffix {
        "" | "b" => 0,
        "k" | "kb" | "kib" => 10,
        "m" | "mb" | "mib" => 20,
        "g" | "gb" | "gib" => 30,
        other => {
            return Err(format!(
                "invalid memory cap '{input}': unknown suffix '{other}' (use k, m or g)"
            ))
        }
    };
    value
        .checked_mul(1u64 << shift)
        .map(ByteSize)
        .ok_or_else(|| format!("memory cap '{input}' overflows"))
}

/// Formats a byte count the way the CLI prints footprints: two decimals
/// in the largest binary unit that keeps the number ≥ 1.
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [(&str, u64); 4] = [
        ("GiB", 1 << 30),
        ("MiB", 1 << 20),
        ("KiB", 1 << 10),
        ("B", 1),
    ];
    for (name, scale) in UNITS {
        if bytes >= scale {
            return format!("{:.2} {name}", bytes as f64 / scale as f64);
        }
    }
    "0 B".to_string()
}

/// The cheapest-footprint model among `models` for `app` on `device`,
/// with its footprint — the demotion target admission control reaches
/// for when a mix does not fit its budget.
pub fn cheapest_model(
    models: &[CommModelKind],
    app: &icomm_models::Workload,
    device: &icomm_soc::DeviceProfile,
) -> Option<(CommModelKind, ByteSize)> {
    models
        .iter()
        .map(|&kind| (kind, model_footprint(kind, app, device)))
        .min_by_key(|&(_, bytes)| bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_parse_in_binary_units() {
        assert_eq!(parse_cap("4096"), Ok(ByteSize(4096)));
        assert_eq!(parse_cap("64k"), Ok(ByteSize::kib(64)));
        assert_eq!(parse_cap("16M"), Ok(ByteSize::mib(16)));
        assert_eq!(parse_cap("2GiB"), Ok(ByteSize::gib(2)));
        assert_eq!(parse_cap(" 8m "), Ok(ByteSize::mib(8)));
    }

    #[test]
    fn bad_caps_are_described() {
        assert!(parse_cap("").unwrap_err().contains("expected digits"));
        assert!(parse_cap("12q").unwrap_err().contains("unknown suffix"));
        assert!(parse_cap("m").unwrap_err().contains("expected digits"));
        assert!(parse_cap("99999999999999999999g").is_err());
    }

    #[test]
    fn human_bytes_picks_the_unit() {
        assert_eq!(human_bytes(0), "0 B");
        assert_eq!(human_bytes(512), "512.00 B");
        assert_eq!(human_bytes(1 << 20), "1.00 MiB");
        assert_eq!(human_bytes(3 << 29), "1.50 GiB");
    }

    #[test]
    fn cheapest_model_is_zero_copy_on_jetsons() {
        use icomm_models::workload::GpuPhase;
        use icomm_soc::cache::AccessKind;
        use icomm_trace::Pattern;
        let device = icomm_soc::DeviceProfile::jetson_tx2();
        let w = icomm_models::Workload::builder("w")
            .bytes_to_gpu(ByteSize::mib(1))
            .gpu(GpuPhase {
                compute_work: 1 << 12,
                shared_accesses: Pattern::Linear {
                    start: 0,
                    bytes: 1 << 20,
                    txn_bytes: 64,
                    kind: AccessKind::Read,
                },
                private_accesses: None,
            })
            .build();
        let (kind, bytes) =
            cheapest_model(&icomm_models::candidate_models(&device), &w, &device).unwrap();
        assert_eq!(kind, CommModelKind::ZeroCopy);
        assert_eq!(bytes, ByteSize::mib(1));
    }
}
