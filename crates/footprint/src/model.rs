//! Closed-form memory-footprint models, one per [`CommModelKind`].
//!
//! A communication model's *latency* is what `icomm-models` simulates;
//! its *footprint* is what this module prices: how many DRAM bytes the
//! model keeps resident while the application runs. The five schemes
//! differ structurally, not just by a constant:
//!
//! - **SC** keeps the shared buffer twice — a host staging copy and the
//!   device-partition copy the kernel reads — so it pays a full double
//!   buffer.
//! - **SC+** (double-buffered async copy) adds a pinned staging ring of
//!   one copy-engine chunk on top of SC so transfers overlap compute.
//! - **UM** holds one resident managed allocation, but migration is not
//!   free in space: pages in flight exist on both sides until the driver
//!   reclaims the stale copy, and the migration engine stages one chunk
//!   (page-rounded) of in-flight data. At peak that is a second full
//!   copy plus the chunk — UM is the *largest* footprint, the classic
//!   capacity/convenience trade.
//! - **ZC** pins one host allocation forever and maps it into the GPU;
//!   no device copy ever exists, so it is the smallest footprint (the
//!   price is paid in latency, not bytes).
//! - **UPM** (hardware-coherent system allocation) also keeps a single
//!   copy, but *where* it lives depends on the topology's placement
//!   policy — the breakdown splits the residency into home-node and
//!   remote-node shares using the same
//!   [`remote_fraction`](MemTopology::remote_fraction) the latency model
//!   uses.
//!
//! All terms are rounded up to the page size, so footprints are
//! monotone non-decreasing in both payload size and page size — the
//! property tests in `tests/properties.rs` pin this down.

use serde::{Deserialize, Serialize};

use icomm_mem::{MemAgent, MemTopology, PageSize};
use icomm_models::{CommModelKind, Workload};
use icomm_soc::units::ByteSize;
use icomm_soc::DeviceProfile;

/// Rounds `bytes` up to a whole number of pages.
pub fn round_to_pages(bytes: u64, pages: PageSize) -> u64 {
    let page = pages.bytes();
    bytes.div_ceil(page) * page
}

/// The shared working set a workload keeps live: the communicated
/// payload or the larger of the CPU/GPU access footprints over the
/// shared buffer, whichever is biggest (a kernel that walks more of the
/// buffer than one transfer moves still has to keep it allocated).
pub fn shared_bytes(workload: &Workload) -> u64 {
    workload
        .bytes_exchanged()
        .as_u64()
        .max(workload.cpu.shared_accesses.footprint_bytes())
        .max(workload.gpu.shared_accesses.footprint_bytes())
}

/// Where a model's resident bytes sit, split by mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FootprintBreakdown {
    /// The model being priced.
    pub kind: CommModelKind,
    /// Steady-state resident bytes (buffers that exist for the whole
    /// run).
    pub resident: ByteSize,
    /// Peak transient bytes (migration duplication, staging rings) that
    /// exist only while transfers are in flight but must still fit.
    pub transient: ByteSize,
    /// Bytes pinned (unswappable) for the lifetime of the application.
    pub pinned: ByteSize,
    /// Share of the residency charged to the topology's home node.
    pub home: ByteSize,
    /// Share of the residency placed on remote nodes (placement-policy
    /// dependent; zero on flat single-node boards).
    pub remote: ByteSize,
}

impl FootprintBreakdown {
    /// Total bytes the budget must cover: resident plus peak transient.
    pub fn total(&self) -> ByteSize {
        self.resident + self.transient
    }
}

/// The closed-form footprint model for one communication scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FootprintModel {
    /// The communication model being priced.
    pub kind: CommModelKind,
}

impl FootprintModel {
    /// Footprint model for `kind`.
    pub fn new(kind: CommModelKind) -> Self {
        FootprintModel { kind }
    }

    /// Peak DRAM bytes `app` keeps resident on `device` under this
    /// model, with allocations rounded to `pages`.
    pub fn bytes(&self, app: &Workload, device: &DeviceProfile, pages: PageSize) -> ByteSize {
        self.breakdown(app, device, pages).total()
    }

    /// The full residency breakdown behind [`FootprintModel::bytes`].
    pub fn breakdown(
        &self,
        app: &Workload,
        device: &DeviceProfile,
        pages: PageSize,
    ) -> FootprintBreakdown {
        let base = round_to_pages(shared_bytes(app), pages);
        // Copy engines and the UM migration engine stage one chunk of
        // in-flight data; a chunk can never be larger than the buffer
        // itself, and on huge pages it can never be smaller than one
        // page.
        let chunk = |floor_page: bool| -> u64 {
            let raw = if floor_page {
                device.um.migration_chunk_bytes.max(pages.bytes())
            } else {
                device.um.migration_chunk_bytes
            };
            round_to_pages(raw.min(shared_bytes(app).max(1)), pages).min(base)
        };
        let (resident, transient, pinned) = match self.kind {
            // Host staging buffer + device partition copy.
            CommModelKind::StandardCopy => (2 * base, 0, 0),
            // SC plus a pinned staging ring of one copy chunk so the
            // next transfer overlaps the current kernel.
            CommModelKind::StandardCopyAsync => {
                let ring = chunk(false);
                (2 * base + ring, 0, ring)
            }
            // One managed allocation resident, a second full copy at
            // peak while migrated pages await reclaim, plus the staged
            // in-flight chunk (page-granular, so huge pages migrate in
            // bigger units).
            CommModelKind::UnifiedMemory => (base, base + chunk(true), 0),
            // One pinned host allocation, mapped — never copied.
            CommModelKind::ZeroCopy => (base, 0, base),
            // One hardware-coherent system allocation; placement decides
            // the node split below, not the total.
            CommModelKind::CoherentUpm => (base, 0, 0),
        };
        let (home, remote) = placement_split(&device.topology, self.kind, resident);
        FootprintBreakdown {
            kind: self.kind,
            resident: ByteSize(resident),
            transient: ByteSize(transient),
            pinned: ByteSize(pinned),
            home: ByteSize(home),
            remote: ByteSize(remote),
        }
    }
}

/// Splits `resident` bytes into home-node and remote shares. Only UPM
/// residency follows the placement policy (its single allocation lands
/// wherever the policy homes it); every other model allocates
/// explicitly, so its bytes stay on the home node.
fn placement_split(topology: &MemTopology, kind: CommModelKind, resident: u64) -> (u64, u64) {
    if kind != CommModelKind::CoherentUpm {
        return (resident, 0);
    }
    let remote_fraction = topology.remote_fraction(MemAgent::Gpu).clamp(0.0, 1.0);
    let remote = ((resident as f64) * remote_fraction).round() as u64;
    (resident - remote.min(resident), remote.min(resident))
}

/// Convenience: peak footprint of `kind` for `app` on `device` at the
/// device topology's configured page size.
pub fn model_footprint(kind: CommModelKind, app: &Workload, device: &DeviceProfile) -> ByteSize {
    FootprintModel::new(kind).bytes(app, device, device.topology.page_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icomm_models::workload::GpuPhase;
    use icomm_soc::cache::AccessKind;
    use icomm_trace::Pattern;

    fn streaming(bytes: u64) -> Workload {
        Workload::builder("stream")
            .bytes_to_gpu(ByteSize(bytes))
            .gpu(GpuPhase {
                compute_work: 1 << 14,
                shared_accesses: Pattern::Linear {
                    start: 0,
                    bytes,
                    txn_bytes: 64,
                    kind: AccessKind::Read,
                },
                private_accesses: None,
            })
            .build()
    }

    #[test]
    fn the_physics_ordering_holds() {
        let device = DeviceProfile::jetson_tx2();
        let w = streaming(1 << 20);
        let fp = |kind| model_footprint(kind, &w, &device).as_u64();
        let zc = fp(CommModelKind::ZeroCopy);
        let sc = fp(CommModelKind::StandardCopy);
        let sca = fp(CommModelKind::StandardCopyAsync);
        let um = fp(CommModelKind::UnifiedMemory);
        assert!(zc < sc, "ZC {zc} must undercut SC {sc}: no device copy");
        assert!(sc < sca, "SC+ {sca} adds a staging ring over SC {sc}");
        assert!(sca <= um, "UM {um} peaks above SC+ {sca}: reclaim lag");
        assert_eq!(zc, sc / 2, "SC is exactly a double buffer");
    }

    #[test]
    fn zero_copy_pins_everything_and_upm_pins_nothing() {
        let device = DeviceProfile::jetson_agx_xavier();
        let w = streaming(1 << 20);
        let zc =
            FootprintModel::new(CommModelKind::ZeroCopy).breakdown(&w, &device, PageSize::Small4K);
        assert_eq!(zc.pinned, zc.resident);
        let upm = FootprintModel::new(CommModelKind::CoherentUpm).breakdown(
            &w,
            &device,
            PageSize::Small4K,
        );
        assert_eq!(upm.pinned, ByteSize(0));
        assert_eq!(upm.total(), zc.total(), "both keep a single copy");
    }

    #[test]
    fn page_rounding_charges_the_slack() {
        let device = DeviceProfile::jetson_nano();
        let w = streaming((1 << 20) + 1); // one byte past a 2M page
        let small = FootprintModel::new(CommModelKind::ZeroCopy)
            .bytes(&w, &device, PageSize::Small4K)
            .as_u64();
        let huge = FootprintModel::new(CommModelKind::ZeroCopy)
            .bytes(&w, &device, PageSize::Huge2M)
            .as_u64();
        assert_eq!(small, (1 << 20) + 4096);
        assert_eq!(huge, 2 << 20);
        assert!(huge > small);
    }

    #[test]
    fn upm_residency_follows_placement() {
        let gh = DeviceProfile::gh_like();
        let w = streaming(1 << 20);
        let upm = FootprintModel::new(CommModelKind::CoherentUpm).breakdown(
            &w,
            &gh,
            gh.topology.page_size,
        );
        // First-touch on Grace-Hopper homes the allocation on the CPU
        // DDR node: every byte is remote to the GPU.
        assert_eq!(upm.remote, upm.resident);
        let flat = DeviceProfile::jetson_tx2();
        let upm_flat = FootprintModel::new(CommModelKind::CoherentUpm).breakdown(
            &w,
            &flat,
            flat.topology.page_size,
        );
        assert_eq!(upm_flat.remote, ByteSize(0));
        assert_eq!(upm_flat.home, upm_flat.resident);
    }

    #[test]
    fn empty_payload_costs_nothing() {
        let device = DeviceProfile::jetson_tx2();
        let w = streaming(0);
        for &kind in CommModelKind::EXTENDED.iter() {
            assert_eq!(model_footprint(kind, &w, &device), ByteSize(0), "{kind}");
        }
    }
}
