//! Per-board memory budgets and the charge/release ledger.
//!
//! A [`MemBudget`] is the capacity side of the perf-under-a-cap
//! problem: stock presets derive it from the device's memory topology
//! (the sum of its NUMA node capacities — one flat LPDDR node on the
//! Jetsons, HBM stacks or DDR+HBM pairs on the coherent parts), and the
//! CLI can override it with an explicit `--mem-cap`. A [`BudgetLedger`]
//! then does the admission bookkeeping: tenants charge their footprint
//! on admit, release it on exit, and the ledger tracks in-use bytes,
//! the high-water mark, and the remaining headroom. Charges that would
//! overflow the budget are rejected atomically — the ledger never goes
//! over capacity and, being unsigned with per-tenant records, never
//! goes negative.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use icomm_soc::units::ByteSize;
use icomm_soc::DeviceProfile;

/// Why a budget operation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FootprintError {
    /// A charge would push the ledger past its capacity.
    OverBudget {
        /// Tenant whose charge was refused.
        tenant: String,
        /// Bytes the tenant asked for.
        requested: ByteSize,
        /// Bytes already charged when the request arrived.
        in_use: ByteSize,
        /// The ledger's capacity.
        capacity: ByteSize,
    },
}

impl fmt::Display for FootprintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FootprintError::OverBudget {
                tenant,
                requested,
                in_use,
                capacity,
            } => write!(
                f,
                "tenant '{tenant}' requested {requested} with {in_use} of {capacity} in use"
            ),
        }
    }
}

impl std::error::Error for FootprintError {}

/// The memory capacity one board offers its tenants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemBudget {
    /// Total bytes the budget covers.
    pub capacity: ByteSize,
}

impl MemBudget {
    /// Stock preset: the board's full DRAM capacity, summed over its
    /// NUMA nodes (8 GiB flat LPDDR on the Jetson presets, 128 GiB HBM
    /// on MI300A-class, 480 GiB DDR + 96 GiB HBM on Grace-Hopper-class).
    pub fn for_device(device: &DeviceProfile) -> Self {
        MemBudget {
            capacity: device.topology.total_capacity(),
        }
    }

    /// An explicit override, e.g. from `--mem-cap`.
    pub fn with_cap(capacity: ByteSize) -> Self {
        MemBudget { capacity }
    }

    /// Whether a footprint fits the budget outright.
    pub fn fits(&self, bytes: ByteSize) -> bool {
        bytes <= self.capacity
    }

    /// A fresh ledger over this budget.
    pub fn ledger(&self) -> BudgetLedger {
        BudgetLedger::new(self.capacity)
    }
}

/// Charge/release bookkeeping over one [`MemBudget`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BudgetLedger {
    capacity: u64,
    charges: BTreeMap<String, u64>,
    in_use: u64,
    peak: u64,
}

impl BudgetLedger {
    /// An empty ledger with `capacity` bytes available.
    pub fn new(capacity: ByteSize) -> Self {
        BudgetLedger {
            capacity: capacity.as_u64(),
            charges: BTreeMap::new(),
            in_use: 0,
            peak: 0,
        }
    }

    /// Charges `bytes` to `tenant`, accumulating over prior charges.
    ///
    /// # Errors
    ///
    /// Refuses (without recording anything) when the charge would push
    /// in-use bytes past capacity.
    pub fn charge(&mut self, tenant: &str, bytes: ByteSize) -> Result<(), FootprintError> {
        let requested = bytes.as_u64();
        if self.in_use.saturating_add(requested) > self.capacity {
            return Err(FootprintError::OverBudget {
                tenant: tenant.to_string(),
                requested: bytes,
                in_use: ByteSize(self.in_use),
                capacity: ByteSize(self.capacity),
            });
        }
        *self.charges.entry(tenant.to_string()).or_insert(0) += requested;
        self.in_use += requested;
        self.peak = self.peak.max(self.in_use);
        Ok(())
    }

    /// Releases everything `tenant` has charged; returns the released
    /// bytes (zero for unknown tenants — release is idempotent).
    pub fn release(&mut self, tenant: &str) -> ByteSize {
        let freed = self.charges.remove(tenant).unwrap_or(0);
        self.in_use -= freed;
        ByteSize(freed)
    }

    /// Bytes currently charged to `tenant`.
    pub fn charged(&self, tenant: &str) -> ByteSize {
        ByteSize(self.charges.get(tenant).copied().unwrap_or(0))
    }

    /// Bytes currently charged across all tenants.
    pub fn in_use(&self) -> ByteSize {
        ByteSize(self.in_use)
    }

    /// High-water mark of in-use bytes over the ledger's lifetime.
    pub fn peak(&self) -> ByteSize {
        ByteSize(self.peak)
    }

    /// Bytes still available before the next charge is refused.
    pub fn headroom(&self) -> ByteSize {
        ByteSize(self.capacity - self.in_use)
    }

    /// The ledger's capacity.
    pub fn capacity(&self) -> ByteSize {
        ByteSize(self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_presets_follow_the_topology() {
        let jetson = MemBudget::for_device(&DeviceProfile::jetson_tx2());
        assert_eq!(jetson.capacity, ByteSize::gib(8));
        let apu = MemBudget::for_device(&DeviceProfile::mi300a_like());
        assert_eq!(apu.capacity, ByteSize::gib(128));
        let gh = MemBudget::for_device(&DeviceProfile::gh_like());
        assert_eq!(gh.capacity, ByteSize::gib(480 + 96));
    }

    #[test]
    fn ledger_charges_release_and_track_the_peak() {
        let mut ledger = MemBudget::with_cap(ByteSize::mib(10)).ledger();
        ledger.charge("a", ByteSize::mib(4)).unwrap();
        ledger.charge("b", ByteSize::mib(5)).unwrap();
        assert_eq!(ledger.in_use(), ByteSize::mib(9));
        assert_eq!(ledger.headroom(), ByteSize::mib(1));
        assert_eq!(ledger.release("a"), ByteSize::mib(4));
        assert_eq!(ledger.in_use(), ByteSize::mib(5));
        ledger.charge("c", ByteSize::mib(2)).unwrap();
        assert_eq!(ledger.peak(), ByteSize::mib(9), "peak survives releases");
        assert_eq!(ledger.release("ghost"), ByteSize(0));
    }

    #[test]
    fn over_budget_charges_are_refused_atomically() {
        let mut ledger = MemBudget::with_cap(ByteSize::mib(8)).ledger();
        ledger.charge("a", ByteSize::mib(6)).unwrap();
        let err = ledger.charge("b", ByteSize::mib(3)).unwrap_err();
        assert!(err.to_string().contains("'b'"), "{err}");
        assert_eq!(ledger.in_use(), ByteSize::mib(6), "nothing was recorded");
        assert_eq!(ledger.charged("b"), ByteSize(0));
        ledger.charge("b", ByteSize::mib(2)).unwrap();
        assert_eq!(ledger.headroom(), ByteSize(0));
    }
}
