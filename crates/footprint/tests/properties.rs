//! Property tests pinning down the footprint physics and the budget
//! ledger's accounting invariants.
//!
//! The closed-form models make hard promises the decision layer leans
//! on: footprints are monotone in payload and page size, the
//! single-copy models undercut the double-buffered ones, the ledger
//! can never go negative, and cap-feasibility is antitone in the cap.
//! Randomized payloads and charge/release interleavings probe all of
//! them.

use proptest::prelude::*;

use icomm_footprint::{cheapest_model, model_footprint, round_to_pages, FootprintModel, MemBudget};
use icomm_mem::PageSize;
use icomm_models::workload::GpuPhase;
use icomm_models::{CommModelKind, Workload};
use icomm_soc::cache::AccessKind;
use icomm_soc::units::ByteSize;
use icomm_soc::DeviceProfile;
use icomm_trace::Pattern;

fn streaming(bytes: u64) -> Workload {
    Workload::builder("prop")
        .bytes_to_gpu(ByteSize(bytes))
        .gpu(GpuPhase {
            compute_work: 1 << 12,
            shared_accesses: Pattern::Linear {
                start: 0,
                bytes,
                txn_bytes: 64,
                kind: AccessKind::Read,
            },
            private_accesses: None,
        })
        .build()
}

fn boards() -> Vec<DeviceProfile> {
    vec![
        DeviceProfile::jetson_nano(),
        DeviceProfile::jetson_tx2(),
        DeviceProfile::jetson_agx_xavier(),
        DeviceProfile::gh_like(),
    ]
}

proptest! {
    /// A bigger payload never shrinks any model's footprint.
    #[test]
    fn footprint_is_monotone_in_payload(
        small in 1u64..(1 << 22),
        grow in 0u64..(1 << 22),
    ) {
        let big = small + grow;
        for device in boards() {
            for &kind in CommModelKind::EXTENDED.iter() {
                let lo = model_footprint(kind, &streaming(small), &device);
                let hi = model_footprint(kind, &streaming(big), &device);
                prop_assert!(
                    lo <= hi,
                    "{kind} on {}: payload {small} -> {} but {big} -> {}",
                    device.name, lo, hi
                );
            }
        }
    }

    /// Bigger pages never shrink a footprint — rounding slack only
    /// grows with the page, for every model (the UM/UPM migration and
    /// placement paths included).
    #[test]
    fn footprint_is_monotone_in_page_size(bytes in 1u64..(1 << 23)) {
        let w = streaming(bytes);
        for device in boards() {
            for &kind in CommModelKind::EXTENDED.iter() {
                let model = FootprintModel::new(kind);
                let p4k = model.bytes(&w, &device, PageSize::Small4K);
                let p64k = model.bytes(&w, &device, PageSize::Medium64K);
                let p2m = model.bytes(&w, &device, PageSize::Huge2M);
                prop_assert!(
                    p4k <= p64k && p64k <= p2m,
                    "{kind} on {}: 4K {} / 64K {} / 2M {}",
                    device.name, p4k, p64k, p2m
                );
            }
        }
    }

    /// The physics ordering: a single mapped copy (ZC) never costs more
    /// than a double buffer (SC), which never costs more than managed
    /// memory at migration peak (UM).
    #[test]
    fn zero_copy_undercuts_copy_undercuts_managed(bytes in 0u64..(1 << 23)) {
        let w = streaming(bytes);
        for device in boards() {
            let zc = model_footprint(CommModelKind::ZeroCopy, &w, &device);
            let sc = model_footprint(CommModelKind::StandardCopy, &w, &device);
            let um = model_footprint(CommModelKind::UnifiedMemory, &w, &device);
            prop_assert!(
                zc <= sc && sc <= um,
                "on {}: ZC {} / SC {} / UM {}",
                device.name, zc, sc, um
            );
        }
    }

    /// Whatever interleaving of charges and releases the ledger sees,
    /// `in_use` never exceeds capacity or the sum of live charges, and
    /// the peak/headroom pair stays consistent.
    #[test]
    fn ledger_accounting_never_goes_negative(
        ops in prop::collection::vec((0usize..6, 1u64..(1 << 20)), 1..40),
    ) {
        let budget = MemBudget::with_cap(ByteSize(4 << 20));
        let mut ledger = budget.ledger();
        let names = ["a", "b", "c", "d", "e", "f"];
        for (who, bytes) in ops {
            let name = names[who];
            if bytes % 3 == 0 {
                ledger.release(name);
            } else {
                // Over-budget charges are refused atomically; either way
                // the invariants below must hold.
                let _ = ledger.charge(name, ByteSize(bytes));
            }
            let live: u64 = names
                .iter()
                .map(|n| ledger.charged(n).as_u64())
                .sum();
            prop_assert_eq!(ledger.in_use().as_u64(), live);
            prop_assert!(ledger.in_use() <= ledger.capacity());
            prop_assert!(ledger.peak() >= ledger.in_use());
            prop_assert_eq!(
                ledger.headroom().as_u64(),
                ledger.capacity().as_u64() - ledger.in_use().as_u64()
            );
        }
        for name in names {
            ledger.release(name);
        }
        prop_assert_eq!(ledger.in_use(), ByteSize(0));
    }

    /// Feasibility is antitone in the cap: a mix that fits a tight cap
    /// fits every looser one (checked through the cheapest model, which
    /// is what admission's eviction loop prices).
    #[test]
    fn feasibility_is_antitone_in_the_cap(
        bytes in 1u64..(1 << 22),
        cap in 1u64..(1 << 24),
        slack in 0u64..(1 << 24),
    ) {
        let device = DeviceProfile::jetson_tx2();
        let w = streaming(bytes);
        let models = [
            CommModelKind::StandardCopy,
            CommModelKind::UnifiedMemory,
            CommModelKind::ZeroCopy,
        ];
        let (_, cheapest) = cheapest_model(&models, &w, &device).expect("non-empty model set");
        let tight = MemBudget::with_cap(ByteSize(cap));
        let loose = MemBudget::with_cap(ByteSize(cap + slack));
        if tight.fits(cheapest) {
            prop_assert!(loose.fits(cheapest));
        }
        if !loose.fits(cheapest) {
            prop_assert!(!tight.fits(cheapest));
        }
    }

    /// Page rounding itself is sane: the rounded size is >= the input,
    /// page-aligned, and less than one page larger.
    #[test]
    fn rounding_stays_within_one_page(bytes in 0u64..(1 << 24)) {
        for page in [PageSize::Small4K, PageSize::Medium64K, PageSize::Huge2M] {
            let rounded = round_to_pages(bytes, page);
            prop_assert!(rounded >= bytes);
            prop_assert_eq!(rounded % page.bytes(), 0);
            prop_assert!(rounded < bytes + page.bytes());
        }
    }
}
