//! Property-based tests of the federated-transfer primitives.
//!
//! The fingerprint feature distance must behave like a metric (identity,
//! symmetry, triangle inequality) for nearest-neighbor search over it to
//! be meaningful, and the interpolation must never extrapolate: every
//! transferred threshold stays inside the envelope of the neighbors it
//! was blended from, and confidence falls monotonically with distance.

use proptest::prelude::*;

use icomm_microbench::{
    feature_distance, fingerprint_features, transfer_characterization, DeviceCharacterization,
    NeighborSample, TransferPolicy,
};
use icomm_soc::DeviceProfile;

/// A strategy over plausible power-scaled variants of the built-in
/// boards (clocks within ±20 %, the range fleets actually exhibit).
fn device_strategy() -> impl Strategy<Value = DeviceProfile> {
    (0usize..3, 0.8f64..1.2, 0.8f64..1.2, 0.8f64..1.2).prop_map(|(board, cpu, gpu, mem)| {
        let base = match board {
            0 => DeviceProfile::jetson_nano(),
            1 => DeviceProfile::jetson_tx2(),
            _ => DeviceProfile::jetson_agx_xavier(),
        };
        base.with_power_scale(cpu, gpu, mem)
    })
}

/// A synthetic characterization with thresholds drawn from a bounded
/// range, so interpolation envelopes are easy to state exactly.
fn characterization(name: &str, threshold_pct: f64, speedup: f64) -> DeviceCharacterization {
    DeviceCharacterization {
        device: name.to_string(),
        gpu_cache_max_throughput: 40e9 * speedup,
        gpu_zc_throughput: 10e9,
        gpu_um_throughput: 12e9,
        gpu_cache_threshold_pct: threshold_pct,
        gpu_cache_zone2_pct: Some(threshold_pct * 3.0),
        cpu_cache_threshold_pct: 100.0,
        sc_zc_max_speedup: speedup,
        zc_sc_max_speedup: 1.0 + speedup,
        upm_supported: false,
        gpu_upm_throughput: 0.0,
        upm_kernel_penalty: 1.0,
        um_upm_max_speedup: 1.0,
    }
}

proptest! {
    #[test]
    fn distance_identity(device in device_strategy()) {
        let f = fingerprint_features(&device);
        prop_assert_eq!(feature_distance(&f, &f), 0.0);
    }

    #[test]
    fn distance_symmetry(a in device_strategy(), b in device_strategy()) {
        let fa = fingerprint_features(&a);
        let fb = fingerprint_features(&b);
        let ab = feature_distance(&fa, &fb);
        let ba = feature_distance(&fb, &fa);
        prop_assert!((ab - ba).abs() < 1e-12, "d(a,b)={ab} d(b,a)={ba}");
        prop_assert!(ab >= 0.0);
    }

    #[test]
    fn distance_triangle_inequality(
        a in device_strategy(),
        b in device_strategy(),
        c in device_strategy(),
    ) {
        let fa = fingerprint_features(&a);
        let fb = fingerprint_features(&b);
        let fc = fingerprint_features(&c);
        let ac = feature_distance(&fa, &fc);
        let detour = feature_distance(&fa, &fb) + feature_distance(&fb, &fc);
        prop_assert!(ac <= detour + 1e-9, "d(a,c)={ac} > d(a,b)+d(b,c)={detour}");
    }

    #[test]
    fn larger_scale_gap_never_shrinks_distance(
        device in device_strategy(),
        scale in 1.01f64..1.15,
        growth in 1.01f64..1.05,
    ) {
        // Monotonicity along a ray: pushing all clocks further from the
        // anchor cannot bring the fingerprint closer.
        let anchor = fingerprint_features(&device);
        let near = fingerprint_features(&device.with_power_scale(scale, scale, scale));
        let far_scale = scale * growth;
        let far = fingerprint_features(&device.with_power_scale(far_scale, far_scale, far_scale));
        let d_near = feature_distance(&anchor, &near);
        let d_far = feature_distance(&anchor, &far);
        prop_assert!(d_far >= d_near - 1e-12, "d_far={d_far} < d_near={d_near}");
    }

    #[test]
    fn transferred_thresholds_stay_inside_the_neighbor_envelope(
        device in device_strategy(),
        t1 in 5.0f64..40.0,
        t2 in 5.0f64..40.0,
        t3 in 5.0f64..40.0,
        s1 in 0.5f64..3.0,
        s2 in 0.5f64..3.0,
        s3 in 0.5f64..3.0,
        drift in 1.001f64..1.03,
    ) {
        let features = fingerprint_features(&device);
        let near = fingerprint_features(&device.with_power_scale(drift, drift, drift));
        let neighbors = vec![
            NeighborSample { features: features.clone(), characterization: characterization("n1", t1, s1) },
            NeighborSample { features: near.clone(), characterization: characterization("n2", t2, s2) },
            NeighborSample { features: near, characterization: characterization("n3", t3, s3) },
        ];
        let target = fingerprint_features(&device);
        let Some(t) = transfer_characterization("target", &target, &neighbors, &TransferPolicy::default()) else {
            // A decline (confidence floor) is always acceptable.
            return;
        };
        let lo = t1.min(t2).min(t3);
        let hi = t1.max(t2).max(t3);
        let got = t.characterization.gpu_cache_threshold_pct;
        prop_assert!(got >= lo - 1e-9 && got <= hi + 1e-9, "{got} outside [{lo}, {hi}]");
        let slo = s1.min(s2).min(s3);
        let shi = s1.max(s2).max(s3);
        let sgot = t.characterization.sc_zc_max_speedup;
        prop_assert!(sgot >= slo - 1e-9 && sgot <= shi + 1e-9, "{sgot} outside [{slo}, {shi}]");
        prop_assert!(t.confidence > 0.0 && t.confidence <= 1.0);
    }

    #[test]
    fn confidence_decreases_as_the_nearest_neighbor_recedes(
        device in device_strategy(),
        drift in 1.01f64..1.04,
        growth in 1.005f64..1.02,
    ) {
        let neighbor = NeighborSample {
            features: fingerprint_features(&device),
            characterization: characterization("anchor", 20.0, 1.5),
        };
        let policy = TransferPolicy::default();
        let near = fingerprint_features(&device.with_power_scale(drift, drift, drift));
        let far_scale = drift * growth;
        let far = fingerprint_features(&device.with_power_scale(far_scale, far_scale, far_scale));
        let near_result = transfer_characterization("near", &near, std::slice::from_ref(&neighbor), &policy);
        let far_result = transfer_characterization("far", &far, std::slice::from_ref(&neighbor), &policy);
        match (near_result, far_result) {
            (Some(n), Some(f)) => prop_assert!(
                f.confidence <= n.confidence + 1e-12,
                "confidence rose with distance: near {} far {}",
                n.confidence,
                f.confidence
            ),
            // Farther target declining while nearer transfers is the
            // expected floor behavior...
            (Some(_), None) | (None, None) => {}
            // ...but a nearer target must never decline while a farther
            // one transfers.
            (None, Some(_)) => prop_assert!(false, "near declined but far transferred"),
        }
    }
}
