//! Property-based tests of the federated-transfer primitives.
//!
//! The fingerprint feature distance must behave like a metric (identity,
//! symmetry, triangle inequality) for nearest-neighbor search over it to
//! be meaningful, and the interpolation must never extrapolate: every
//! transferred threshold stays inside the envelope of the neighbors it
//! was blended from, and confidence falls monotonically with distance.

use proptest::prelude::*;

use icomm_microbench::{
    feature_distance, fingerprint_features, robust_transfer_characterization,
    transfer_characterization, DeviceCharacterization, NeighborSample, TransferPolicy,
};
use icomm_soc::DeviceProfile;

/// A strategy over plausible power-scaled variants of the built-in
/// boards (clocks within ±20 %, the range fleets actually exhibit).
fn device_strategy() -> impl Strategy<Value = DeviceProfile> {
    (0usize..3, 0.8f64..1.2, 0.8f64..1.2, 0.8f64..1.2).prop_map(|(board, cpu, gpu, mem)| {
        let base = match board {
            0 => DeviceProfile::jetson_nano(),
            1 => DeviceProfile::jetson_tx2(),
            _ => DeviceProfile::jetson_agx_xavier(),
        };
        base.with_power_scale(cpu, gpu, mem)
    })
}

/// A characterization that clears [`icomm_microbench::check_plausible`]
/// while every tunable field is attacker-chosen — the strongest lie a
/// poisoned source can tell without tripping the physics screen.
fn plausible_poison(
    name: &str,
    threshold_pct: f64,
    speedup: f64,
    throughput: f64,
) -> DeviceCharacterization {
    DeviceCharacterization {
        device: name.to_string(),
        gpu_cache_max_throughput: throughput,
        gpu_zc_throughput: throughput / 4.0,
        gpu_um_throughput: throughput / 3.0,
        gpu_cache_threshold_pct: threshold_pct,
        gpu_cache_zone2_pct: Some((threshold_pct * 2.0).min(100.0)),
        cpu_cache_threshold_pct: 100.0,
        sc_zc_max_speedup: speedup,
        zc_sc_max_speedup: speedup,
        upm_supported: false,
        gpu_upm_throughput: 0.0,
        upm_kernel_penalty: 1.0,
        um_upm_max_speedup: 1.0,
    }
}

/// A synthetic characterization with thresholds drawn from a bounded
/// range, so interpolation envelopes are easy to state exactly.
fn characterization(name: &str, threshold_pct: f64, speedup: f64) -> DeviceCharacterization {
    DeviceCharacterization {
        device: name.to_string(),
        gpu_cache_max_throughput: 40e9 * speedup,
        gpu_zc_throughput: 10e9,
        gpu_um_throughput: 12e9,
        gpu_cache_threshold_pct: threshold_pct,
        gpu_cache_zone2_pct: Some(threshold_pct * 3.0),
        cpu_cache_threshold_pct: 100.0,
        sc_zc_max_speedup: speedup,
        zc_sc_max_speedup: 1.0 + speedup,
        upm_supported: false,
        gpu_upm_throughput: 0.0,
        upm_kernel_penalty: 1.0,
        um_upm_max_speedup: 1.0,
    }
}

proptest! {
    #[test]
    fn distance_identity(device in device_strategy()) {
        let f = fingerprint_features(&device);
        prop_assert_eq!(feature_distance(&f, &f), 0.0);
    }

    #[test]
    fn distance_symmetry(a in device_strategy(), b in device_strategy()) {
        let fa = fingerprint_features(&a);
        let fb = fingerprint_features(&b);
        let ab = feature_distance(&fa, &fb);
        let ba = feature_distance(&fb, &fa);
        prop_assert!((ab - ba).abs() < 1e-12, "d(a,b)={ab} d(b,a)={ba}");
        prop_assert!(ab >= 0.0);
    }

    #[test]
    fn distance_triangle_inequality(
        a in device_strategy(),
        b in device_strategy(),
        c in device_strategy(),
    ) {
        let fa = fingerprint_features(&a);
        let fb = fingerprint_features(&b);
        let fc = fingerprint_features(&c);
        let ac = feature_distance(&fa, &fc);
        let detour = feature_distance(&fa, &fb) + feature_distance(&fb, &fc);
        prop_assert!(ac <= detour + 1e-9, "d(a,c)={ac} > d(a,b)+d(b,c)={detour}");
    }

    #[test]
    fn larger_scale_gap_never_shrinks_distance(
        device in device_strategy(),
        scale in 1.01f64..1.15,
        growth in 1.01f64..1.05,
    ) {
        // Monotonicity along a ray: pushing all clocks further from the
        // anchor cannot bring the fingerprint closer.
        let anchor = fingerprint_features(&device);
        let near = fingerprint_features(&device.with_power_scale(scale, scale, scale));
        let far_scale = scale * growth;
        let far = fingerprint_features(&device.with_power_scale(far_scale, far_scale, far_scale));
        let d_near = feature_distance(&anchor, &near);
        let d_far = feature_distance(&anchor, &far);
        prop_assert!(d_far >= d_near - 1e-12, "d_far={d_far} < d_near={d_near}");
    }

    #[test]
    fn transferred_thresholds_stay_inside_the_neighbor_envelope(
        device in device_strategy(),
        t1 in 5.0f64..40.0,
        t2 in 5.0f64..40.0,
        t3 in 5.0f64..40.0,
        s1 in 0.5f64..3.0,
        s2 in 0.5f64..3.0,
        s3 in 0.5f64..3.0,
        drift in 1.001f64..1.03,
    ) {
        let features = fingerprint_features(&device);
        let near = fingerprint_features(&device.with_power_scale(drift, drift, drift));
        let neighbors = vec![
            NeighborSample { source: 1, features: features.clone(), characterization: characterization("n1", t1, s1) },
            NeighborSample { source: 2, features: near.clone(), characterization: characterization("n2", t2, s2) },
            NeighborSample { source: 3, features: near, characterization: characterization("n3", t3, s3) },
        ];
        let target = fingerprint_features(&device);
        let Some(t) = transfer_characterization("target", &target, &neighbors, &TransferPolicy::default()) else {
            // A decline (confidence floor) is always acceptable.
            return;
        };
        let lo = t1.min(t2).min(t3);
        let hi = t1.max(t2).max(t3);
        let got = t.characterization.gpu_cache_threshold_pct;
        prop_assert!(got >= lo - 1e-9 && got <= hi + 1e-9, "{got} outside [{lo}, {hi}]");
        let slo = s1.min(s2).min(s3);
        let shi = s1.max(s2).max(s3);
        let sgot = t.characterization.sc_zc_max_speedup;
        prop_assert!(sgot >= slo - 1e-9 && sgot <= shi + 1e-9, "{sgot} outside [{slo}, {shi}]");
        prop_assert!(t.confidence > 0.0 && t.confidence <= 1.0);
    }

    #[test]
    fn confidence_decreases_as_the_nearest_neighbor_recedes(
        device in device_strategy(),
        drift in 1.01f64..1.04,
        growth in 1.005f64..1.02,
    ) {
        let neighbor = NeighborSample {
            source: 1,
            features: fingerprint_features(&device),
            characterization: characterization("anchor", 20.0, 1.5),
        };
        let policy = TransferPolicy::default();
        let near = fingerprint_features(&device.with_power_scale(drift, drift, drift));
        let far_scale = drift * growth;
        let far = fingerprint_features(&device.with_power_scale(far_scale, far_scale, far_scale));
        let near_result = transfer_characterization("near", &near, std::slice::from_ref(&neighbor), &policy);
        let far_result = transfer_characterization("far", &far, std::slice::from_ref(&neighbor), &policy);
        match (near_result, far_result) {
            (Some(n), Some(f)) => prop_assert!(
                f.confidence <= n.confidence + 1e-12,
                "confidence rose with distance: near {} far {}",
                n.confidence,
                f.confidence
            ),
            // Farther target declining while nearer transfers is the
            // expected floor behavior...
            (Some(_), None) | (None, None) => {}
            // ...but a nearer target must never decline while a farther
            // one transfers.
            (None, Some(_)) => prop_assert!(false, "near declined but far transferred"),
        }
    }

    /// Breakdown point: `f` attacker-chosen (but physically plausible)
    /// sources among `2f + 1` viable neighbors can never pull a
    /// transferred field outside the honest neighbors' envelope. The
    /// honest samples sit in the few-percent band real firmware
    /// siblings of one SKU exhibit; the poisons claim the target's
    /// exact fingerprint (sybil proximity) and arbitrary values.
    #[test]
    fn poisoned_minority_cannot_leave_the_honest_envelope(
        device in device_strategy(),
        f in 1usize..4,
        honest_t in prop::collection::vec(20.0f64..25.0, 4..5),
        honest_s in prop::collection::vec(1.5f64..1.875, 4..5),
        poison_t in prop::collection::vec(0.0f64..100.0, 3..4),
        poison_s in prop::collection::vec(0.01f64..9.9e3, 3..4),
        poison_bw in prop::collection::vec(1.0f64..9.9e12, 3..4),
    ) {
        let target = fingerprint_features(&device);
        let mut neighbors = Vec::new();
        for i in 0..=f {
            let drift = 1.0 + 0.001 * (i as f64 + 1.0);
            neighbors.push(NeighborSample {
                source: 1 + i as u64,
                features: fingerprint_features(&device.with_power_scale(drift, drift, drift)),
                characterization: characterization("honest", honest_t[i], honest_s[i]),
            });
        }
        for i in 0..f {
            neighbors.push(NeighborSample {
                source: 100 + i as u64,
                features: target.clone(),
                characterization: plausible_poison(
                    "poison", poison_t[i], poison_s[i], poison_bw[i],
                ),
            });
        }
        let outcome = robust_transfer_characterization(
            "target", &target, &neighbors, &TransferPolicy::default(),
        );
        // An in-horizon honest majority always exists, so the robust
        // path must transfer rather than fall back to measurement.
        let t = outcome.transferred.expect("honest majority must transfer");
        let (tlo, thi) = honest_t[..=f].iter().fold((f64::INFINITY, f64::NEG_INFINITY),
            |(lo, hi), v| (lo.min(*v), hi.max(*v)));
        let got = t.characterization.gpu_cache_threshold_pct;
        prop_assert!(got >= tlo - 1e-9 && got <= thi + 1e-9, "{got} outside [{tlo}, {thi}]");
        let (slo, shi) = honest_s[..=f].iter().fold((f64::INFINITY, f64::NEG_INFINITY),
            |(lo, hi), v| (lo.min(*v), hi.max(*v)));
        let sgot = t.characterization.sc_zc_max_speedup;
        prop_assert!(sgot >= slo - 1e-9 && sgot <= shi + 1e-9, "{sgot} outside [{slo}, {shi}]");
        let bgot = t.characterization.gpu_cache_max_throughput;
        let (blo, bhi) = (40e9 * slo, 40e9 * shi);
        prop_assert!(bgot >= blo - 1e-3 && bgot <= bhi + 1e-3, "{bgot} outside [{blo}, {bhi}]");
    }

    /// The robust aggregate is a function of the neighbor *set*, not the
    /// neighbor *order*: every screen and every median is
    /// order-invariant, so any permutation of the same samples must
    /// produce the identical outcome, attribution included.
    #[test]
    fn robust_aggregation_is_permutation_invariant(
        device in device_strategy(),
        rotate in 0usize..5,
        reverse in any::<bool>(),
        t in prop::collection::vec(20.0f64..25.0, 3..4),
        s in prop::collection::vec(1.5f64..1.875, 3..4),
    ) {
        let target = fingerprint_features(&device);
        let mut neighbors = Vec::new();
        for i in 0..3 {
            let drift = 1.0 + 0.001 * (i as f64 + 1.0);
            neighbors.push(NeighborSample {
                source: 1 + i as u64,
                features: fingerprint_features(&device.with_power_scale(drift, drift, drift)),
                characterization: characterization("honest", t[i], s[i]),
            });
        }
        // One liar the consensus screen must eject, one the physics
        // screen must reject — both end up attributed either way.
        neighbors.push(NeighborSample {
            source: 90,
            features: target.clone(),
            characterization: plausible_poison("liar", 99.0, 900.0, 9e12),
        });
        let mut implausible = characterization("forged", 20.0, 1.5);
        implausible.gpu_cache_max_throughput = -5e9;
        neighbors.push(NeighborSample {
            source: 91,
            features: target.clone(),
            characterization: implausible,
        });

        let policy = TransferPolicy::default();
        let baseline = robust_transfer_characterization("target", &target, &neighbors, &policy);
        prop_assert_eq!(&baseline.rejected_sources, &vec![90, 91]);

        let mut shuffled = neighbors.clone();
        let len = shuffled.len();
        shuffled.rotate_left(rotate % len);
        if reverse {
            shuffled.reverse();
        }
        let permuted = robust_transfer_characterization("target", &target, &shuffled, &policy);
        prop_assert_eq!(baseline, permuted);
    }

    /// With unanimous honest neighbors the robust path and the plain
    /// k-NN path agree exactly: robustness costs nothing when nobody is
    /// lying.
    #[test]
    fn unanimous_honest_neighbors_match_plain_knn(
        device in device_strategy(),
        // The helper reports zone 2 at 3x the threshold; stay under the
        // 100 % plausibility bound so the physics screen has no say.
        t in 5.0f64..33.0,
        s in 0.5f64..3.0,
        n in 1usize..4,
    ) {
        let target = fingerprint_features(&device);
        let neighbors: Vec<NeighborSample> = (0..n)
            .map(|i| NeighborSample {
                source: 1 + i as u64,
                features: target.clone(),
                characterization: characterization("sibling", t, s),
            })
            .collect();
        let policy = TransferPolicy::default();
        let plain = transfer_characterization("target", &target, &neighbors, &policy)
            .expect("exact-match neighbors must transfer");
        let robust = robust_transfer_characterization("target", &target, &neighbors, &policy);
        prop_assert!(robust.rejected_sources.is_empty());
        prop_assert_eq!(robust.considered, n);
        prop_assert_eq!(robust.transferred, Some(plain));
    }
}
