//! Stable identity for device profiles.
//!
//! The serving layer memoizes [`DeviceCharacterization`]s per device; the
//! key must depend on every field of the [`DeviceProfile`] (two boards
//! differing only in, say, DRAM bandwidth must characterize separately)
//! and be cheap to compute and store. [`fingerprint`] hashes the
//! profile's canonical serialized form with FNV-1a into a [`DeviceKey`].
//!
//! [`DeviceCharacterization`]: crate::DeviceCharacterization

use std::fmt;

use serde::{Deserialize, Serialize};

use icomm_soc::DeviceProfile;

/// A 64-bit content fingerprint of a [`DeviceProfile`].
///
/// Equal profiles always map to equal keys; distinct profiles collide
/// with probability ~2⁻⁶⁴ per pair, negligible against the handful of
/// boards a registry holds. Keys are stable within one build of the
/// crate; a persisted registry whose keys no longer match (because the
/// profile schema changed) simply re-characterizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceKey(pub u64);

impl fmt::Display for DeviceKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Computes the [`DeviceKey`] of a profile.
pub fn fingerprint(device: &DeviceProfile) -> DeviceKey {
    // The Debug form includes every field (the struct derives Debug
    // exhaustively), giving a canonical byte string without a serializer
    // dependency.
    let canonical = format!("{device:?}");
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in canonical.as_bytes() {
        hash ^= *byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    DeviceKey(hash)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_profiles_equal_keys() {
        let a = fingerprint(&DeviceProfile::jetson_tx2());
        let b = fingerprint(&DeviceProfile::jetson_tx2());
        assert_eq!(a, b);
    }

    #[test]
    fn builtin_boards_all_distinct() {
        let keys = [
            fingerprint(&DeviceProfile::jetson_nano()),
            fingerprint(&DeviceProfile::jetson_tx2()),
            fingerprint(&DeviceProfile::jetson_agx_xavier()),
            fingerprint(&DeviceProfile::orin_like()),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn any_field_change_changes_key() {
        let mut device = DeviceProfile::jetson_nano();
        let base = fingerprint(&device);
        device.name.push('!');
        assert_ne!(base, fingerprint(&device));
    }

    #[test]
    fn key_displays_as_hex() {
        assert_eq!(DeviceKey(0xab).to_string(), "00000000000000ab");
    }
}
