//! Stable identity for device profiles.
//!
//! The serving layer memoizes [`DeviceCharacterization`]s per device; the
//! key must depend on every field of the [`DeviceProfile`] (two boards
//! differing only in, say, DRAM bandwidth must characterize separately)
//! and be cheap to compute and store. [`fingerprint`] hashes the
//! profile's canonical serialized form with FNV-1a into a [`DeviceKey`].
//!
//! [`DeviceCharacterization`]: crate::DeviceCharacterization

use std::fmt;

use serde::{Deserialize, Serialize};

use icomm_soc::DeviceProfile;

/// A 64-bit content fingerprint of a [`DeviceProfile`].
///
/// Equal profiles always map to equal keys; distinct profiles collide
/// with probability ~2⁻⁶⁴ per pair, negligible against the handful of
/// boards a registry holds. Keys are stable within one build of the
/// crate; a persisted registry whose keys no longer match (because the
/// profile schema changed) simply re-characterizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceKey(pub u64);

impl fmt::Display for DeviceKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Computes the [`DeviceKey`] of a profile.
pub fn fingerprint(device: &DeviceProfile) -> DeviceKey {
    // The Debug form includes every field (the struct derives Debug
    // exhaustively), giving a canonical byte string without a serializer
    // dependency.
    let canonical = format!("{device:?}");
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in canonical.as_bytes() {
        hash ^= *byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    DeviceKey(hash)
}

/// Weight separating architectural booleans (I/O coherence, pinned
/// cacheability) in the feature space: flipping one moves a profile
/// farther than any plausible clock drift, so devices never transfer
/// across a coherence boundary.
const ARCH_FLAG_WEIGHT: f64 = 2.0;

/// Extracts the continuous feature vector of a profile, the coordinate
/// system behind [`feature_distance`].
///
/// Magnitude-style parameters (clocks, bandwidths, cache sizes,
/// latencies) enter as natural logarithms, so a fixed *relative* drift —
/// the way DVFS caps and firmware revisions move a board — displaces the
/// vector by a fixed amount regardless of the board's absolute scale.
/// The two zero-copy architecture flags enter as widely separated
/// constants: no amount of clock similarity should make a
/// cache-bypassing board look like an I/O-coherent one, because their
/// characterizations are shaped by different mechanisms (the paper's
/// central TX2-vs-Xavier contrast).
///
/// The vector length is stable within one build of the crate; vectors
/// from different schema versions compare as infinitely distant (see
/// [`feature_distance`]), which simply disables transfer until the
/// entry is re-measured.
pub fn fingerprint_features(device: &DeviceProfile) -> Vec<f64> {
    let ln = |v: f64| v.max(1e-12).ln();
    vec![
        ln(device.cpu.freq.as_hz() as f64),
        ln(device.cpu.cores as f64),
        ln(device.cpu.mlp),
        ln(device.cpu.uncached_wc_depth),
        ln(device.gpu.freq.as_hz() as f64),
        ln(device.gpu.sm_count as f64),
        ln(device.gpu.issue_per_cycle as f64),
        ln(device.gpu.mlp_cached),
        ln(device.gpu.mlp_pinned),
        ln(device.gpu.launch_overhead.as_picos() as f64),
        ln(device.layout.cpu_l1.size.as_u64() as f64),
        ln(device.layout.cpu_llc.size.as_u64() as f64),
        ln(device.layout.gpu_l1.size.as_u64() as f64),
        ln(device.layout.gpu_llc.size.as_u64() as f64),
        ln(device.dram.peak_bandwidth.as_bytes_per_sec() as f64),
        ln(device.dram.access_latency.as_picos() as f64),
        ln(device.latencies.snoop_hit.as_picos() as f64),
        ln(device.latencies.uncached_gpu_extra.as_picos() as f64),
        ln(device.latencies.cpu_llc_bandwidth.as_bytes_per_sec() as f64),
        ln(device.latencies.gpu_llc_bandwidth.as_bytes_per_sec() as f64),
        ln(device.copy_engine.bandwidth.as_bytes_per_sec() as f64),
        ln(device.copy_engine.setup.as_picos() as f64),
        ln(device.um.migration_chunk_bytes as f64),
        if device.zc_rules.cpu_caches_pinned {
            ARCH_FLAG_WEIGHT
        } else {
            0.0
        },
        if device.zc_rules.io_coherent {
            ARCH_FLAG_WEIGHT
        } else {
            0.0
        },
    ]
}

/// Normalized Euclidean distance between two feature vectors
/// (root-mean-square of per-dimension differences).
///
/// Over vectors of equal length this is a true metric: `d(a, a) = 0`,
/// `d(a, b) = d(b, a)`, and the triangle inequality holds. Vectors of
/// different lengths (a schema change across builds) are incomparable
/// and return `f64::INFINITY`, which conservatively disables transfer.
pub fn feature_distance(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() || a.is_empty() {
        return f64::INFINITY;
    }
    let sum: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum();
    (sum / a.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_profiles_equal_keys() {
        let a = fingerprint(&DeviceProfile::jetson_tx2());
        let b = fingerprint(&DeviceProfile::jetson_tx2());
        assert_eq!(a, b);
    }

    #[test]
    fn builtin_boards_all_distinct() {
        let keys = [
            fingerprint(&DeviceProfile::jetson_nano()),
            fingerprint(&DeviceProfile::jetson_tx2()),
            fingerprint(&DeviceProfile::jetson_agx_xavier()),
            fingerprint(&DeviceProfile::orin_like()),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn any_field_change_changes_key() {
        let mut device = DeviceProfile::jetson_nano();
        let base = fingerprint(&device);
        device.name.push('!');
        assert_ne!(base, fingerprint(&device));
    }

    #[test]
    fn key_displays_as_hex() {
        assert_eq!(DeviceKey(0xab).to_string(), "00000000000000ab");
    }

    #[test]
    fn features_are_finite_and_self_distance_zero() {
        for device in [
            DeviceProfile::jetson_nano(),
            DeviceProfile::jetson_tx2(),
            DeviceProfile::jetson_agx_xavier(),
            DeviceProfile::orin_like(),
        ] {
            let f = fingerprint_features(&device);
            assert!(f.iter().all(|v| v.is_finite()), "{}", device.name);
            assert_eq!(feature_distance(&f, &f), 0.0);
        }
    }

    #[test]
    fn clock_drift_moves_less_than_board_change() {
        let tx2 = fingerprint_features(&DeviceProfile::jetson_tx2());
        let drifted =
            fingerprint_features(&DeviceProfile::jetson_tx2().with_power_scale(0.97, 0.97, 0.97));
        let xavier = fingerprint_features(&DeviceProfile::jetson_agx_xavier());
        let near = feature_distance(&tx2, &drifted);
        let far = feature_distance(&tx2, &xavier);
        assert!(near > 0.0 && near < 0.05, "drift distance {near}");
        assert!(far > 0.15, "cross-board distance {far}");
        assert!(far > 5.0 * near);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = fingerprint_features(&DeviceProfile::jetson_nano());
        let b = fingerprint_features(&DeviceProfile::orin_like());
        assert_eq!(feature_distance(&a, &b), feature_distance(&b, &a));
    }

    #[test]
    fn mismatched_lengths_are_infinitely_distant() {
        assert_eq!(feature_distance(&[1.0], &[1.0, 2.0]), f64::INFINITY);
        assert_eq!(feature_distance(&[], &[]), f64::INFINITY);
    }
}
