//! **UPM probe**: hardware-coherent unified-memory characterization.
//!
//! Beyond the paper's three micro-benchmarks: on devices with a coherent
//! fabric ([`DeviceProfile::supports_coherent_upm`]) the framework needs
//! two more application-independent numbers before it can price the
//! [`CommModelKind::CoherentUpm`] model:
//!
//! - the **kernel penalty** — how much slower a TLB-stressing kernel runs
//!   under UPM than under UM at the device's configured page size. The
//!   probe's working set (8 MiB by default) deliberately exceeds the TLB
//!   reach at 4 KiB pages, so the penalty collapses towards 1.0 when the
//!   device is switched to 2 MiB huge pages — this single number is what
//!   moves the UM-vs-UPM crossover.
//! - the **UM→UPM max speedup** — the end-to-end ratio on a copy-heavy
//!   exchange, bounding what any application can gain by dropping the
//!   migrating driver path for coherent system allocation.
//!
//! On non-coherent boards both numbers are defined as 1.0 (switching is a
//! no-op there: the UPM model degrades to UM's software path).

use serde::{Deserialize, Serialize};

use icomm_models::model::{run_model, CommModelKind};
use icomm_models::{CpuPhase, GpuPhase, Workload};
use icomm_profile::ProfileReport;
use icomm_soc::cache::AccessKind;
use icomm_soc::units::{ByteSize, Picos};
use icomm_soc::DeviceProfile;
use icomm_trace::Pattern;

/// Configuration of the UPM probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpmConfig {
    /// Shared working set. The default (8 MiB) exceeds both the GPU LLC
    /// and the 4 KiB-page TLB reach of the built-in coherent boards, so
    /// the probe stresses exactly the costs UPM adds.
    pub footprint: ByteSize,
    /// Exchange iterations.
    pub iterations: u32,
}

impl Default for UpmConfig {
    fn default() -> Self {
        UpmConfig {
            footprint: ByteSize::mib(8),
            iterations: 1,
        }
    }
}

/// Result of the UPM probe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpmResult {
    /// Board name.
    pub device: String,
    /// Whether the device has a coherent fabric at all.
    pub supported: bool,
    /// Kernel time per iteration under unified memory.
    pub kernel_um: Picos,
    /// Kernel time per iteration under coherent UPM.
    pub kernel_upm: Picos,
    /// End-to-end time under unified memory.
    pub total_um: Picos,
    /// End-to-end time under coherent UPM.
    pub total_upm: Picos,
    /// GPU LL-path throughput under UPM, bytes/second (0 when
    /// unsupported).
    pub gpu_upm_throughput: f64,
}

impl UpmResult {
    /// `kernel_UPM / kernel_UM` on the TLB-stressing probe: > 1 when the
    /// page size leaves the working set past TLB reach (or the home node
    /// is remote to the GPU), ~1 when huge pages restore the reach. 1.0
    /// on unsupported devices.
    pub fn kernel_penalty(&self) -> f64 {
        if !self.supported || self.kernel_um.is_zero() {
            return 1.0;
        }
        self.kernel_upm.as_picos() as f64 / self.kernel_um.as_picos() as f64
    }

    /// `UM/UPM_Max_speedup`: most a copy-heavy application gains by
    /// switching the migrating driver path for coherent system
    /// allocation. 1.0 on unsupported devices.
    pub fn um_upm_max_speedup(&self) -> f64 {
        if !self.supported || self.total_upm.is_zero() {
            return 1.0;
        }
        self.total_um.as_picos() as f64 / self.total_upm.as_picos() as f64
    }
}

/// The UPM probe.
#[derive(Debug, Clone, Copy, Default)]
pub struct UpmProbe {
    config: UpmConfig,
}

impl UpmProbe {
    /// Creates the probe with default configuration.
    pub fn new() -> Self {
        UpmProbe {
            config: UpmConfig::default(),
        }
    }

    /// Creates the probe with an explicit configuration.
    pub fn with_config(config: UpmConfig) -> Self {
        UpmProbe { config }
    }

    /// Builds the probe workload: a full exchange (CPU writes the set,
    /// kernel streams it back) sized past TLB reach at small pages.
    pub fn workload(&self, device: &DeviceProfile) -> Workload {
        let bytes = self.config.footprint.as_u64();
        Workload::builder(format!("upm-probe/{}", device.name))
            .bytes_to_gpu(self.config.footprint)
            .bytes_from_gpu(ByteSize(bytes / 64))
            .cpu(CpuPhase {
                ops: vec![],
                shared_accesses: Pattern::Linear {
                    start: 0,
                    bytes,
                    txn_bytes: 64,
                    kind: AccessKind::Write,
                },
                private_accesses: None,
            })
            .gpu(GpuPhase {
                compute_work: bytes / 4,
                shared_accesses: Pattern::Linear {
                    start: 0,
                    bytes,
                    txn_bytes: 64,
                    kind: AccessKind::Read,
                },
                private_accesses: None,
            })
            .iterations(self.config.iterations)
            .build()
    }

    /// Runs the probe on a device.
    pub fn run(&self, device: &DeviceProfile) -> UpmResult {
        if !device.supports_coherent_upm() {
            return UpmResult {
                device: device.name.clone(),
                supported: false,
                kernel_um: Picos::ZERO,
                kernel_upm: Picos::ZERO,
                total_um: Picos::ZERO,
                total_upm: Picos::ZERO,
                gpu_upm_throughput: 0.0,
            };
        }
        let workload = self.workload(device);
        let um = run_model(CommModelKind::UnifiedMemory, device, &workload);
        let upm = run_model(CommModelKind::CoherentUpm, device, &workload);
        let profile = ProfileReport::from_run(&upm);
        UpmResult {
            device: device.name.clone(),
            supported: true,
            kernel_um: um.kernel_time_per_iteration(),
            kernel_upm: upm.kernel_time_per_iteration(),
            total_um: um.total_time,
            total_upm: upm.total_time,
            gpu_upm_throughput: profile.gpu_ll_throughput(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icomm_soc::PageSize;

    #[test]
    fn jetsons_report_unsupported_unit_ratios() {
        let r = UpmProbe::new().run(&DeviceProfile::jetson_tx2());
        assert!(!r.supported);
        assert_eq!(r.kernel_penalty(), 1.0);
        assert_eq!(r.um_upm_max_speedup(), 1.0);
        assert_eq!(r.gpu_upm_throughput, 0.0);
    }

    #[test]
    fn small_pages_penalize_the_kernel() {
        let r = UpmProbe::new().run(&DeviceProfile::mi300a_like());
        assert!(
            r.kernel_penalty() > 1.2,
            "4K-page penalty {:.2} should be visible",
            r.kernel_penalty()
        );
    }

    #[test]
    fn huge_pages_collapse_the_penalty() {
        let small = UpmProbe::new().run(&DeviceProfile::mi300a_like());
        let huge =
            UpmProbe::new().run(&DeviceProfile::mi300a_like().with_page_size(PageSize::Huge2M));
        assert!(
            huge.kernel_penalty() < small.kernel_penalty(),
            "2M penalty {:.2} not below 4K penalty {:.2}",
            huge.kernel_penalty(),
            small.kernel_penalty()
        );
        assert!(huge.kernel_penalty() < 1.1);
    }

    #[test]
    fn copy_heavy_exchange_favours_upm_under_huge_pages() {
        let r = UpmProbe::new().run(&DeviceProfile::mi300a_like().with_page_size(PageSize::Huge2M));
        assert!(
            r.um_upm_max_speedup() > 1.0,
            "UM/UPM {:.2} should exceed 1 with migrations gone",
            r.um_upm_max_speedup()
        );
    }
}
