//! Federated characterization transfer.
//!
//! Fleets of embedded boards are not a set of unrelated devices: they are
//! firmware and DVFS variants clustered tightly around a handful of SKUs.
//! Re-running the full micro-benchmark suite ([`characterize_device`]) on
//! every variant is the dominant serving cost, yet a variant whose clocks
//! drifted two percent from an already-measured sibling will land on the
//! same side of every Fig. 2 decision. This module *transfers* a
//! characterization to an unmeasured device by interpolating over its
//! nearest measured neighbors in fingerprint-feature space
//! ([`fingerprint_features`]), and reports a confidence score so callers
//! can fall back to real measurement when the neighborhood is too sparse
//! or too distant.
//!
//! Transferred values are inverse-distance-weighted convex combinations
//! of the neighbors' values, so every transferred threshold is bounded by
//! the corresponding neighbor minimum and maximum — transfer never
//! extrapolates past what was actually measured.
//!
//! [`characterize_device`]: crate::characterize_device
//! [`fingerprint_features`]: crate::fingerprint::fingerprint_features

use crate::characterization::DeviceCharacterization;
use crate::fingerprint::feature_distance;

/// Tuning knobs for [`transfer_characterization`].
#[derive(Debug, Clone, PartialEq)]
pub struct TransferPolicy {
    /// Maximum number of neighbors interpolated over.
    pub k: usize,
    /// Minimum confidence at which a transfer is accepted; below it the
    /// function returns `None` and the caller should measure for real.
    pub confidence_floor: f64,
    /// Distance at which confidence has decayed to `1/e`. Expressed in
    /// the units of [`feature_distance`] — roughly "mean relative drift
    /// across all profile parameters".
    ///
    /// [`feature_distance`]: crate::fingerprint::feature_distance
    pub distance_scale: f64,
}

impl Default for TransferPolicy {
    fn default() -> Self {
        // A same-cluster firmware variant sits at distance ~0.01-0.03;
        // a different board entirely sits at >= 0.15. The defaults accept
        // the former with confidence >= ~0.7 and reject the latter
        // (confidence <= ~0.08).
        TransferPolicy {
            k: 3,
            confidence_floor: 0.5,
            distance_scale: 0.06,
        }
    }
}

/// One measured registry entry offered as an interpolation source.
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborSample {
    /// Feature vector of the measured device
    /// ([`fingerprint_features`] output).
    ///
    /// [`fingerprint_features`]: crate::fingerprint::fingerprint_features
    pub features: Vec<f64>,
    /// The measured characterization.
    pub characterization: DeviceCharacterization,
}

/// A characterization produced by interpolation rather than measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferredCharacterization {
    /// The interpolated characterization, named after the target device.
    pub characterization: DeviceCharacterization,
    /// Confidence in `(0, 1]`: `exp(-d₀ / distance_scale)` where `d₀` is
    /// the distance to the nearest neighbor used.
    pub confidence: f64,
    /// Distance to the nearest neighbor used.
    pub nearest_distance: f64,
    /// How many neighbors contributed to the interpolation.
    pub neighbors_used: usize,
}

/// Neighbors farther than this multiple of the nearest distance are
/// dropped from the interpolation: once a clear same-cluster match
/// exists, mixing in a different cluster only drags values toward the
/// wrong basin.
const NEIGHBOR_SPREAD_LIMIT: f64 = 4.0;

/// Interpolates a characterization for `target_features` from measured
/// `neighbors`, or returns `None` when confidence lands below the
/// policy floor (caller should fall back to measurement).
///
/// Neighbors are ranked by [`feature_distance`]; the nearest `k` within
/// 4x the nearest distance contribute with inverse-distance weights.
/// Each interpolated field is additionally clamped to the contributing
/// neighbors' min/max, and the zone-2 bound (an `Option`) transfers only
/// when every contributing neighbor observed one.
///
/// [`feature_distance`]: crate::fingerprint::feature_distance
pub fn transfer_characterization(
    target_name: &str,
    target_features: &[f64],
    neighbors: &[NeighborSample],
    policy: &TransferPolicy,
) -> Option<TransferredCharacterization> {
    if neighbors.is_empty() || policy.k == 0 {
        return None;
    }
    let mut ranked: Vec<(f64, &NeighborSample)> = neighbors
        .iter()
        .map(|n| (feature_distance(target_features, &n.features), n))
        .filter(|(d, _)| d.is_finite())
        .collect();
    if ranked.is_empty() {
        return None;
    }
    ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
    let nearest = ranked[0].0;
    let confidence = (-nearest / policy.distance_scale.max(1e-12)).exp();
    if confidence < policy.confidence_floor {
        return None;
    }
    let cutoff = nearest.max(1e-9) * NEIGHBOR_SPREAD_LIMIT;
    let used: Vec<(f64, &NeighborSample)> = ranked
        .into_iter()
        .take(policy.k)
        .filter(|(d, _)| *d <= cutoff)
        .collect();

    // Inverse-distance weights; the epsilon keeps an exact feature match
    // (distance zero) finite while still dominating the blend.
    let weights: Vec<f64> = used.iter().map(|(d, _)| 1.0 / (d + 1e-6)).collect();
    let total: f64 = weights.iter().sum();

    let blend = |field: fn(&DeviceCharacterization) -> f64| -> f64 {
        let mut acc = 0.0;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for ((_, n), w) in used.iter().zip(&weights) {
            let v = field(&n.characterization);
            acc += v * w / total;
            lo = lo.min(v);
            hi = hi.max(v);
        }
        acc.clamp(lo, hi)
    };

    let zone2 = {
        let vals: Vec<f64> = used
            .iter()
            .filter_map(|(_, n)| n.characterization.gpu_cache_zone2_pct)
            .collect();
        if vals.len() == used.len() {
            let mut acc = 0.0;
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for (v, w) in vals.iter().zip(&weights) {
                acc += v * w / total;
                lo = lo.min(*v);
                hi = hi.max(*v);
            }
            Some(acc.clamp(lo, hi))
        } else {
            None
        }
    };

    // UPM numbers only transfer when every contributing neighbour has a
    // coherent fabric; a blend across mixed support would recommend a
    // model the target may not even implement.
    let upm_supported = used.iter().all(|(_, n)| n.characterization.upm_supported);
    let characterization = DeviceCharacterization {
        device: target_name.to_string(),
        gpu_cache_max_throughput: blend(|c| c.gpu_cache_max_throughput),
        gpu_zc_throughput: blend(|c| c.gpu_zc_throughput),
        gpu_um_throughput: blend(|c| c.gpu_um_throughput),
        gpu_cache_threshold_pct: blend(|c| c.gpu_cache_threshold_pct),
        gpu_cache_zone2_pct: zone2,
        cpu_cache_threshold_pct: blend(|c| c.cpu_cache_threshold_pct),
        sc_zc_max_speedup: blend(|c| c.sc_zc_max_speedup),
        zc_sc_max_speedup: blend(|c| c.zc_sc_max_speedup),
        upm_supported,
        gpu_upm_throughput: if upm_supported {
            blend(|c| c.gpu_upm_throughput)
        } else {
            0.0
        },
        upm_kernel_penalty: if upm_supported {
            blend(|c| c.upm_kernel_penalty)
        } else {
            1.0
        },
        um_upm_max_speedup: if upm_supported {
            blend(|c| c.um_upm_max_speedup)
        } else {
            1.0
        },
    };

    Some(TransferredCharacterization {
        characterization,
        confidence,
        nearest_distance: nearest,
        neighbors_used: used.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chr(name: &str, thr: f64, zone2: Option<f64>) -> DeviceCharacterization {
        DeviceCharacterization {
            device: name.to_string(),
            gpu_cache_max_throughput: 100e9 * thr,
            gpu_zc_throughput: 2e9 * thr,
            gpu_um_throughput: 40e9 * thr,
            gpu_cache_threshold_pct: 3.0 * thr,
            gpu_cache_zone2_pct: zone2,
            cpu_cache_threshold_pct: 50.0 * thr,
            sc_zc_max_speedup: 0.9 * thr,
            zc_sc_max_speedup: 40.0 * thr,
            upm_supported: false,
            gpu_upm_throughput: 0.0,
            upm_kernel_penalty: 1.0,
            um_upm_max_speedup: 1.0,
        }
    }

    fn sample(features: Vec<f64>, thr: f64, zone2: Option<f64>) -> NeighborSample {
        NeighborSample {
            features,
            characterization: chr("n", thr, zone2),
        }
    }

    #[test]
    fn exact_match_transfers_with_full_confidence() {
        let f = vec![1.0, 2.0, 3.0];
        let neighbors = [sample(f.clone(), 1.0, Some(30.0))];
        let t = transfer_characterization("target", &f, &neighbors, &TransferPolicy::default())
            .expect("exact match transfers");
        assert!(t.confidence > 0.999);
        assert_eq!(t.neighbors_used, 1);
        assert_eq!(t.characterization.device, "target");
        assert!((t.characterization.gpu_cache_threshold_pct - 3.0).abs() < 1e-9);
        assert_eq!(t.characterization.gpu_cache_zone2_pct, Some(30.0));
    }

    #[test]
    fn distant_neighbors_are_rejected() {
        let neighbors = [sample(vec![5.0, 5.0, 5.0], 1.0, None)];
        let t = transfer_characterization(
            "target",
            &[1.0, 1.0, 1.0],
            &neighbors,
            &TransferPolicy::default(),
        );
        assert!(t.is_none(), "distance ~4 must fall below confidence floor");
    }

    #[test]
    fn interpolation_is_bounded_by_neighbors() {
        let neighbors = [
            sample(vec![1.00, 1.00], 0.9, Some(20.0)),
            sample(vec![1.02, 1.02], 1.1, Some(40.0)),
        ];
        let t =
            transfer_characterization("t", &[1.01, 1.01], &neighbors, &TransferPolicy::default())
                .expect("close neighbors transfer");
        assert_eq!(t.neighbors_used, 2);
        let c = &t.characterization;
        assert!(c.gpu_cache_threshold_pct >= 3.0 * 0.9 && c.gpu_cache_threshold_pct <= 3.0 * 1.1);
        let z = c.gpu_cache_zone2_pct.expect("both neighbors had zone2");
        assert!((20.0..=40.0).contains(&z));
    }

    #[test]
    fn zone2_requires_every_used_neighbor() {
        let neighbors = [
            sample(vec![1.00], 1.0, Some(20.0)),
            sample(vec![1.01], 1.0, None),
        ];
        let t = transfer_characterization("t", &[1.005], &neighbors, &TransferPolicy::default())
            .expect("transfers");
        assert_eq!(t.characterization.gpu_cache_zone2_pct, None);
    }

    #[test]
    fn far_cluster_is_excluded_by_spread_limit() {
        let neighbors = [
            sample(vec![1.000], 1.0, None),
            sample(vec![1.001], 1.0, None),
            // Same-length vector but 3.0 away: a different board.
            sample(vec![4.0], 100.0, None),
        ];
        let t = transfer_characterization("t", &[1.0005], &neighbors, &TransferPolicy::default())
            .expect("cluster transfers");
        assert_eq!(t.neighbors_used, 2, "far neighbor must be dropped");
        assert!(t.characterization.zc_sc_max_speedup < 41.0);
    }

    #[test]
    fn confidence_decreases_with_distance() {
        let p = TransferPolicy {
            confidence_floor: 0.0,
            ..TransferPolicy::default()
        };
        let neighbors = [sample(vec![0.0], 1.0, None)];
        let near = transfer_characterization("t", &[0.01], &neighbors, &p).expect("near");
        let far = transfer_characterization("t", &[0.05], &neighbors, &p).expect("far");
        assert!(near.confidence > far.confidence);
    }

    #[test]
    fn empty_neighbor_set_declines() {
        assert!(transfer_characterization("t", &[1.0], &[], &TransferPolicy::default()).is_none());
    }

    #[test]
    fn mismatched_feature_lengths_decline() {
        let neighbors = [sample(vec![1.0, 2.0], 1.0, None)];
        assert!(
            transfer_characterization("t", &[1.0], &neighbors, &TransferPolicy::default())
                .is_none()
        );
    }
}
