//! Federated characterization transfer.
//!
//! Fleets of embedded boards are not a set of unrelated devices: they are
//! firmware and DVFS variants clustered tightly around a handful of SKUs.
//! Re-running the full micro-benchmark suite ([`characterize_device`]) on
//! every variant is the dominant serving cost, yet a variant whose clocks
//! drifted two percent from an already-measured sibling will land on the
//! same side of every Fig. 2 decision. This module *transfers* a
//! characterization to an unmeasured device by interpolating over its
//! nearest measured neighbors in fingerprint-feature space
//! ([`fingerprint_features`]), and reports a confidence score so callers
//! can fall back to real measurement when the neighborhood is too sparse
//! or too distant.
//!
//! Transferred values are inverse-distance-weighted convex combinations
//! of the neighbors' values, so every transferred threshold is bounded by
//! the corresponding neighbor minimum and maximum — transfer never
//! extrapolates past what was actually measured.
//!
//! [`characterize_device`]: crate::characterize_device
//! [`fingerprint_features`]: crate::fingerprint::fingerprint_features

use crate::characterization::DeviceCharacterization;
use crate::fingerprint::feature_distance;

/// Tuning knobs for [`transfer_characterization`].
#[derive(Debug, Clone, PartialEq)]
pub struct TransferPolicy {
    /// Maximum number of neighbors interpolated over.
    pub k: usize,
    /// Minimum confidence at which a transfer is accepted; below it the
    /// function returns `None` and the caller should measure for real.
    pub confidence_floor: f64,
    /// Distance at which confidence has decayed to `1/e`. Expressed in
    /// the units of [`feature_distance`] — roughly "mean relative drift
    /// across all profile parameters".
    ///
    /// [`feature_distance`]: crate::fingerprint::feature_distance
    pub distance_scale: f64,
}

impl Default for TransferPolicy {
    fn default() -> Self {
        // A same-cluster firmware variant sits at distance ~0.01-0.03;
        // a different board entirely sits at >= 0.15. The defaults accept
        // the former with confidence >= ~0.7 and reject the latter
        // (confidence <= ~0.08).
        TransferPolicy {
            k: 3,
            confidence_floor: 0.5,
            distance_scale: 0.06,
        }
    }
}

/// One measured registry entry offered as an interpolation source.
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborSample {
    /// Registry key of the device that contributed this sample, so a
    /// source caught lying about board physics can be quarantined at
    /// its origin. `0` for anonymous samples (tests, ad-hoc callers).
    pub source: u64,
    /// Feature vector of the measured device
    /// ([`fingerprint_features`] output).
    ///
    /// [`fingerprint_features`]: crate::fingerprint::fingerprint_features
    pub features: Vec<f64>,
    /// The measured characterization.
    pub characterization: DeviceCharacterization,
}

/// A characterization produced by interpolation rather than measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferredCharacterization {
    /// The interpolated characterization, named after the target device.
    pub characterization: DeviceCharacterization,
    /// Confidence in `(0, 1]`: `exp(-d₀ / distance_scale)` where `d₀` is
    /// the distance to the nearest neighbor used.
    pub confidence: f64,
    /// Distance to the nearest neighbor used.
    pub nearest_distance: f64,
    /// How many neighbors contributed to the interpolation.
    pub neighbors_used: usize,
}

/// Neighbors farther than this multiple of the nearest distance are
/// dropped from the interpolation: once a clear same-cluster match
/// exists, mixing in a different cluster only drags values toward the
/// wrong basin.
const NEIGHBOR_SPREAD_LIMIT: f64 = 4.0;

/// Interpolates a characterization for `target_features` from measured
/// `neighbors`, or returns `None` when confidence lands below the
/// policy floor (caller should fall back to measurement).
///
/// Neighbors are ranked by [`feature_distance`]; the nearest `k` within
/// 4x the nearest distance contribute with inverse-distance weights.
/// Each interpolated field is additionally clamped to the contributing
/// neighbors' min/max, and the zone-2 bound (an `Option`) transfers only
/// when every contributing neighbor observed one.
///
/// [`feature_distance`]: crate::fingerprint::feature_distance
pub fn transfer_characterization(
    target_name: &str,
    target_features: &[f64],
    neighbors: &[NeighborSample],
    policy: &TransferPolicy,
) -> Option<TransferredCharacterization> {
    if neighbors.is_empty() || policy.k == 0 {
        return None;
    }
    let mut ranked: Vec<(f64, &NeighborSample)> = neighbors
        .iter()
        .map(|n| (feature_distance(target_features, &n.features), n))
        .filter(|(d, _)| d.is_finite())
        .collect();
    if ranked.is_empty() {
        return None;
    }
    ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
    let nearest = ranked[0].0;
    let confidence = (-nearest / policy.distance_scale.max(1e-12)).exp();
    if confidence < policy.confidence_floor {
        return None;
    }
    let cutoff = nearest.max(1e-9) * NEIGHBOR_SPREAD_LIMIT;
    let used: Vec<(f64, &NeighborSample)> = ranked
        .into_iter()
        .take(policy.k)
        .filter(|(d, _)| *d <= cutoff)
        .collect();

    // Inverse-distance weights; the epsilon keeps an exact feature match
    // (distance zero) finite while still dominating the blend.
    let weights: Vec<f64> = used.iter().map(|(d, _)| 1.0 / (d + 1e-6)).collect();
    let total: f64 = weights.iter().sum();

    let blend = |field: fn(&DeviceCharacterization) -> f64| -> f64 {
        let mut acc = 0.0;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for ((_, n), w) in used.iter().zip(&weights) {
            let v = field(&n.characterization);
            acc += v * w / total;
            lo = lo.min(v);
            hi = hi.max(v);
        }
        acc.clamp(lo, hi)
    };

    let zone2 = {
        let vals: Vec<f64> = used
            .iter()
            .filter_map(|(_, n)| n.characterization.gpu_cache_zone2_pct)
            .collect();
        if vals.len() == used.len() {
            let mut acc = 0.0;
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for (v, w) in vals.iter().zip(&weights) {
                acc += v * w / total;
                lo = lo.min(*v);
                hi = hi.max(*v);
            }
            Some(acc.clamp(lo, hi))
        } else {
            None
        }
    };

    // UPM numbers only transfer when every contributing neighbour has a
    // coherent fabric; a blend across mixed support would recommend a
    // model the target may not even implement.
    let upm_supported = used.iter().all(|(_, n)| n.characterization.upm_supported);
    let characterization = DeviceCharacterization {
        device: target_name.to_string(),
        gpu_cache_max_throughput: blend(|c| c.gpu_cache_max_throughput),
        gpu_zc_throughput: blend(|c| c.gpu_zc_throughput),
        gpu_um_throughput: blend(|c| c.gpu_um_throughput),
        gpu_cache_threshold_pct: blend(|c| c.gpu_cache_threshold_pct),
        gpu_cache_zone2_pct: zone2,
        cpu_cache_threshold_pct: blend(|c| c.cpu_cache_threshold_pct),
        sc_zc_max_speedup: blend(|c| c.sc_zc_max_speedup),
        zc_sc_max_speedup: blend(|c| c.zc_sc_max_speedup),
        upm_supported,
        gpu_upm_throughput: if upm_supported {
            blend(|c| c.gpu_upm_throughput)
        } else {
            0.0
        },
        upm_kernel_penalty: if upm_supported {
            blend(|c| c.upm_kernel_penalty)
        } else {
            1.0
        },
        um_upm_max_speedup: if upm_supported {
            blend(|c| c.um_upm_max_speedup)
        } else {
            1.0
        },
    };

    Some(TransferredCharacterization {
        characterization,
        confidence,
        nearest_distance: nearest,
        neighbors_used: used.len(),
    })
}

/// Checks a characterization against board physics — the screen a
/// fleet applies before letting a peer's measurement influence a
/// transfer. Every bound is generous (an order of magnitude past any
/// embedded SoC in the registry) so an honest outlier never fails; a
/// fabricated entry with NaN throughputs, thresholds past 100 %, or
/// UPM numbers on a board that disclaims the fabric does.
///
/// # Errors
///
/// Returns a description of the first implausible field.
pub fn check_plausible(c: &DeviceCharacterization) -> Result<(), String> {
    // No embedded memory fabric moves 10 TB/s; nothing moves <= 0.
    const MAX_THROUGHPUT: f64 = 1e13;
    for (name, value) in [
        ("gpu_cache_max_throughput", c.gpu_cache_max_throughput),
        ("gpu_zc_throughput", c.gpu_zc_throughput),
        ("gpu_um_throughput", c.gpu_um_throughput),
    ] {
        if !value.is_finite() || value <= 0.0 || value > MAX_THROUGHPUT {
            return Err(format!("{name} {value} is not a plausible bandwidth"));
        }
    }
    for (name, value) in [
        ("gpu_cache_threshold_pct", c.gpu_cache_threshold_pct),
        ("cpu_cache_threshold_pct", c.cpu_cache_threshold_pct),
    ] {
        if !value.is_finite() || !(0.0..=100.0).contains(&value) {
            return Err(format!("{name} {value} outside [0, 100]"));
        }
    }
    if let Some(zone2) = c.gpu_cache_zone2_pct {
        if !zone2.is_finite() || !(0.0..=100.0).contains(&zone2) {
            return Err(format!("gpu_cache_zone2_pct {zone2} outside [0, 100]"));
        }
    }
    // Fig. 2 speedups on these boards top out near 50x; 10^4 is the
    // "no physical copy path is that asymmetric" line.
    const MAX_SPEEDUP: f64 = 1e4;
    for (name, value) in [
        ("sc_zc_max_speedup", c.sc_zc_max_speedup),
        ("zc_sc_max_speedup", c.zc_sc_max_speedup),
    ] {
        if !value.is_finite() || value <= 0.0 || value > MAX_SPEEDUP {
            return Err(format!("{name} {value} is not a plausible speedup"));
        }
    }
    if c.upm_supported {
        if !c.gpu_upm_throughput.is_finite()
            || c.gpu_upm_throughput <= 0.0
            || c.gpu_upm_throughput > MAX_THROUGHPUT
        {
            return Err(format!(
                "gpu_upm_throughput {} claimed on a UPM board is not a plausible bandwidth",
                c.gpu_upm_throughput
            ));
        }
        if !c.upm_kernel_penalty.is_finite()
            || c.upm_kernel_penalty <= 0.0
            || c.upm_kernel_penalty > 100.0
        {
            return Err(format!(
                "upm_kernel_penalty {} outside (0, 100]",
                c.upm_kernel_penalty
            ));
        }
        if !c.um_upm_max_speedup.is_finite()
            || c.um_upm_max_speedup <= 0.0
            || c.um_upm_max_speedup > MAX_SPEEDUP
        {
            return Err(format!(
                "um_upm_max_speedup {} is not a plausible speedup",
                c.um_upm_max_speedup
            ));
        }
    }
    Ok(())
}

/// What [`robust_transfer_characterization`] concluded.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustTransferOutcome {
    /// The aggregated characterization, when a viable honest-majority
    /// neighborhood existed. `None` means "measure for real".
    pub transferred: Option<TransferredCharacterization>,
    /// Sources whose characterizations failed the board-physics screen
    /// ([`check_plausible`]) — candidates for registry quarantine.
    /// Sorted, deduplicated.
    pub rejected_sources: Vec<u64>,
    /// Plausible in-horizon neighbors the aggregate was computed over.
    pub considered: usize,
}

/// Byzantine-robust variant of [`transfer_characterization`]: tolerates
/// up to `f` poisoned sources among `2f + 1` viable neighbors without
/// any transferred field leaving the honest neighbors' range.
///
/// Four changes buy the breakdown point:
///
/// - **Plausibility screening**: sources whose values violate board
///   physics ([`check_plausible`]) are dropped up front and reported in
///   [`RobustTransferOutcome::rejected_sources`] so the caller can
///   quarantine them at the registry.
/// - **Horizon membership instead of k-nearest**: every plausible
///   neighbor within the *absolute* distance horizon at which a
///   neighbor could still clear the policy's confidence floor
///   participates, all with equal weight. Faking proximity (a poisoned
///   entry claiming distance ~0) gains nothing — membership is binary,
///   so an attacker cannot crowd honest neighbors out of the aggregate
///   the way it can out of a k-nearest selection.
/// - **Consensus screening**: a source whose ratio-scale fields sit an
///   order of magnitude from the neighborhood median is lying within
///   physical bounds. With a consistent strict majority the outliers
///   are ejected and reported for quarantine; a two-sample neighborhood
///   that disagrees with itself has no majority to arbitrate, so it
///   declines outright and the caller measures for real.
/// - **Per-field medians instead of distance-weighted means**: with an
///   honest majority, every aggregated field — and the confidence,
///   which derives from the median distance — is bounded by honest
///   values. The zone-2 bound and UPM support are decided by majority
///   vote, with medians over the supporting neighbors.
///
/// A poisoned *majority* can still steer the result — `f >= n/2` is
/// unwinnable without external ground truth — and an attacker faking
/// *large* distances can only push the median distance up, which lowers
/// confidence and fails safe into real measurement.
pub fn robust_transfer_characterization(
    target_name: &str,
    target_features: &[f64],
    neighbors: &[NeighborSample],
    policy: &TransferPolicy,
) -> RobustTransferOutcome {
    let mut rejected_sources: Vec<u64> = Vec::new();
    let mut viable: Vec<(f64, &NeighborSample)> = Vec::new();

    // The farthest a lone neighbor could sit and still clear the
    // confidence floor: exp(-d / scale) >= floor  <=>  d <= scale * ln(1/floor).
    let scale = policy.distance_scale.max(1e-12);
    let horizon = if policy.confidence_floor >= 1.0 {
        0.0
    } else if policy.confidence_floor <= 0.0 {
        f64::INFINITY
    } else {
        scale * (1.0 / policy.confidence_floor).ln()
    };

    for neighbor in neighbors {
        let distance = feature_distance(target_features, &neighbor.features);
        if !distance.is_finite() {
            // Mismatched feature schema: unusable, but not malicious.
            continue;
        }
        if let Err(_reason) = check_plausible(&neighbor.characterization) {
            if neighbor.source != 0 {
                rejected_sources.push(neighbor.source);
            }
            continue;
        }
        if distance <= horizon {
            viable.push((distance, neighbor));
        }
    }
    rejected_sources.sort_unstable();
    rejected_sources.dedup();

    if viable.is_empty() || policy.k == 0 {
        return RobustTransferOutcome {
            transferred: None,
            rejected_sources,
            considered: 0,
        };
    }
    viable.sort_by(|a, b| a.0.total_cmp(&b.0));

    // Consensus screen. In-horizon neighbors are firmware siblings of
    // one SKU, so their true values differ by a few percent; a sample an
    // order of magnitude off the neighborhood median on any ratio-scale
    // field is adversarial, not drifted.
    if viable.len() == 2 {
        let a = consensus_fields(&viable[0].1.characterization);
        let b = consensus_fields(&viable[1].1.characterization);
        if !consensus_agree(&a, &b) {
            // Two samples that wildly disagree: no majority to say which
            // is lying, so blame nobody and measure for real.
            return RobustTransferOutcome {
                transferred: None,
                rejected_sources,
                considered: 2,
            };
        }
    } else if viable.len() >= 3 {
        let vectors: Vec<[f64; 5]> = viable
            .iter()
            .map(|(_, n)| consensus_fields(&n.characterization))
            .collect();
        let mut reference = [0.0f64; 5];
        for (i, slot) in reference.iter_mut().enumerate() {
            let column: Vec<f64> = vectors.iter().map(|v| v[i]).collect();
            *slot = median_of(&column);
        }
        let consistent: Vec<bool> = vectors
            .iter()
            .map(|v| consensus_agree(v, &reference))
            .collect();
        let agree_count = consistent.iter().filter(|ok| **ok).count();
        if agree_count < viable.len() {
            if agree_count * 2 > viable.len() {
                for ((_, n), ok) in viable.iter().zip(&consistent) {
                    if !ok && n.source != 0 {
                        rejected_sources.push(n.source);
                    }
                }
                rejected_sources.sort_unstable();
                rejected_sources.dedup();
                let mut keep = consistent.iter();
                viable.retain(|_| *keep.next().unwrap_or(&true));
            } else {
                // The disagreeing side is at least half the neighborhood:
                // nothing trustworthy to aggregate, nobody to blame.
                let considered = viable.len();
                return RobustTransferOutcome {
                    transferred: None,
                    rejected_sources,
                    considered,
                };
            }
        }
    }

    let distances: Vec<f64> = viable.iter().map(|(d, _)| *d).collect();
    let median_distance = median_of(&distances);
    let confidence = (-median_distance / scale).exp();
    if confidence < policy.confidence_floor {
        return RobustTransferOutcome {
            transferred: None,
            rejected_sources,
            considered: viable.len(),
        };
    }

    let aggregate = |field: fn(&DeviceCharacterization) -> f64| -> f64 {
        let values: Vec<f64> = viable
            .iter()
            .map(|(_, n)| field(&n.characterization))
            .collect();
        median_of(&values)
    };

    // Zone 2 transfers when a strict majority observed one; the bound
    // itself is the median over the observers, so up to f poisoned
    // observers cannot move it outside the honest observers' range.
    let zone2 = {
        let observed: Vec<f64> = viable
            .iter()
            .filter_map(|(_, n)| n.characterization.gpu_cache_zone2_pct)
            .collect();
        if observed.len() * 2 > viable.len() {
            Some(median_of(&observed))
        } else {
            None
        }
    };

    // UPM support by strict majority vote; the UPM numbers are medians
    // over the supporters only (non-supporters carry placeholders).
    let supporters: Vec<&NeighborSample> = viable
        .iter()
        .filter(|(_, n)| n.characterization.upm_supported)
        .map(|(_, n)| *n)
        .collect();
    let upm_supported = supporters.len() * 2 > viable.len();
    let upm_field = |field: fn(&DeviceCharacterization) -> f64, fallback: f64| -> f64 {
        if upm_supported {
            let values: Vec<f64> = supporters
                .iter()
                .map(|n| field(&n.characterization))
                .collect();
            median_of(&values)
        } else {
            fallback
        }
    };

    let characterization = DeviceCharacterization {
        device: target_name.to_string(),
        gpu_cache_max_throughput: aggregate(|c| c.gpu_cache_max_throughput),
        gpu_zc_throughput: aggregate(|c| c.gpu_zc_throughput),
        gpu_um_throughput: aggregate(|c| c.gpu_um_throughput),
        gpu_cache_threshold_pct: aggregate(|c| c.gpu_cache_threshold_pct),
        gpu_cache_zone2_pct: zone2,
        cpu_cache_threshold_pct: aggregate(|c| c.cpu_cache_threshold_pct),
        sc_zc_max_speedup: aggregate(|c| c.sc_zc_max_speedup),
        zc_sc_max_speedup: aggregate(|c| c.zc_sc_max_speedup),
        upm_supported,
        gpu_upm_throughput: upm_field(|c| c.gpu_upm_throughput, 0.0),
        upm_kernel_penalty: upm_field(|c| c.upm_kernel_penalty, 1.0),
        um_upm_max_speedup: upm_field(|c| c.um_upm_max_speedup, 1.0),
    };

    let considered = viable.len();
    RobustTransferOutcome {
        transferred: Some(TransferredCharacterization {
            characterization,
            confidence,
            nearest_distance: distances[0],
            neighbors_used: considered,
        }),
        rejected_sources,
        considered,
    }
}

/// Median of a non-empty slice: the middle element for odd lengths,
/// the mean of the two middles for even. With at most `f` adversarial
/// values among `2f + 1`, the result is bounded by the honest min/max.
fn median_of(values: &[f64]) -> f64 {
    debug_assert!(!values.is_empty());
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Ratio tolerance of the consensus screen. Honest same-cluster firmware
/// drift moves ratio-scale fields by a few percent; 4x keeps an order of
/// safety margin past any DVFS cap while still catching
/// order-of-magnitude lies.
const CONSENSUS_RATIO_LIMIT: f64 = 4.0;

/// The ratio-scale fields the consensus screen compares. All are
/// guaranteed positive by [`check_plausible`], so ratios are well
/// defined. Threshold percentages are excluded: [`check_plausible`]
/// already bounds them to [0, 100] and the medians bound them further.
/// UPM fields are excluded because mixed-support neighborhoods carry
/// placeholders there.
fn consensus_fields(c: &DeviceCharacterization) -> [f64; 5] {
    [
        c.gpu_cache_max_throughput,
        c.gpu_zc_throughput,
        c.gpu_um_throughput,
        c.sc_zc_max_speedup,
        c.zc_sc_max_speedup,
    ]
}

/// Whether two consensus vectors agree within
/// [`CONSENSUS_RATIO_LIMIT`] on every field.
fn consensus_agree(a: &[f64; 5], b: &[f64; 5]) -> bool {
    a.iter().zip(b).all(|(x, y)| {
        let (lo, hi) = if x <= y { (*x, *y) } else { (*y, *x) };
        hi <= lo * CONSENSUS_RATIO_LIMIT
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chr(name: &str, thr: f64, zone2: Option<f64>) -> DeviceCharacterization {
        DeviceCharacterization {
            device: name.to_string(),
            gpu_cache_max_throughput: 100e9 * thr,
            gpu_zc_throughput: 2e9 * thr,
            gpu_um_throughput: 40e9 * thr,
            gpu_cache_threshold_pct: 3.0 * thr,
            gpu_cache_zone2_pct: zone2,
            cpu_cache_threshold_pct: 50.0 * thr,
            sc_zc_max_speedup: 0.9 * thr,
            zc_sc_max_speedup: 40.0 * thr,
            upm_supported: false,
            gpu_upm_throughput: 0.0,
            upm_kernel_penalty: 1.0,
            um_upm_max_speedup: 1.0,
        }
    }

    fn sample(features: Vec<f64>, thr: f64, zone2: Option<f64>) -> NeighborSample {
        NeighborSample {
            source: 0,
            features,
            characterization: chr("n", thr, zone2),
        }
    }

    fn sourced(source: u64, features: Vec<f64>, thr: f64, zone2: Option<f64>) -> NeighborSample {
        NeighborSample {
            source,
            ..sample(features, thr, zone2)
        }
    }

    #[test]
    fn exact_match_transfers_with_full_confidence() {
        let f = vec![1.0, 2.0, 3.0];
        let neighbors = [sample(f.clone(), 1.0, Some(30.0))];
        let t = transfer_characterization("target", &f, &neighbors, &TransferPolicy::default())
            .expect("exact match transfers");
        assert!(t.confidence > 0.999);
        assert_eq!(t.neighbors_used, 1);
        assert_eq!(t.characterization.device, "target");
        assert!((t.characterization.gpu_cache_threshold_pct - 3.0).abs() < 1e-9);
        assert_eq!(t.characterization.gpu_cache_zone2_pct, Some(30.0));
    }

    #[test]
    fn distant_neighbors_are_rejected() {
        let neighbors = [sample(vec![5.0, 5.0, 5.0], 1.0, None)];
        let t = transfer_characterization(
            "target",
            &[1.0, 1.0, 1.0],
            &neighbors,
            &TransferPolicy::default(),
        );
        assert!(t.is_none(), "distance ~4 must fall below confidence floor");
    }

    #[test]
    fn interpolation_is_bounded_by_neighbors() {
        let neighbors = [
            sample(vec![1.00, 1.00], 0.9, Some(20.0)),
            sample(vec![1.02, 1.02], 1.1, Some(40.0)),
        ];
        let t =
            transfer_characterization("t", &[1.01, 1.01], &neighbors, &TransferPolicy::default())
                .expect("close neighbors transfer");
        assert_eq!(t.neighbors_used, 2);
        let c = &t.characterization;
        assert!(c.gpu_cache_threshold_pct >= 3.0 * 0.9 && c.gpu_cache_threshold_pct <= 3.0 * 1.1);
        let z = c.gpu_cache_zone2_pct.expect("both neighbors had zone2");
        assert!((20.0..=40.0).contains(&z));
    }

    #[test]
    fn zone2_requires_every_used_neighbor() {
        let neighbors = [
            sample(vec![1.00], 1.0, Some(20.0)),
            sample(vec![1.01], 1.0, None),
        ];
        let t = transfer_characterization("t", &[1.005], &neighbors, &TransferPolicy::default())
            .expect("transfers");
        assert_eq!(t.characterization.gpu_cache_zone2_pct, None);
    }

    #[test]
    fn far_cluster_is_excluded_by_spread_limit() {
        let neighbors = [
            sample(vec![1.000], 1.0, None),
            sample(vec![1.001], 1.0, None),
            // Same-length vector but 3.0 away: a different board.
            sample(vec![4.0], 100.0, None),
        ];
        let t = transfer_characterization("t", &[1.0005], &neighbors, &TransferPolicy::default())
            .expect("cluster transfers");
        assert_eq!(t.neighbors_used, 2, "far neighbor must be dropped");
        assert!(t.characterization.zc_sc_max_speedup < 41.0);
    }

    #[test]
    fn confidence_decreases_with_distance() {
        let p = TransferPolicy {
            confidence_floor: 0.0,
            ..TransferPolicy::default()
        };
        let neighbors = [sample(vec![0.0], 1.0, None)];
        let near = transfer_characterization("t", &[0.01], &neighbors, &p).expect("near");
        let far = transfer_characterization("t", &[0.05], &neighbors, &p).expect("far");
        assert!(near.confidence > far.confidence);
    }

    #[test]
    fn empty_neighbor_set_declines() {
        assert!(transfer_characterization("t", &[1.0], &[], &TransferPolicy::default()).is_none());
    }

    #[test]
    fn mismatched_feature_lengths_decline() {
        let neighbors = [sample(vec![1.0, 2.0], 1.0, None)];
        assert!(
            transfer_characterization("t", &[1.0], &neighbors, &TransferPolicy::default())
                .is_none()
        );
    }

    #[test]
    fn plausibility_screen_accepts_real_boards() {
        // Thresholds scale with `thr`, so stay within [0, 100].
        for thr in [0.5, 1.0, 1.3] {
            check_plausible(&chr("ok", thr, Some(30.0))).expect("honest board rejected");
        }
    }

    #[test]
    fn plausibility_screen_rejects_fabricated_physics() {
        let mut nan_throughput = chr("bad", 1.0, None);
        nan_throughput.gpu_zc_throughput = f64::NAN;
        assert!(check_plausible(&nan_throughput).is_err());

        let mut wild_threshold = chr("bad", 1.0, None);
        wild_threshold.gpu_cache_threshold_pct = 250.0;
        assert!(check_plausible(&wild_threshold).is_err());

        let mut negative_speedup = chr("bad", 1.0, None);
        negative_speedup.zc_sc_max_speedup = -3.0;
        assert!(check_plausible(&negative_speedup).is_err());

        let mut ghost_upm = chr("bad", 1.0, None);
        ghost_upm.upm_supported = true; // ...with zero UPM bandwidth
        assert!(check_plausible(&ghost_upm).is_err());
    }

    #[test]
    fn robust_transfer_screens_and_reports_implausible_sources() {
        let f = vec![1.0, 2.0];
        let mut poisoned = sourced(66, f.clone(), 1.0, None);
        poisoned.characterization.gpu_cache_max_throughput = f64::INFINITY;
        let neighbors = [
            sourced(1, f.clone(), 1.0, None),
            sourced(2, f.clone(), 1.02, None),
            poisoned,
        ];
        let outcome =
            robust_transfer_characterization("t", &f, &neighbors, &TransferPolicy::default());
        assert_eq!(outcome.rejected_sources, vec![66]);
        assert_eq!(outcome.considered, 2);
        let t = outcome.transferred.expect("honest pair transfers");
        // The poisoned bandwidth never leaks into the aggregate.
        assert!(t.characterization.gpu_cache_max_throughput.is_finite());
    }

    #[test]
    fn faked_proximity_cannot_crowd_out_honest_neighbors() {
        // Two poisoned sources claim an exact feature match (distance
        // zero) with plausible-but-extreme values; three honest
        // variants sit at realistic drift. k-nearest would interpolate
        // from the liars; the robust path's median stays honest.
        let target = vec![1.0, 1.0];
        let neighbors = [
            sourced(10, vec![1.003, 1.003], 1.00, None),
            sourced(11, vec![1.004, 1.004], 1.05, None),
            sourced(12, vec![1.005, 1.005], 0.95, None),
            sourced(90, target.clone(), 2.0, None), // liar: 2x everything, still plausible
            sourced(91, target.clone(), 2.0, None),
        ];
        let outcome =
            robust_transfer_characterization("t", &target, &neighbors, &TransferPolicy::default());
        assert!(outcome.rejected_sources.is_empty(), "liars are plausible");
        let t = outcome.transferred.expect("majority-honest transfers");
        assert_eq!(t.neighbors_used, 5);
        let c = &t.characterization;
        assert!(
            c.gpu_cache_threshold_pct >= 3.0 * 0.95 && c.gpu_cache_threshold_pct <= 3.0 * 1.05,
            "median left the honest range: {}",
            c.gpu_cache_threshold_pct
        );
    }

    #[test]
    fn faked_large_distance_fails_safe_into_measurement() {
        // A majority faking hugeness can only lower confidence: the
        // caller measures for real instead of trusting a bad blend.
        let target = vec![1.0];
        let neighbors = [
            sourced(1, vec![1.001], 1.0, None),
            sourced(90, vec![9.0], 1.0, None),
            sourced(91, vec![9.0], 1.0, None),
        ];
        let outcome =
            robust_transfer_characterization("t", &target, &neighbors, &TransferPolicy::default());
        // The fakers fall outside the confidence horizon entirely, so
        // only the honest neighbor participates.
        assert_eq!(outcome.considered, 1);
        assert!(outcome.transferred.is_some());
    }

    #[test]
    fn robust_empty_and_all_rejected_neighborhoods_decline() {
        let policy = TransferPolicy::default();
        let empty = robust_transfer_characterization("t", &[1.0], &[], &policy);
        assert!(empty.transferred.is_none());
        assert_eq!(empty.considered, 0);

        let mut bad = sourced(7, vec![1.0], 1.0, None);
        bad.characterization.cpu_cache_threshold_pct = f64::NAN;
        let all_bad = robust_transfer_characterization("t", &[1.0], &[bad], &policy);
        assert!(all_bad.transferred.is_none());
        assert_eq!(all_bad.rejected_sources, vec![7]);
    }

    #[test]
    fn consensus_majority_ejects_and_attributes_gross_liars() {
        // Two sources lie an order of magnitude while staying inside
        // board physics; the honest strict majority ejects them and the
        // caller learns whom to quarantine.
        let target = vec![1.0, 1.0];
        let liar = |source| {
            let mut n = sourced(source, target.clone(), 1.0, None);
            n.characterization.gpu_cache_max_throughput = 9e12;
            n.characterization.sc_zc_max_speedup = 900.0;
            n
        };
        let neighbors = [
            sourced(1, vec![1.002, 1.002], 1.00, None),
            sourced(2, vec![1.003, 1.003], 1.04, None),
            sourced(3, vec![1.004, 1.004], 0.96, None),
            liar(90),
            liar(91),
        ];
        let outcome =
            robust_transfer_characterization("t", &target, &neighbors, &TransferPolicy::default());
        assert_eq!(outcome.rejected_sources, vec![90, 91]);
        let t = outcome.transferred.expect("honest majority transfers");
        assert_eq!(t.neighbors_used, 3);
        assert!(t.characterization.gpu_cache_max_throughput < 2e11);
        assert!(t.characterization.sc_zc_max_speedup < 1.0);
    }

    #[test]
    fn split_pair_declines_instead_of_averaging() {
        // One honest sample, one order-of-magnitude liar: a median over
        // two is a mean, so the only safe answer is "measure for real".
        // Nobody is blamed — there is no majority to say which one lied.
        let target = vec![1.0];
        let mut liar = sourced(90, vec![1.001], 1.0, None);
        liar.characterization.gpu_zc_throughput = 8e12;
        let neighbors = [sourced(1, vec![1.002], 1.0, None), liar];
        let outcome =
            robust_transfer_characterization("t", &target, &neighbors, &TransferPolicy::default());
        assert!(outcome.transferred.is_none());
        assert!(outcome.rejected_sources.is_empty());
        assert_eq!(outcome.considered, 2);
    }

    #[test]
    fn robust_zone2_and_upm_follow_the_majority() {
        let f = vec![1.0];
        let mut upm = sourced(1, vec![1.001], 1.0, Some(30.0));
        upm.characterization.upm_supported = true;
        upm.characterization.gpu_upm_throughput = 30e9;
        upm.characterization.upm_kernel_penalty = 1.3;
        upm.characterization.um_upm_max_speedup = 1.4;
        let mut upm2 = upm.clone();
        upm2.source = 2;
        upm2.characterization.gpu_upm_throughput = 34e9;
        let plain = sourced(3, vec![1.002], 1.0, None);

        let outcome = robust_transfer_characterization(
            "t",
            &f,
            &[upm, upm2, plain],
            &TransferPolicy::default(),
        );
        let t = outcome.transferred.expect("transfers");
        // 2 of 3 support UPM and observed zone 2: both majorities win,
        // and the numbers are medians over the supporters.
        assert!(t.characterization.upm_supported);
        assert!((t.characterization.gpu_upm_throughput - 32e9).abs() < 1e6);
        assert_eq!(t.characterization.gpu_cache_zone2_pct, Some(30.0));
    }
}
