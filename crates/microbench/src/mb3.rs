//! **Micro-benchmark 3**: maximum communication speedup with overlap.
//!
//! A balanced CPU+iGPU computation whose performance is fully independent
//! of the GPU cache: the kernel streams a large array with sufficiently
//! sparse single reads and writes to guarantee the maximum miss rate, and
//! the CPU half is auto-balanced to match the kernel's standalone runtime.
//! Because the data set is large (the paper uses 2²⁷ floats, 512 MB),
//! transfer time contributes significantly under SC/UM, while ZC overlaps
//! the two halves with the tiled concurrent access pattern
//! ([`icomm_models::tiling`]).
//!
//! The SC-vs-ZC ratio measured here is the *device's*
//! `SC/ZC_Max_speedup` — the most a cache-independent application can gain
//! by switching to zero copy (Fig. 7).

use serde::{Deserialize, Serialize};

use icomm_models::model::{CommModel, CommModelKind};
use icomm_models::zero_copy::ZeroCopy;
use icomm_models::{model_for, CpuPhase, GpuPhase, RunReport, Workload};
use icomm_soc::cache::AccessKind;
use icomm_soc::cpu::{CpuOpClass, OpCount};
use icomm_soc::units::ByteSize;
use icomm_soc::{DeviceProfile, Soc};
use icomm_trace::Pattern;

/// Configuration of the overlap probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mb3Config {
    /// Array size in bytes. The paper's figure uses 2²⁷ floats (512 MB);
    /// the default is 2²⁴ bytes to keep unit tests fast — benches override
    /// it with the paper's size.
    pub array_bytes: u64,
    /// RNG seed for the sparse access pattern.
    pub seed: u64,
    /// Iterations per model run.
    pub iterations: u32,
}

impl Default for Mb3Config {
    fn default() -> Self {
        Mb3Config {
            array_bytes: 1 << 24,
            seed: 0x1c0,
            iterations: 1,
        }
    }
}

/// Result of the third micro-benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mb3Result {
    /// Board name.
    pub device: String,
    /// Array size exercised.
    pub array_bytes: u64,
    /// Full run reports per model (SC, UM, ZC overlapped).
    pub runs: Vec<RunReport>,
}

impl Mb3Result {
    /// The run for one model.
    ///
    /// # Panics
    ///
    /// Panics if the model was not measured (all three always are).
    pub fn run(&self, kind: CommModelKind) -> &RunReport {
        self.runs
            .iter()
            .find(|r| r.model == kind)
            .expect("all three models are measured")
    }

    /// `SC/ZC_Max_speedup`: total SC time over total ZC time. Values above
    /// 1 mean zero copy wins on this device for cache-independent work.
    pub fn sc_zc_max_speedup(&self) -> f64 {
        let sc = self.run(CommModelKind::StandardCopy).total_time.as_picos() as f64;
        let zc = self.run(CommModelKind::ZeroCopy).total_time.as_picos() as f64;
        if zc == 0.0 {
            1.0
        } else {
            sc / zc
        }
    }

    /// ZC advantage over a model, in the paper's percent convention
    /// (`164%` means ZC is 2.64x faster).
    pub fn zc_advantage_pct(&self, other: CommModelKind) -> f64 {
        let other_t = self.run(other).total_time.as_picos() as f64;
        let zc = self.run(CommModelKind::ZeroCopy).total_time.as_picos() as f64;
        if zc == 0.0 {
            0.0
        } else {
            (other_t / zc - 1.0) * 100.0
        }
    }
}

/// The third micro-benchmark.
#[derive(Debug, Clone, Copy, Default)]
pub struct OverlapProbe {
    config: Mb3Config,
}

impl OverlapProbe {
    /// Creates the probe with default configuration.
    pub fn new() -> Self {
        OverlapProbe {
            config: Mb3Config::default(),
        }
    }

    /// Creates the probe with an explicit configuration.
    pub fn with_config(config: Mb3Config) -> Self {
        OverlapProbe { config }
    }

    /// Builds the balanced workload for a device.
    ///
    /// The GPU half sparsely reads the whole array and writes a compact
    /// result. The CPU half is sized so its standalone (cached) runtime
    /// matches the kernel's: the probe first measures the kernel alone,
    /// then measures a small CPU slice and scales it linearly.
    pub fn workload(&self, device: &DeviceProfile) -> Workload {
        let bytes = self.config.array_bytes;
        let txn: u32 = 64;
        let gpu_reads = Pattern::SparseUniform {
            start: 0,
            region_bytes: bytes,
            count: bytes / txn as u64,
            txn_bytes: txn,
            seed: self.config.seed,
            kind: AccessKind::Read,
        };
        let gpu_writes = Pattern::Linear {
            start: 0,
            bytes: bytes / 64,
            txn_bytes: txn,
            kind: AccessKind::Write,
        };
        let gpu = GpuPhase {
            compute_work: bytes / 4,
            shared_accesses: Pattern::Sequence(vec![gpu_reads, gpu_writes]),
            private_accesses: None,
        };

        // Standalone kernel time on the *pinned* path: the benchmark is
        // built to measure overlapped zero-copy execution, so the halves
        // are balanced in that configuration (the paper overlaps them
        // "perfectly", which requires comparable runtimes under ZC).
        let mut probe_soc = Soc::new(device.clone());
        let kernel_probe = probe_soc.run_kernel(
            gpu.compute_work,
            gpu.shared_accesses
                .requests(icomm_soc::hierarchy::MemSpace::Pinned),
        );

        // CPU probe: cost of producing one slice (linear writes + flops).
        let slice = (bytes / 64).max(4096);
        let cpu_probe_pattern = Pattern::LinearRmw {
            start: 0,
            bytes: slice,
            txn_bytes: txn,
        };
        let flops_per_byte = 2;
        let mut cpu_soc = Soc::new(device.clone());
        let cpu_probe = cpu_soc.run_cpu_task(
            &[OpCount::new(CpuOpClass::FpMulAdd, slice * flops_per_byte)],
            cpu_probe_pattern.requests(icomm_soc::hierarchy::MemSpace::Cached),
        );

        // Scale the CPU slice so cpu_time ~= kernel_time.
        let scale = kernel_probe.time.as_picos() as f64 / cpu_probe.time.as_picos().max(1) as f64;
        let cpu_bytes =
            ((slice as f64 * scale) as u64).clamp(4096, bytes) / txn as u64 * txn as u64;

        Workload::builder(format!("mb3/{}", device.name))
            .bytes_to_gpu(ByteSize(bytes))
            .bytes_from_gpu(ByteSize(bytes / 64))
            .cpu(CpuPhase {
                ops: vec![OpCount::new(
                    CpuOpClass::FpMulAdd,
                    cpu_bytes * flops_per_byte,
                )],
                shared_accesses: Pattern::LinearRmw {
                    start: 0,
                    bytes: cpu_bytes,
                    txn_bytes: txn,
                },
                private_accesses: None,
            })
            .gpu(gpu)
            .overlappable(true)
            .iterations(self.config.iterations)
            .build()
    }

    /// Runs SC, UM and overlapped ZC on a device.
    pub fn run(&self, device: &DeviceProfile) -> Mb3Result {
        let workload = self.workload(device);
        let runs = CommModelKind::ALL
            .iter()
            .map(|&kind| {
                let mut soc = Soc::new(device.clone());
                match kind {
                    CommModelKind::ZeroCopy => ZeroCopy::new().run(&mut soc, &workload),
                    other => model_for(other).run(&mut soc, &workload),
                }
            })
            .collect();
        Mb3Result {
            device: device.name.clone(),
            array_bytes: self.config.array_bytes,
            runs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_roughly_balanced_on_xavier() {
        // Balance is defined in the overlapped zero-copy configuration; on
        // Xavier the CPU keeps its caches on pinned data, so its ZC time
        // should be comparable to the ZC kernel time.
        let device = DeviceProfile::jetson_agx_xavier();
        let w = OverlapProbe::new().workload(&device);
        let zc = icomm_models::run_model(CommModelKind::ZeroCopy, &device, &w);
        let ratio = zc.cpu_time.as_picos() as f64 / zc.kernel_time.as_picos() as f64;
        assert!(
            (0.4..2.5).contains(&ratio),
            "cpu/gpu balance ratio {ratio:.2}"
        );
    }

    #[test]
    fn xavier_zc_beats_sc_and_um() {
        // Transfer times only dominate at the paper's large-array scale
        // (Fig. 7 uses 2^27 floats); 64 MiB is already deep enough in that
        // regime to show a solid win.
        let probe = OverlapProbe::with_config(Mb3Config {
            array_bytes: 1 << 26,
            ..Mb3Config::default()
        });
        let r = probe.run(&DeviceProfile::jetson_agx_xavier());
        assert!(
            r.sc_zc_max_speedup() > 1.3,
            "SC/ZC speedup {:.2}",
            r.sc_zc_max_speedup()
        );
        assert!(r.zc_advantage_pct(CommModelKind::UnifiedMemory) > 30.0);
    }

    #[test]
    fn tx2_zc_loses_on_cache_independent_streams() {
        // The TX2 pinned path is so slow that even copy elimination plus
        // overlap cannot pay for it.
        let r = OverlapProbe::new().run(&DeviceProfile::jetson_tx2());
        assert!(
            r.sc_zc_max_speedup() < 1.0,
            "SC/ZC speedup {:.2} should be < 1 on TX2",
            r.sc_zc_max_speedup()
        );
    }

    #[test]
    fn zc_saves_energy_by_eliminating_copies() {
        let r = OverlapProbe::new().run(&DeviceProfile::jetson_agx_xavier());
        let sc = r.run(CommModelKind::StandardCopy);
        let zc = r.run(CommModelKind::ZeroCopy);
        assert!(
            zc.counters.dram.bytes_total() < sc.counters.dram.bytes_total(),
            "ZC must move fewer DRAM bytes"
        );
    }

    #[test]
    fn overlap_is_actually_exploited() {
        let r = OverlapProbe::new().run(&DeviceProfile::jetson_agx_xavier());
        let zc = r.run(CommModelKind::ZeroCopy);
        assert!(zc.overlap_saved > icomm_soc::units::Picos::ZERO);
    }
}
