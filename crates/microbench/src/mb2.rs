//! **Micro-benchmark 2**: cache-usage thresholds.
//!
//! Extensive GPU computation with varying levels of linear memory access:
//! the kernel executes a fixed amount of arithmetic (`fma.rn` on locally
//! computed values) while touching only a *section* of a fixed-size array
//! (single `ld.global` + `st.global` per element), sweeping the section
//! from `1/16384` to `1/2` of the array. Comparing the ZC and SC curves
//! yields (Figs. 3 and 6):
//!
//! - `GPU_Cache_Threshold`: the cache-usage level (Eqn. 2, as a percentage
//!   of the peak LL-L1 throughput) below which ZC matches SC, and
//! - the *zone 2* limit: the usage level beyond which ZC degrades by more
//!   than 200 % and should be ruled out.
//!
//! A CPU-side analogue sweep yields `CPU_Cache_Threshold` (Eqn. 1). On
//! I/O-coherent devices the CPU cache stays enabled under ZC, so the CPU
//! threshold is 100 % by construction — exactly what the paper reports for
//! the AGX Xavier.

use serde::{Deserialize, Serialize};

use icomm_models::model::{CommModel, CommModelKind};
use icomm_models::zero_copy::ZeroCopy;
use icomm_models::{model_for, CpuPhase, GpuPhase, Workload};
use icomm_profile::ProfileReport;
use icomm_soc::cache::AccessKind;
use icomm_soc::cpu::{CpuOpClass, OpCount};
use icomm_soc::units::{ByteSize, Picos};
use icomm_soc::{DeviceProfile, Soc};
use icomm_trace::Pattern;

/// Configuration of the threshold sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mb2Config {
    /// Fixed array size the sections are taken from. Defaults to four
    /// times the GPU LLC so the sweep reaches both zone boundaries.
    pub array_bytes: Option<u64>,
    /// Passes over the section per GPU kernel. The paper's kernel touches
    /// each element once (single `ld.global`/`st.global`), so the default
    /// is 1; cross-kernel reuse through the LLC still occurs.
    pub gpu_passes: u32,
    /// Passes over the section per CPU task (the CPU-side sweep needs
    /// reuse for Eqn. 1's LLC-usage metric to be meaningful).
    pub cpu_passes: u32,
    /// Fixed GPU arithmetic per kernel (instruction-cycles). `None`
    /// derives it from the device so the compute phase lasts the same
    /// wall time (~4.4 us) on every GPU width — a fixed instruction count
    /// would make the sweep launch-overhead-bound on wide GPUs.
    pub gpu_compute_work: Option<u64>,
    /// Fixed CPU arithmetic for the CPU-side sweep (operation count).
    pub cpu_fp_ops: u64,
    /// Hot (L1-resident) accesses in the CPU-side sweep; dilutes the
    /// LLC-usage metric the way real register/stack traffic does.
    pub cpu_hot_accesses: u64,
    /// Section fractions to sweep (denominators, e.g. 16384 for 1/16384).
    pub denominators: Vec<u64>,
    /// Relative runtime difference below which ZC and SC count as
    /// "comparable" (threshold detection). The default is deliberately
    /// permissive (50 %): a moderate kernel degradation is still paid back
    /// by copy elimination and overlap, which is what the paper's
    /// threshold semantics capture.
    pub comparable_tolerance: f64,
    /// Relative runtime difference marking the zone-2/zone-3 boundary
    /// (the paper uses 200 %).
    pub zone2_limit: f64,
}

impl Default for Mb2Config {
    fn default() -> Self {
        Mb2Config {
            array_bytes: None,
            gpu_passes: 1,
            cpu_passes: 4,
            gpu_compute_work: None,
            cpu_fp_ops: 14_000_000,
            cpu_hot_accesses: 50_000,
            denominators: vec![
                16384, 12288, 8192, 6144, 4096, 3072, 2048, 1536, 1024, 768, 512, 384, 256, 192,
                128, 96, 64, 48, 32, 24, 16, 12, 8, 6, 4, 3, 2,
            ],
            comparable_tolerance: 0.50,
            zone2_limit: 2.0,
        }
    }
}

/// One point of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Section fraction of the array (e.g. `1/2048`).
    pub fraction: f64,
    /// SC kernel (or CPU-task) time.
    pub sc_time: Picos,
    /// ZC kernel (or CPU-task) time.
    pub zc_time: Picos,
    /// LL-L1 throughput measured under SC, bytes/second.
    pub sc_ll_throughput: f64,
    /// LL-L1 path throughput measured under ZC, bytes/second.
    pub zc_ll_throughput: f64,
    /// Cache usage under SC as a percentage of the device's peak
    /// (Eqn. 2 for the GPU sweep, Eqn. 1 for the CPU sweep).
    pub sc_usage_pct: f64,
}

impl SweepPoint {
    /// Relative ZC slowdown at this point (`zc/sc - 1`).
    pub fn zc_slowdown(&self) -> f64 {
        if self.sc_time.is_zero() {
            0.0
        } else {
            self.zc_time.as_picos() as f64 / self.sc_time.as_picos() as f64 - 1.0
        }
    }
}

/// Result of one (GPU or CPU) threshold sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Board name.
    pub device: String,
    /// Sweep points in increasing fraction order.
    pub points: Vec<SweepPoint>,
    /// The detected cache-usage threshold in percent: the usage at the
    /// last point where ZC and SC are comparable.
    pub threshold_pct: f64,
    /// Usage at the zone-2/zone-3 boundary (ZC slowdown crossing 200 %),
    /// when the sweep reaches it.
    pub zone2_limit_pct: Option<f64>,
}

/// Result of the second micro-benchmark: the GPU sweep plus the CPU-side
/// analogue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mb2Result {
    /// GPU threshold sweep (Figs. 3 and 6).
    pub gpu: SweepResult,
    /// CPU threshold sweep.
    pub cpu: SweepResult,
}

/// The second micro-benchmark.
#[derive(Debug, Clone, Default)]
pub struct ThresholdSweep {
    config: Mb2Config,
}

impl ThresholdSweep {
    /// Creates the sweep with default configuration.
    pub fn new() -> Self {
        ThresholdSweep {
            config: Mb2Config::default(),
        }
    }

    /// Creates the sweep with an explicit configuration.
    pub fn with_config(config: Mb2Config) -> Self {
        ThresholdSweep { config }
    }

    fn array_bytes(&self, device: &DeviceProfile) -> u64 {
        self.config
            .array_bytes
            .unwrap_or(4 * device.layout.gpu_llc.size.as_u64())
    }

    fn gpu_compute_work(&self, device: &DeviceProfile) -> u64 {
        self.config.gpu_compute_work.unwrap_or_else(|| {
            // ~4.4 us of SM-array time regardless of GPU width (matches
            // the constant the sweep was calibrated with on the Xavier).
            let throughput = device.gpu.sm_count as u64
                * device.gpu.issue_per_cycle as u64
                * device.gpu.freq.as_hz();
            (throughput as f64 * 4.4e-6) as u64
        })
    }

    /// The GPU workload at one section fraction.
    pub fn gpu_workload(&self, device: &DeviceProfile, denominator: u64) -> Workload {
        let array = self.array_bytes(device);
        let section = (array / denominator).max(4);
        let sweep = Pattern::Repeat {
            body: Box::new(Pattern::LinearRmw {
                start: 0,
                bytes: section,
                txn_bytes: 64,
            }),
            times: self.config.gpu_passes,
        };
        Workload::builder(format!("mb2-gpu/{}/1_{}", device.name, denominator))
            .bytes_to_gpu(ByteSize(array))
            .cpu(CpuPhase::idle())
            .gpu(GpuPhase {
                compute_work: self.gpu_compute_work(device),
                shared_accesses: sweep,
                private_accesses: None,
            })
            .iterations(2)
            .build()
    }

    /// The CPU workload at one section fraction.
    pub fn cpu_workload(&self, device: &DeviceProfile, denominator: u64) -> Workload {
        let array = self.array_bytes(device);
        let section = (array / denominator).max(4);
        let sweep = Pattern::Repeat {
            body: Box::new(Pattern::LinearRmw {
                start: 0,
                bytes: section,
                txn_bytes: 64,
            }),
            times: self.config.cpu_passes,
        };
        Workload::builder(format!("mb2-cpu/{}/1_{}", device.name, denominator))
            .bytes_to_gpu(ByteSize(array))
            .cpu(CpuPhase {
                ops: vec![OpCount::new(CpuOpClass::FpMulAdd, self.config.cpu_fp_ops)],
                shared_accesses: sweep,
                private_accesses: Some(Pattern::SingleAddress {
                    addr: 0,
                    count: self.config.cpu_hot_accesses,
                    txn_bytes: 8,
                    kind: AccessKind::Read,
                }),
            })
            // A token kernel: the CPU sweep needs a GPU phase to form a
            // valid workload, but its cost is launch overhead only.
            .gpu(GpuPhase {
                compute_work: 0,
                shared_accesses: Pattern::Sequence(Vec::new()),
                private_accesses: None,
            })
            .iterations(2)
            .build()
    }

    fn detect(&self, device: &DeviceProfile, points: Vec<SweepPoint>) -> SweepResult {
        let tol = self.config.comparable_tolerance;
        let mut threshold_pct: f64 = 0.0;
        for p in &points {
            if p.zc_slowdown() <= tol {
                threshold_pct = threshold_pct.max(p.sc_usage_pct);
            }
        }
        let mut zone2_limit_pct = None;
        for pair in points.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            if a.zc_slowdown() <= self.config.zone2_limit
                && b.zc_slowdown() > self.config.zone2_limit
            {
                // Report the usage at the last point still inside zone 2.
                zone2_limit_pct = Some(a.sc_usage_pct);
            }
        }
        // If the sweep never crossed the boundary because ZC never
        // degrades that much on this device, zone 2 extends to any usage
        // level. (Leaving `None` means the opposite — the device was past
        // the boundary from the start — which only non-crossing sweeps
        // that *end* degraded should report.)
        if zone2_limit_pct.is_none()
            && points
                .last()
                .map(|p| p.zc_slowdown() <= self.config.zone2_limit)
                .unwrap_or(false)
        {
            zone2_limit_pct = Some(100.0);
        }
        SweepResult {
            device: device.name.clone(),
            points,
            threshold_pct,
            zone2_limit_pct,
        }
    }

    /// Runs the GPU sweep on a device.
    pub fn run_gpu(&self, device: &DeviceProfile) -> SweepResult {
        let max_throughput = device.latencies.gpu_llc_bandwidth.as_bytes_per_sec() as f64;
        let mut points = Vec::new();
        let mut denominators = self.config.denominators.clone();
        denominators.sort_unstable_by(|a, b| b.cmp(a)); // small fractions first
        for &den in &denominators {
            let w = self.gpu_workload(device, den);
            let sc_run = {
                let mut soc = Soc::new(device.clone());
                model_for(CommModelKind::StandardCopy).run(&mut soc, &w)
            };
            let zc_run = {
                let mut soc = Soc::new(device.clone());
                ZeroCopy::serialized().run(&mut soc, &w)
            };
            let sc_profile = ProfileReport::from_run(&sc_run);
            let zc_profile = ProfileReport::from_run(&zc_run);
            points.push(SweepPoint {
                fraction: 1.0 / den as f64,
                sc_time: sc_run.kernel_time_per_iteration(),
                zc_time: zc_run.kernel_time_per_iteration(),
                sc_ll_throughput: sc_profile.gpu_ll_throughput(),
                zc_ll_throughput: zc_profile.gpu_ll_throughput(),
                sc_usage_pct: 100.0 * sc_profile.gpu_ll_throughput() / max_throughput,
            });
        }
        self.detect(device, points)
    }

    /// Runs the CPU sweep on a device. On I/O-coherent devices the CPU
    /// cache is never disabled under ZC, so the threshold is 100 %.
    pub fn run_cpu(&self, device: &DeviceProfile) -> SweepResult {
        if device.zc_rules.cpu_caches_pinned {
            return SweepResult {
                device: device.name.clone(),
                points: Vec::new(),
                threshold_pct: 100.0,
                zone2_limit_pct: None,
            };
        }
        let mut points = Vec::new();
        let mut denominators = self.config.denominators.clone();
        denominators.sort_unstable_by(|a, b| b.cmp(a));
        for &den in &denominators {
            let w = self.cpu_workload(device, den);
            let sc_run = {
                let mut soc = Soc::new(device.clone());
                model_for(CommModelKind::StandardCopy).run(&mut soc, &w)
            };
            let zc_run = {
                let mut soc = Soc::new(device.clone());
                ZeroCopy::serialized().run(&mut soc, &w)
            };
            // Eqn. 1: usage = miss_rate_L1 * (1 - miss_rate_LL).
            let sc_profile = ProfileReport::from_run(&sc_run);
            let usage = 100.0 * sc_profile.miss_rate_l1_cpu * (1.0 - sc_profile.miss_rate_ll_cpu);
            points.push(SweepPoint {
                fraction: 1.0 / den as f64,
                sc_time: sc_run.cpu_time_per_iteration(),
                zc_time: zc_run.cpu_time_per_iteration(),
                sc_ll_throughput: 0.0,
                zc_ll_throughput: 0.0,
                sc_usage_pct: usage,
            });
        }
        self.detect(device, points)
    }

    /// Runs both sweeps.
    pub fn run(&self, device: &DeviceProfile) -> Mb2Result {
        Mb2Result {
            gpu: self.run_gpu(device),
            cpu: self.run_cpu(device),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> Mb2Config {
        Mb2Config {
            denominators: vec![4096, 1024, 256, 64, 16, 4],
            ..Mb2Config::default()
        }
    }

    #[test]
    fn zc_slowdown_grows_with_fraction() {
        let sweep = ThresholdSweep::with_config(quick_config());
        let r = sweep.run_gpu(&DeviceProfile::jetson_tx2());
        let first = r.points.first().unwrap().zc_slowdown();
        let last = r.points.last().unwrap().zc_slowdown();
        assert!(last > first, "slowdown should grow: {first} -> {last}");
        assert!(last > 2.0, "TX2 must end deep in zone 3 ({last:.2})");
    }

    #[test]
    fn xavier_threshold_much_higher_than_tx2() {
        let sweep = ThresholdSweep::with_config(quick_config());
        let tx2 = sweep.run_gpu(&DeviceProfile::jetson_tx2());
        let xavier = sweep.run_gpu(&DeviceProfile::jetson_agx_xavier());
        assert!(
            xavier.threshold_pct > 2.0 * tx2.threshold_pct,
            "xavier {:.1}% vs tx2 {:.1}%",
            xavier.threshold_pct,
            tx2.threshold_pct
        );
    }

    #[test]
    fn xavier_cpu_threshold_is_100() {
        let sweep = ThresholdSweep::with_config(quick_config());
        let r = sweep.run_cpu(&DeviceProfile::jetson_agx_xavier());
        assert_eq!(r.threshold_pct, 100.0);
        assert!(r.points.is_empty());
    }

    #[test]
    fn tx2_cpu_threshold_detected() {
        let sweep = ThresholdSweep::with_config(quick_config());
        let r = sweep.run_cpu(&DeviceProfile::jetson_tx2());
        assert!(r.threshold_pct < 100.0);
        assert!(!r.points.is_empty());
    }

    #[test]
    fn usage_monotone_nondecreasing_on_gpu_sweep() {
        let sweep = ThresholdSweep::with_config(quick_config());
        let r = sweep.run_gpu(&DeviceProfile::jetson_agx_xavier());
        for pair in r.points.windows(2) {
            assert!(
                pair[1].sc_usage_pct >= pair[0].sc_usage_pct * 0.8,
                "usage should grow with the section fraction"
            );
        }
    }
}
