//! Device characterization: the per-device summary the decision framework
//! consumes.
//!
//! Running the three micro-benchmarks once per device produces a
//! [`DeviceCharacterization`] capturing everything the performance model
//! needs that is *application-independent*: peak cache throughputs, cache
//! thresholds, and the maximum attainable speedups in both switching
//! directions. The struct is serializable so a characterization can be
//! computed once per board and cached.

use serde::{Deserialize, Serialize};

use icomm_models::CommModelKind;
use icomm_soc::DeviceProfile;

use crate::mb1::{Mb1Result, PeakCacheThroughput};
use crate::mb2::{Mb2Result, ThresholdSweep};
use crate::mb3::{Mb3Result, OverlapProbe};
use crate::upm::{UpmProbe, UpmResult};

/// Application-independent characterization of one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceCharacterization {
    /// Board name.
    pub device: String,
    /// Peak GPU LL-L1 throughput on the cached (SC) path, bytes/second
    /// (`GPU_Cache^max_throughput`).
    pub gpu_cache_max_throughput: f64,
    /// GPU path throughput under zero copy, bytes/second.
    pub gpu_zc_throughput: f64,
    /// GPU path throughput under unified memory, bytes/second.
    pub gpu_um_throughput: f64,
    /// GPU cache-usage threshold in percent: below it, ZC matches SC.
    pub gpu_cache_threshold_pct: f64,
    /// Usage bound of the "maybe" zone (zone 2); beyond it ZC degrades by
    /// more than 200 % and is ruled out. `None` when the sweep never
    /// crossed it.
    pub gpu_cache_zone2_pct: Option<f64>,
    /// CPU cache-usage threshold in percent (100 on devices whose CPU
    /// cache stays enabled under zero copy).
    pub cpu_cache_threshold_pct: f64,
    /// `SC/ZC_Max_speedup`: most a cache-independent app gains switching
    /// SC→ZC on this device (ratio; < 1 means ZC always loses).
    pub sc_zc_max_speedup: f64,
    /// `ZC/SC_Max_speedup`: most a fully cache-dependent app gains
    /// switching ZC→SC on this device (ratio).
    pub zc_sc_max_speedup: f64,
    /// Whether the device backs system allocations with a hardware-
    /// coherent fabric (UPM).
    pub upm_supported: bool,
    /// GPU path throughput under coherent UPM, bytes/second (0 when
    /// unsupported).
    pub gpu_upm_throughput: f64,
    /// `kernel_UPM / kernel_UM` on the TLB-stressing probe at the
    /// device's configured page size; 1.0 when unsupported. Drops
    /// towards 1.0 under 2 MiB huge pages — the lever that moves the
    /// UM-vs-UPM crossover.
    pub upm_kernel_penalty: f64,
    /// `UM/UPM_Max_speedup`: most a copy-heavy app gains switching the
    /// migrating driver path for coherent allocation; 1.0 when
    /// unsupported.
    pub um_upm_max_speedup: f64,
}

impl DeviceCharacterization {
    /// Assembles the characterization from the four micro-benchmark
    /// results.
    pub fn from_results(
        mb1: &Mb1Result,
        mb2: &Mb2Result,
        mb3: &Mb3Result,
        upm: &UpmResult,
    ) -> Self {
        DeviceCharacterization {
            device: mb1.device.clone(),
            gpu_cache_max_throughput: mb1.max_throughput(),
            gpu_zc_throughput: mb1.model(CommModelKind::ZeroCopy).ll_throughput,
            gpu_um_throughput: mb1.model(CommModelKind::UnifiedMemory).ll_throughput,
            gpu_cache_threshold_pct: mb2.gpu.threshold_pct,
            gpu_cache_zone2_pct: mb2.gpu.zone2_limit_pct,
            cpu_cache_threshold_pct: mb2.cpu.threshold_pct,
            sc_zc_max_speedup: mb3.sc_zc_max_speedup(),
            zc_sc_max_speedup: mb1.zc_sc_max_speedup(),
            upm_supported: upm.supported,
            gpu_upm_throughput: upm.gpu_upm_throughput,
            upm_kernel_penalty: upm.kernel_penalty(),
            um_upm_max_speedup: upm.um_upm_max_speedup(),
        }
    }

    /// Whether zero copy can ever win on this device for
    /// cache-independent work.
    pub fn zc_viable(&self) -> bool {
        self.sc_zc_max_speedup > 1.0
    }
}

/// Runs all three micro-benchmarks and assembles the characterization.
///
/// This is the expensive, run-once-per-board step of the framework.
///
/// # Examples
///
/// ```no_run
/// use icomm_microbench::characterize_device;
/// use icomm_soc::DeviceProfile;
///
/// let c = characterize_device(&DeviceProfile::jetson_tx2());
/// assert!(c.zc_sc_max_speedup > 1.0);
/// ```
pub fn characterize_device(device: &DeviceProfile) -> DeviceCharacterization {
    let mb1 = PeakCacheThroughput::new().run(device);
    let mb2 = ThresholdSweep::new().run(device);
    let mb3 = OverlapProbe::new().run(device);
    let upm = UpmProbe::new().run(device);
    DeviceCharacterization::from_results(&mb1, &mb2, &mb3, &upm)
}

/// Runs a trimmed micro-benchmark sweep: the same three benchmarks with a
/// coarser MB2 denominator grid and a smaller MB3 array.
///
/// Threshold and speedup numbers land within a few percent of the full
/// sweep — close enough for every decision the framework makes on the
/// built-in boards — at a fraction of the runtime. The serving layer and
/// the test suites use this; `characterize` in the CLI keeps the full
/// sweep.
pub fn quick_characterize_device(device: &DeviceProfile) -> DeviceCharacterization {
    use crate::mb2::Mb2Config;
    use crate::mb3::Mb3Config;
    let mb1 = PeakCacheThroughput::new().run(device);
    let mb2 = ThresholdSweep::with_config(Mb2Config {
        denominators: vec![4096, 512, 64, 32, 24, 16, 8, 2],
        ..Mb2Config::default()
    })
    .run(device);
    let mb3 = OverlapProbe::with_config(Mb3Config {
        array_bytes: 1 << 25,
        ..Mb3Config::default()
    })
    .run(device);
    let upm = UpmProbe::new().run(device);
    DeviceCharacterization::from_results(&mb1, &mb2, &mb3, &upm)
}

#[cfg(test)]
mod tests {
    use super::*;

    use quick_characterize_device as quick;

    #[test]
    fn tx2_characterization_shape() {
        let c = quick(&DeviceProfile::jetson_tx2());
        assert!(
            c.zc_sc_max_speedup > 30.0,
            "TX2 zc/sc {:.1}",
            c.zc_sc_max_speedup
        );
        assert!(!c.zc_viable(), "ZC should not be viable on TX2 streams");
        assert!(c.cpu_cache_threshold_pct < 100.0);
    }

    #[test]
    fn xavier_characterization_shape() {
        let c = quick(&DeviceProfile::jetson_agx_xavier());
        assert!(c.zc_sc_max_speedup < 15.0);
        assert!(c.zc_viable(), "ZC must be viable on Xavier");
        assert_eq!(c.cpu_cache_threshold_pct, 100.0);
        assert!(c.gpu_cache_threshold_pct > 2.0);
    }

    #[test]
    fn table1_throughput_ratios() {
        let c = quick(&DeviceProfile::jetson_tx2());
        let gap = c.gpu_cache_max_throughput / c.gpu_zc_throughput;
        // Paper: 97.34 / 1.28 = 76x.
        assert!(
            gap > 40.0 && gap < 150.0,
            "TX2 SC/ZC throughput gap {gap:.0}"
        );
        let cx = quick(&DeviceProfile::jetson_agx_xavier());
        let gapx = cx.gpu_cache_max_throughput / cx.gpu_zc_throughput;
        // Paper: 214.64 / 32.29 = 6.6x.
        assert!(
            gapx > 3.0 && gapx < 15.0,
            "Xavier SC/ZC throughput gap {gapx:.1}"
        );
        assert!(gap > 4.0 * gapx, "TX2 gap must dwarf Xavier's");
    }
}
