//! # icomm-microbench — device-characterization micro-benchmarks
//!
//! The three micro-benchmarks of the paper (Section III-B), implemented
//! against the `icomm-soc` simulator:
//!
//! 1. [`mb1::PeakCacheThroughput`] — peak GPU LL-L1 cache throughput per
//!    communication model (Table I, Fig. 5) and the `ZC/SC_Max_speedup`
//!    bound for cache-dependent applications.
//! 2. [`mb2::ThresholdSweep`] — cache-usage thresholds separating the
//!    "ZC is free" / "ZC maybe" / "ZC ruled out" zones (Figs. 3 and 6),
//!    for both the GPU and the CPU caches.
//! 3. [`mb3::OverlapProbe`] — maximum communication speedup attainable by
//!    switching a cache-independent, overlappable workload to zero copy
//!    (`SC/ZC_Max_speedup`, Fig. 7).
//!
//! Plus one extension probe: [`upm::UpmProbe`] measures the coherent-UPM
//! kernel penalty and `UM/UPM_Max_speedup` on hardware-coherent boards
//! (unit ratios on the Jetsons, where UPM degrades to UM).
//!
//! [`characterize_device`] runs all three and assembles the
//! [`DeviceCharacterization`] the decision framework consumes.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod characterization;
pub mod fingerprint;
pub mod mb1;
pub mod mb2;
pub mod mb3;
pub mod transfer;
pub mod upm;

pub use characterization::{
    characterize_device, quick_characterize_device, DeviceCharacterization,
};
pub use fingerprint::{feature_distance, fingerprint, fingerprint_features, DeviceKey};
pub use mb1::PeakCacheThroughput;
pub use mb2::ThresholdSweep;
pub use mb3::OverlapProbe;
pub use transfer::{
    check_plausible, robust_transfer_characterization, transfer_characterization, NeighborSample,
    RobustTransferOutcome, TransferPolicy, TransferredCharacterization,
};
pub use upm::UpmProbe;
