//! **Micro-benchmark 1**: peak GPU LL-L1 cache throughput per
//! communication model.
//!
//! The benchmark elaborates a matrix computed by both agents (Section
//! III-B): the CPU performs a series of floating-point operations (square
//! roots, divisions, multiplications) against a single memory address,
//! while the GPU performs a 2D reduction multiple times through linear
//! memory accesses. Running it under SC, UM and ZC exposes, per model,
//!
//! - the CPU-routine and GPU-kernel execution times (Fig. 5), and
//! - the maximum throughput of the GPU cache path
//!   (`GPU_Cache^max_throughput`, Table I),
//!
//! which in turn bounds the speedup a cache-dependent application can gain
//! by switching from ZC back to SC (`ZC/SC_Max_speedup`).

use serde::{Deserialize, Serialize};

use icomm_models::model::{CommModel, CommModelKind};
use icomm_models::zero_copy::ZeroCopy;
use icomm_models::{model_for, CpuPhase, GpuPhase, RunReport, Workload};
use icomm_profile::ProfileReport;
use icomm_soc::cache::AccessKind;
use icomm_soc::cpu::CpuOpClass;
use icomm_soc::cpu::OpCount;
use icomm_soc::units::{ByteSize, Picos};
use icomm_soc::{DeviceProfile, Soc};
use icomm_trace::Pattern;

/// Configuration of the first micro-benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mb1Config {
    /// Matrix footprint. Defaults to half the device's GPU LLC so the
    /// cached path is LLC-resident (peak LL-L1 throughput) while still
    /// exceeding the GPU L1.
    pub footprint: Option<ByteSize>,
    /// Reduction passes over the matrix.
    pub passes: u32,
    /// Floating-point operations in the CPU routine (mix of sqrt, div,
    /// mul per the paper).
    pub cpu_fp_ops: u64,
    /// Iterations per model run.
    pub iterations: u32,
}

impl Default for Mb1Config {
    fn default() -> Self {
        Mb1Config {
            footprint: None,
            passes: 64,
            cpu_fp_ops: 60_000,
            iterations: 2,
        }
    }
}

/// Per-model measurements of the first micro-benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mb1ModelResult {
    /// Model measured.
    pub model: CommModelKind,
    /// CPU routine time per iteration.
    pub cpu_time: Picos,
    /// GPU kernel time per iteration.
    pub kernel_time: Picos,
    /// Measured LL-L1 path throughput in bytes/second.
    pub ll_throughput: f64,
}

/// Result of the first micro-benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mb1Result {
    /// Board name.
    pub device: String,
    /// Measurements under SC, UM, ZC (in that order).
    pub per_model: Vec<Mb1ModelResult>,
}

impl Mb1Result {
    /// Measurement for one model.
    ///
    /// # Panics
    ///
    /// Panics if the model was not measured (all three always are).
    pub fn model(&self, kind: CommModelKind) -> &Mb1ModelResult {
        self.per_model
            .iter()
            .find(|m| m.model == kind)
            .expect("all three models are measured")
    }

    /// Peak cached-path throughput (`GPU_Cache^max_throughput`): the SC
    /// measurement.
    pub fn max_throughput(&self) -> f64 {
        self.model(CommModelKind::StandardCopy).ll_throughput
    }

    /// `ZC/SC_Max_speedup`: how many times faster the kernel gets by
    /// switching a fully cache-dependent workload from ZC to SC.
    pub fn zc_sc_max_speedup(&self) -> f64 {
        let sc = self.model(CommModelKind::StandardCopy).kernel_time;
        let zc = self.model(CommModelKind::ZeroCopy).kernel_time;
        if sc.is_zero() {
            1.0
        } else {
            zc.as_picos() as f64 / sc.as_picos() as f64
        }
    }
}

/// The first micro-benchmark.
#[derive(Debug, Clone, Copy, Default)]
pub struct PeakCacheThroughput {
    config: Mb1Config,
}

impl PeakCacheThroughput {
    /// Creates the benchmark with default configuration.
    pub fn new() -> Self {
        PeakCacheThroughput {
            config: Mb1Config::default(),
        }
    }

    /// Creates the benchmark with an explicit configuration.
    pub fn with_config(config: Mb1Config) -> Self {
        PeakCacheThroughput { config }
    }

    /// Builds the benchmark workload for a device.
    pub fn workload(&self, device: &DeviceProfile) -> Workload {
        let footprint = self
            .config
            .footprint
            .unwrap_or(ByteSize(device.layout.gpu_llc.size.as_u64() / 2));
        let bytes = footprint.as_u64();
        // GPU: `passes` linear reduction sweeps (ld.global + add) with one
        // compact result write per row.
        let gpu_reads = Pattern::Repeat {
            body: Box::new(Pattern::Linear {
                start: 0,
                bytes,
                txn_bytes: 64,
                kind: AccessKind::Read,
            }),
            times: self.config.passes,
        };
        let result_writes = Pattern::Linear {
            start: 0,
            bytes: bytes / 64,
            txn_bytes: 64,
            kind: AccessKind::Write,
        };
        // One fused multiply-add per 4-byte element per pass.
        let compute_work = (bytes / 4) * self.config.passes as u64;
        // CPU: tight FP loop against a single address (paper: sqrt, div,
        // mul on one location).
        let third = self.config.cpu_fp_ops / 3;
        Workload::builder(format!("mb1/{}", device.name))
            .bytes_to_gpu(footprint)
            .bytes_from_gpu(ByteSize(bytes / 64))
            .cpu(CpuPhase {
                ops: vec![
                    OpCount::new(CpuOpClass::FpSqrt, third),
                    OpCount::new(CpuOpClass::FpDiv, third),
                    OpCount::new(CpuOpClass::FpMulAdd, third),
                ],
                shared_accesses: Pattern::SingleAddress {
                    addr: 0,
                    count: self.config.cpu_fp_ops / 8,
                    txn_bytes: 4,
                    kind: AccessKind::Write,
                },
                private_accesses: None,
            })
            .gpu(GpuPhase {
                compute_work,
                shared_accesses: Pattern::Sequence(vec![gpu_reads, result_writes]),
                private_accesses: None,
            })
            .iterations(self.config.iterations)
            .build()
    }

    fn run_one(
        &self,
        device: &DeviceProfile,
        workload: &Workload,
        kind: CommModelKind,
    ) -> RunReport {
        let mut soc = Soc::new(device.clone());
        match kind {
            // ZC is measured serialized: the benchmark isolates the raw
            // path cost, it does not exploit overlap.
            CommModelKind::ZeroCopy => ZeroCopy::serialized().run(&mut soc, workload),
            other => model_for(other).run(&mut soc, workload),
        }
    }

    /// Runs the benchmark on a device.
    pub fn run(&self, device: &DeviceProfile) -> Mb1Result {
        let workload = self.workload(device);
        let per_model = CommModelKind::ALL
            .iter()
            .map(|&kind| {
                let run = self.run_one(device, &workload, kind);
                let profile = ProfileReport::from_run(&run);
                Mb1ModelResult {
                    model: kind,
                    cpu_time: run.cpu_time_per_iteration(),
                    kernel_time: run.kernel_time_per_iteration(),
                    ll_throughput: profile.gpu_ll_throughput(),
                }
            })
            .collect();
        Mb1Result {
            device: device.name.clone(),
            per_model,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx2_zc_collapses_by_tens() {
        let r = PeakCacheThroughput::new().run(&DeviceProfile::jetson_tx2());
        let ratio = r.zc_sc_max_speedup();
        // Paper: ~70x kernel slowdown (Table I: 77x throughput gap).
        assert!(ratio > 30.0, "TX2 ZC/SC kernel ratio {ratio:.1}");
    }

    #[test]
    fn xavier_zc_penalty_is_single_digit() {
        let r = PeakCacheThroughput::new().run(&DeviceProfile::jetson_agx_xavier());
        let ratio = r.zc_sc_max_speedup();
        // Paper: 3.7x kernel slowdown, 6.6x throughput gap.
        assert!(
            ratio > 1.5 && ratio < 15.0,
            "Xavier ZC/SC kernel ratio {ratio:.1}"
        );
    }

    #[test]
    fn sc_throughput_near_llc_bandwidth() {
        let device = DeviceProfile::jetson_tx2();
        let r = PeakCacheThroughput::new().run(&device);
        let measured = r.max_throughput();
        let bound = device.latencies.gpu_llc_bandwidth.as_bytes_per_sec() as f64;
        assert!(measured <= bound * 1.001);
        assert!(
            measured > bound * 0.6,
            "measured {measured:.2e} vs bound {bound:.2e}"
        );
    }

    #[test]
    fn um_close_to_sc() {
        let r = PeakCacheThroughput::new().run(&DeviceProfile::jetson_agx_xavier());
        let sc = r.model(CommModelKind::StandardCopy).ll_throughput;
        let um = r.model(CommModelKind::UnifiedMemory).ll_throughput;
        let rel = (um - sc).abs() / sc;
        assert!(rel < 0.08, "UM deviates from SC by {:.1}%", rel * 100.0);
    }

    #[test]
    fn cpu_routine_time_similar_across_sc_um() {
        let r = PeakCacheThroughput::new().run(&DeviceProfile::jetson_tx2());
        let sc = r.model(CommModelKind::StandardCopy).cpu_time.as_picos() as f64;
        let um = r.model(CommModelKind::UnifiedMemory).cpu_time.as_picos() as f64;
        assert!((um - sc).abs() / sc < 0.1);
    }

    #[test]
    fn tx2_zc_cpu_routine_slower() {
        // TX2 disables the CPU cache on pinned buffers, so even the
        // register-hot CPU routine pays for its single-address traffic.
        let r = PeakCacheThroughput::new().run(&DeviceProfile::jetson_tx2());
        let sc = r.model(CommModelKind::StandardCopy).cpu_time;
        let zc = r.model(CommModelKind::ZeroCopy).cpu_time;
        assert!(zc > sc, "zc {zc} should exceed sc {sc}");
    }
}
