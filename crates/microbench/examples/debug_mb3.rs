use icomm_microbench::mb3::{Mb3Config, OverlapProbe};
use icomm_models::CommModelKind;
use icomm_soc::DeviceProfile;

fn main() {
    for dev in [
        DeviceProfile::jetson_agx_xavier(),
        DeviceProfile::jetson_tx2(),
    ] {
        let probe = OverlapProbe::with_config(Mb3Config {
            array_bytes: 1 << 26,
            ..Default::default()
        });
        let r = probe.run(&dev);
        println!("== {} ==", dev.name);
        for run in &r.runs {
            println!(
                "{:>3}: total {:>10} cpu {:>10} kernel {:>10} copy {:>10} sync {:>9} saved {:>9}",
                run.model.abbrev(),
                run.total_time.to_string(),
                run.cpu_time.to_string(),
                run.kernel_time.to_string(),
                run.copy_time.to_string(),
                run.sync_time.to_string(),
                run.overlap_saved.to_string(),
            );
        }
        println!(
            "SC/ZC = {:.2}, vs UM = {:.0}%",
            r.sc_zc_max_speedup(),
            r.zc_advantage_pct(CommModelKind::UnifiedMemory)
        );
    }
}
