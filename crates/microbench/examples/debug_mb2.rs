use icomm_microbench::mb2::ThresholdSweep;
use icomm_soc::DeviceProfile;

fn main() {
    for dev in [
        DeviceProfile::jetson_agx_xavier(),
        DeviceProfile::jetson_tx2(),
    ] {
        let r = ThresholdSweep::new().run_gpu(&dev);
        println!(
            "== {} (threshold {:.1}%, zone2 {:?}) ==",
            dev.name, r.threshold_pct, r.zone2_limit_pct
        );
        for p in &r.points {
            println!(
                "1/{:<6.0} sc {:>10} zc {:>10} slow {:>7.2} sc_tp {:>7.2} GB/s usage {:>6.2}%",
                1.0 / p.fraction,
                p.sc_time.to_string(),
                p.zc_time.to_string(),
                p.zc_slowdown(),
                p.sc_ll_throughput / 1e9,
                p.sc_usage_pct
            );
        }
    }
}
