//! Mapping the Shack–Hartmann application onto an `icomm` workload.
//!
//! Pipeline per camera frame:
//!
//! 1. **CPU (producer)**: acquires/unpacks the camera frame into the shared
//!    buffer, reads back the previous frame's centroids, and computes
//!    wavefront slopes plus the host-side control work (lookup tables and
//!    a hot working set).
//! 2. **GPU kernel**: per-subaperture thresholded centre-of-gravity (a 2D
//!    reduction), reading the frame and writing the centroid array.
//!
//! The shared-buffer traffic is sized from the *traced real
//! implementation* ([`crate::shwfs::centroid`]); arithmetic costs come
//! from per-pixel/per-subaperture operation counts. Within one frame the
//! slope computation depends on the kernel's output, so the phases do not
//! overlap (`overlappable = false`), matching the paper's serialized
//! SH-WFS timings.

use serde::{Deserialize, Serialize};

use icomm_models::{CpuPhase, GpuPhase, Workload};
use icomm_soc::cache::AccessKind;
use icomm_soc::cpu::{CpuOpClass, OpCount};
use icomm_soc::hierarchy::MemSpace;
use icomm_soc::units::ByteSize;
use icomm_trace::{CountingTracer, Pattern};

use crate::shwfs::centroid::{centroid_buffer_offset, extract_centroids};
use crate::shwfs::frame::{generate_frame, ShwfsConfig};

/// Application-level parameters of the SH-WFS case study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShwfsApp {
    /// Sensor/scene configuration.
    pub sensor: ShwfsConfig,
    /// Background-rejection threshold.
    pub threshold: u16,
    /// GPU instruction-cycles per pixel (load, threshold, three
    /// multiply-accumulates, reduction bookkeeping).
    pub cycles_per_pixel: u64,
    /// Host-side control arithmetic per frame (acquisition, unpacking,
    /// reconstruction bookkeeping).
    pub host_ops: u64,
    /// Hot (L1-resident) CPU accesses per frame.
    pub hot_accesses: u64,
    /// CPU lookup/calibration table size (private, cacheable).
    pub table_bytes: u64,
    /// Frames to simulate.
    pub iterations: u32,
}

impl Default for ShwfsApp {
    fn default() -> Self {
        ShwfsApp {
            sensor: ShwfsConfig::default(),
            threshold: 12,
            cycles_per_pixel: 80,
            host_ops: 120_000,
            hot_accesses: 30_000,
            table_bytes: 192 * 1024,
            iterations: 4,
        }
    }
}

impl ShwfsApp {
    /// Runs the real algorithm once (traced) and builds the workload whose
    /// shared-buffer traffic matches the traced transaction counts.
    pub fn workload(&self) -> Workload {
        let cfg = &self.sensor;
        let (image, _) = generate_frame(cfg);
        let mut kernel_trace = CountingTracer::new();
        let centroids = extract_centroids(
            &image,
            cfg,
            self.threshold,
            &mut kernel_trace,
            MemSpace::Cached,
        );
        let frame_bytes = cfg.frame_bytes();
        let centroid_bytes = centroids.len() as u64 * 16;
        let pixels = cfg.frame_width() as u64 * cfg.frame_height() as u64;
        let subs = cfg.subaperture_count() as u64;

        // GPU: the traced per-subaperture row reads coalesce into 64 B
        // warp transactions over the contiguous frame, plus the traced
        // centroid writes.
        let gpu_shared = Pattern::Sequence(vec![
            Pattern::Linear {
                start: 0,
                bytes: frame_bytes,
                txn_bytes: 64,
                kind: AccessKind::Read,
            },
            Pattern::Linear {
                start: centroid_buffer_offset(cfg),
                bytes: centroid_bytes,
                txn_bytes: 16,
                kind: AccessKind::Write,
            },
        ]);
        debug_assert_eq!(kernel_trace.bytes, frame_bytes + centroid_bytes);

        // CPU: write the acquired frame into the shared buffer, then read
        // the centroid results back for the slope computation. The
        // read-back is a bulk (cache-line coalesced) copy into local
        // arrays — reading 16-byte records individually over an uncached
        // pinned mapping would be ruinous, and no sane implementation
        // does that.
        let cpu_shared = Pattern::Sequence(vec![
            Pattern::Linear {
                start: 0,
                bytes: frame_bytes,
                txn_bytes: 64,
                kind: AccessKind::Write,
            },
            Pattern::Linear {
                start: centroid_buffer_offset(cfg),
                bytes: centroid_bytes,
                txn_bytes: 64,
                kind: AccessKind::Read,
            },
        ]);
        // Private host-side traffic: calibration-table walks (LLC
        // resident, L1-hostile stride) plus a hot L1 working set.
        let cpu_private = Pattern::Sequence(vec![
            Pattern::Strided {
                start: 0,
                count: self.table_bytes / 256,
                stride: 256,
                txn_bytes: 8,
                kind: AccessKind::Read,
            },
            Pattern::SingleAddress {
                addr: self.table_bytes,
                count: self.hot_accesses,
                txn_bytes: 8,
                kind: AccessKind::Read,
            },
        ]);

        // Arithmetic: slopes need two subtractions and a magnitude per
        // subaperture; the kernel does `cycles_per_pixel` per pixel.
        let cpu_ops = vec![
            OpCount::new(CpuOpClass::FpMulAdd, self.host_ops + subs * 2),
            OpCount::new(CpuOpClass::FpSqrt, subs),
            OpCount::new(CpuOpClass::FpDiv, subs),
        ];

        Workload::builder(format!(
            "shwfs/{}x{}x{}px",
            cfg.grid_x, cfg.grid_y, cfg.subaperture_px
        ))
        .bytes_to_gpu(ByteSize(frame_bytes))
        .bytes_from_gpu(ByteSize(centroid_bytes))
        .cpu(CpuPhase {
            ops: cpu_ops,
            shared_accesses: cpu_shared,
            private_accesses: Some(cpu_private),
        })
        .gpu(GpuPhase {
            compute_work: pixels * self.cycles_per_pixel,
            shared_accesses: gpu_shared,
            private_accesses: None,
        })
        .overlappable(false)
        .iterations(self.iterations)
        .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icomm_models::{run_model, CommModelKind};
    use icomm_soc::DeviceProfile;

    #[test]
    fn workload_payloads_match_sensor() {
        let app = ShwfsApp::default();
        let w = app.workload();
        assert_eq!(w.bytes_to_gpu.as_u64(), app.sensor.frame_bytes());
        assert_eq!(
            w.bytes_from_gpu.as_u64(),
            app.sensor.subaperture_count() as u64 * 16
        );
        assert!(!w.overlappable);
    }

    #[test]
    fn xavier_zc_beats_sc() {
        let app = ShwfsApp {
            iterations: 2,
            ..ShwfsApp::default()
        };
        let w = app.workload();
        let device = DeviceProfile::jetson_agx_xavier();
        let sc = run_model(CommModelKind::StandardCopy, &device, &w);
        let zc = run_model(CommModelKind::ZeroCopy, &device, &w);
        let gain = zc.speedup_vs_percent(&sc);
        // Paper Table III: +38 % on Xavier.
        assert!(gain > 10.0, "Xavier ZC gain {gain:.0}% should be positive");
    }

    #[test]
    fn nano_and_tx2_zc_lose() {
        let app = ShwfsApp {
            iterations: 2,
            ..ShwfsApp::default()
        };
        let w = app.workload();
        for device in [DeviceProfile::jetson_nano(), DeviceProfile::jetson_tx2()] {
            let sc = run_model(CommModelKind::StandardCopy, &device, &w);
            let zc = run_model(CommModelKind::ZeroCopy, &device, &w);
            let gain = zc.speedup_vs_percent(&sc);
            assert!(
                gain < -10.0,
                "{} ZC gain {gain:.0}% should be negative",
                device.name
            );
        }
    }

    #[test]
    fn kernel_times_ordered_by_device() {
        let app = ShwfsApp {
            iterations: 2,
            ..ShwfsApp::default()
        };
        let w = app.workload();
        let kt = |d: &DeviceProfile| {
            run_model(CommModelKind::StandardCopy, d, &w).kernel_time_per_iteration()
        };
        let nano = kt(&DeviceProfile::jetson_nano());
        let tx2 = kt(&DeviceProfile::jetson_tx2());
        let xavier = kt(&DeviceProfile::jetson_agx_xavier());
        // Paper Table III: 453.5 / 175.2 / 41.2 us.
        assert!(nano > tx2 && tx2 > xavier, "{nano} > {tx2} > {xavier}");
    }

    #[test]
    fn xavier_zc_kernel_penalty_small() {
        let app = ShwfsApp {
            iterations: 2,
            ..ShwfsApp::default()
        };
        let w = app.workload();
        let device = DeviceProfile::jetson_agx_xavier();
        let sc = run_model(CommModelKind::StandardCopy, &device, &w);
        let zc = run_model(CommModelKind::ZeroCopy, &device, &w);
        let penalty = zc.kernel_time_per_iteration().as_picos() as f64
            / sc.kernel_time_per_iteration().as_picos() as f64;
        // Paper: -14 % kernel on Xavier.
        assert!(penalty < 1.4, "Xavier ZC kernel penalty {penalty:.2}x");
    }
}
