//! Centroid extraction and slope computation for Shack–Hartmann frames.
//!
//! The GPU kernel of the paper's first case study [Kong et al., Applied
//! Optics 2017] computes, per subaperture, the thresholded centre of
//! gravity of the spot — a 2D reduction over the subaperture window. The
//! CPU routine converts centroid displacements into wavefront slopes
//! against the reference positions.
//!
//! Both routines are real implementations (they produce validated
//! numbers) and are instrumented with a [`Tracer`] so the shared-buffer
//! traffic they actually perform can be replayed on the simulator.

use serde::{Deserialize, Serialize};

use icomm_soc::hierarchy::MemSpace;
use icomm_trace::Tracer;

use crate::image::Image;
use crate::shwfs::frame::ShwfsConfig;

/// One extracted spot centroid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Centroid {
    /// Spot centre x in frame coordinates.
    pub x: f64,
    /// Spot centre y in frame coordinates.
    pub y: f64,
    /// Total (thresholded) intensity of the spot.
    pub intensity: f64,
}

/// One wavefront slope sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Slope {
    /// Slope along x (pixels of displacement).
    pub sx: f64,
    /// Slope along y.
    pub sy: f64,
}

/// Extracts the centre-of-gravity centroid of every subaperture.
///
/// `threshold` is subtracted from each pixel before accumulation (clamped
/// at zero), the standard Shack–Hartmann background-rejection step.
/// Frame reads are reported to `tracer` in `space` so the caller can
/// replay them against the simulated shared buffer.
pub fn extract_centroids(
    image: &Image,
    config: &ShwfsConfig,
    threshold: u16,
    tracer: &mut impl Tracer,
    space: MemSpace,
) -> Vec<Centroid> {
    let sub = config.subaperture_px;
    let mut out = Vec::with_capacity(config.subaperture_count() as usize);
    for sy in 0..config.grid_y {
        for sx in 0..config.grid_x {
            let x0 = sx * sub;
            let y0 = sy * sub;
            let mut sum = 0.0f64;
            let mut sum_x = 0.0f64;
            let mut sum_y = 0.0f64;
            for py in y0..y0 + sub {
                // One coalesced read per subaperture row.
                tracer.read(
                    config.pixel_offset(x0, py),
                    sub * config.bytes_per_pixel,
                    space,
                );
                for px in x0..x0 + sub {
                    let raw = image.get(px, py);
                    let v = raw.saturating_sub(threshold) as f64;
                    sum += v;
                    sum_x += v * (px as f64 + 0.5);
                    sum_y += v * (py as f64 + 0.5);
                }
            }
            let centroid = if sum > 0.0 {
                Centroid {
                    x: sum_x / sum,
                    y: sum_y / sum,
                    intensity: sum,
                }
            } else {
                // Dead subaperture: report its geometric centre.
                Centroid {
                    x: (x0 + sub / 2) as f64,
                    y: (y0 + sub / 2) as f64,
                    intensity: 0.0,
                }
            };
            // Result write: x, y, intensity as 3 x f32 = 12 bytes, padded
            // to one 16-byte store.
            let idx = (sy * config.grid_x + sx) as u64;
            tracer.write(centroid_buffer_offset(config) + idx * 16, 16, space);
            out.push(centroid);
        }
    }
    out
}

/// Byte offset of the centroid output array inside the shared buffer
/// (right after the frame pixels).
pub fn centroid_buffer_offset(config: &ShwfsConfig) -> u64 {
    config.frame_bytes()
}

/// Total shared-buffer size for a configuration: frame + centroid array.
pub fn shared_buffer_bytes(config: &ShwfsConfig) -> u64 {
    centroid_buffer_offset(config) + config.subaperture_count() as u64 * 16
}

/// Converts centroids into wavefront slopes against the reference (the
/// undisplaced subaperture centres). This is the CPU routine; centroid
/// reads are traced in `space`.
pub fn compute_slopes(
    centroids: &[Centroid],
    config: &ShwfsConfig,
    tracer: &mut impl Tracer,
    space: MemSpace,
) -> Vec<Slope> {
    let sub = config.subaperture_px as f64;
    let mut slopes = Vec::with_capacity(centroids.len());
    for (i, c) in centroids.iter().enumerate() {
        tracer.read(centroid_buffer_offset(config) + i as u64 * 16, 16, space);
        let sx_idx = (i as u32 % config.grid_x) as f64;
        let sy_idx = (i as u32 / config.grid_x) as f64;
        let ref_x = sx_idx * sub + sub / 2.0;
        let ref_y = sy_idx * sub + sub / 2.0;
        slopes.push(Slope {
            sx: c.x - ref_x,
            sy: c.y - ref_y,
        });
    }
    slopes
}

/// Root-mean-square centroid error against the ground-truth spot centres.
pub fn rms_error(centroids: &[Centroid], truth: &[(f64, f64)]) -> f64 {
    assert_eq!(centroids.len(), truth.len(), "length mismatch");
    if centroids.is_empty() {
        return 0.0;
    }
    let sum_sq: f64 = centroids
        .iter()
        .zip(truth)
        .map(|(c, &(tx, ty))| (c.x - tx).powi(2) + (c.y - ty).powi(2))
        .sum();
    (sum_sq / centroids.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shwfs::frame::generate_frame;
    use icomm_trace::{CountingTracer, NullTracer};

    fn config() -> ShwfsConfig {
        ShwfsConfig {
            grid_x: 6,
            grid_y: 5,
            noise_amplitude: 0,
            ..ShwfsConfig::default()
        }
    }

    #[test]
    fn centroids_match_truth_noise_free() {
        let cfg = config();
        let (img, truth) = generate_frame(&cfg);
        let centroids = extract_centroids(&img, &cfg, 0, &mut NullTracer, MemSpace::Cached);
        let err = rms_error(&centroids, &truth);
        assert!(err < 0.05, "rms centroid error {err:.4} px");
    }

    #[test]
    fn centroids_robust_to_noise_with_threshold() {
        let cfg = ShwfsConfig {
            noise_amplitude: 12,
            ..config()
        };
        let (img, truth) = generate_frame(&cfg);
        let centroids = extract_centroids(&img, &cfg, 16, &mut NullTracer, MemSpace::Cached);
        let err = rms_error(&centroids, &truth);
        assert!(err < 0.15, "rms centroid error under noise {err:.4} px");
    }

    #[test]
    fn threshold_matters_under_noise() {
        let cfg = ShwfsConfig {
            noise_amplitude: 30,
            ..config()
        };
        let (img, truth) = generate_frame(&cfg);
        let with = extract_centroids(&img, &cfg, 40, &mut NullTracer, MemSpace::Cached);
        let without = extract_centroids(&img, &cfg, 0, &mut NullTracer, MemSpace::Cached);
        assert!(rms_error(&with, &truth) < rms_error(&without, &truth));
    }

    #[test]
    fn traced_traffic_matches_geometry() {
        let cfg = config();
        let (img, _) = generate_frame(&cfg);
        let mut tracer = CountingTracer::new();
        let _ = extract_centroids(&img, &cfg, 0, &mut tracer, MemSpace::Cached);
        let subs = cfg.subaperture_count() as u64;
        // One read per subaperture row + one result write per subaperture.
        assert_eq!(tracer.reads, subs * cfg.subaperture_px as u64);
        assert_eq!(tracer.writes, subs);
        assert_eq!(tracer.bytes, cfg.frame_bytes() + subs * 16);
    }

    #[test]
    fn slopes_recover_tilt() {
        let cfg = ShwfsConfig {
            defocus: 0.0,
            tilt: (1.5, -0.75),
            noise_amplitude: 0,
            ..config()
        };
        let (img, _) = generate_frame(&cfg);
        let centroids = extract_centroids(&img, &cfg, 0, &mut NullTracer, MemSpace::Cached);
        let slopes = compute_slopes(&centroids, &cfg, &mut NullTracer, MemSpace::Cached);
        let mean_sx: f64 = slopes.iter().map(|s| s.sx).sum::<f64>() / slopes.len() as f64;
        let mean_sy: f64 = slopes.iter().map(|s| s.sy).sum::<f64>() / slopes.len() as f64;
        assert!((mean_sx - 1.5).abs() < 0.05, "mean sx {mean_sx:.3}");
        assert!((mean_sy + 0.75).abs() < 0.05, "mean sy {mean_sy:.3}");
    }

    #[test]
    fn defocus_produces_radial_slopes() {
        let cfg = ShwfsConfig {
            defocus: 2.0,
            tilt: (0.0, 0.0),
            noise_amplitude: 0,
            ..config()
        };
        let (img, _) = generate_frame(&cfg);
        let centroids = extract_centroids(&img, &cfg, 0, &mut NullTracer, MemSpace::Cached);
        let slopes = compute_slopes(&centroids, &cfg, &mut NullTracer, MemSpace::Cached);
        // Left half slopes point left, right half point right.
        let left = slopes[0].sx;
        let right = slopes[(cfg.grid_x - 1) as usize].sx;
        assert!(
            left < 0.0 && right > 0.0,
            "left {left:.2}, right {right:.2}"
        );
    }

    #[test]
    fn dead_subaperture_reports_geometric_centre() {
        let cfg = config();
        let img = Image::new(cfg.frame_width(), cfg.frame_height()); // all dark
        let centroids = extract_centroids(&img, &cfg, 0, &mut NullTracer, MemSpace::Cached);
        assert_eq!(centroids[0].intensity, 0.0);
        assert_eq!(centroids[0].x, (cfg.subaperture_px / 2) as f64);
    }
}
