//! The Shack–Hartmann wavefront-sensor case study (adaptive optics).

pub mod centroid;
pub mod frame;
pub mod workload;

pub use centroid::{
    centroid_buffer_offset, compute_slopes, extract_centroids, rms_error, shared_buffer_bytes,
    Centroid, Slope,
};
pub use frame::{generate_frame, ShwfsConfig};
pub use workload::ShwfsApp;
