//! Synthetic Shack–Hartmann wavefront-sensor frames.
//!
//! A Shack–Hartmann sensor images a lenslet array: each lenslet focuses a
//! spot onto its subaperture of the camera, and the spot's displacement
//! from the subaperture centre encodes the local wavefront slope. The
//! generator renders one Gaussian spot per subaperture, displaced by a
//! configurable low-order aberration (tilt + defocus) plus optional photon
//! noise — a faithful stand-in for the camera frames the paper's first
//! case study processes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::image::Image;

/// Sensor geometry and scene parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShwfsConfig {
    /// Subapertures along x.
    pub grid_x: u32,
    /// Subapertures along y.
    pub grid_y: u32,
    /// Subaperture size in pixels (square).
    pub subaperture_px: u32,
    /// Gaussian spot standard deviation in pixels.
    pub spot_sigma: f64,
    /// Peak spot intensity (per pixel, before noise).
    pub spot_peak: u16,
    /// Wavefront tilt in pixels of displacement across the full aperture.
    pub tilt: (f64, f64),
    /// Defocus coefficient: radial displacement in pixels at the aperture
    /// edge.
    pub defocus: f64,
    /// Uniform background noise amplitude (0 disables noise).
    pub noise_amplitude: u16,
    /// Bytes per pixel as transferred/stored in the shared buffer (the
    /// paper's cameras are 8-bit; the numeric pipeline still computes in
    /// full precision).
    pub bytes_per_pixel: u32,
    /// RNG seed for the noise.
    pub seed: u64,
}

impl Default for ShwfsConfig {
    fn default() -> Self {
        ShwfsConfig {
            grid_x: 47,
            grid_y: 30,
            subaperture_px: 16,
            spot_sigma: 1.6,
            spot_peak: 200,
            tilt: (0.8, -0.5),
            defocus: 1.2,
            noise_amplitude: 6,
            bytes_per_pixel: 1,
            seed: 0x5311,
        }
    }
}

impl ShwfsConfig {
    /// Frame width in pixels.
    pub fn frame_width(&self) -> u32 {
        self.grid_x * self.subaperture_px
    }

    /// Frame height in pixels.
    pub fn frame_height(&self) -> u32 {
        self.grid_y * self.subaperture_px
    }

    /// Number of subapertures.
    pub fn subaperture_count(&self) -> u32 {
        self.grid_x * self.grid_y
    }

    /// Frame size in bytes as stored in the shared buffer.
    pub fn frame_bytes(&self) -> u64 {
        self.frame_width() as u64 * self.frame_height() as u64 * self.bytes_per_pixel as u64
    }

    /// Byte offset of pixel `(x, y)` inside the shared frame buffer.
    pub fn pixel_offset(&self, x: u32, y: u32) -> u64 {
        (y as u64 * self.frame_width() as u64 + x as u64) * self.bytes_per_pixel as u64
    }

    /// The true (noise-free) spot centre of subaperture `(sx, sy)` in
    /// frame coordinates, as displaced by the configured aberrations.
    pub fn true_spot_centre(&self, sx: u32, sy: u32) -> (f64, f64) {
        let sub = self.subaperture_px as f64;
        let cx = sx as f64 * sub + sub / 2.0;
        let cy = sy as f64 * sub + sub / 2.0;
        // Normalized pupil coordinates in [-1, 1].
        let u = (sx as f64 + 0.5) / self.grid_x as f64 * 2.0 - 1.0;
        let v = (sy as f64 + 0.5) / self.grid_y as f64 * 2.0 - 1.0;
        let dx = self.tilt.0 + self.defocus * u;
        let dy = self.tilt.1 + self.defocus * v;
        (cx + dx, cy + dy)
    }
}

/// Renders one frame; returns the image and the per-subaperture true spot
/// centres (ground truth for validating the centroid extractor).
pub fn generate_frame(config: &ShwfsConfig) -> (Image, Vec<(f64, f64)>) {
    let mut image = Image::new(config.frame_width(), config.frame_height());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut truth = Vec::with_capacity(config.subaperture_count() as usize);
    let sub = config.subaperture_px;
    let two_sigma_sq = 2.0 * config.spot_sigma * config.spot_sigma;
    for sy in 0..config.grid_y {
        for sx in 0..config.grid_x {
            let (cx, cy) = config.true_spot_centre(sx, sy);
            truth.push((cx, cy));
            let x0 = sx * sub;
            let y0 = sy * sub;
            for py in y0..y0 + sub {
                for px in x0..x0 + sub {
                    let dx = px as f64 + 0.5 - cx;
                    let dy = py as f64 + 0.5 - cy;
                    let g = (-(dx * dx + dy * dy) / two_sigma_sq).exp();
                    let spot = (config.spot_peak as f64 * g) as u16;
                    let noise = if config.noise_amplitude > 0 {
                        rng.gen_range(0..=config.noise_amplitude)
                    } else {
                        0
                    };
                    image.set(px, py, spot.saturating_add(noise));
                }
            }
        }
    }
    (image, truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ShwfsConfig {
        ShwfsConfig {
            grid_x: 4,
            grid_y: 3,
            subaperture_px: 16,
            noise_amplitude: 0,
            ..ShwfsConfig::default()
        }
    }

    #[test]
    fn frame_dimensions_follow_grid() {
        let cfg = small();
        let (img, truth) = generate_frame(&cfg);
        assert_eq!(img.width(), 64);
        assert_eq!(img.height(), 48);
        assert_eq!(truth.len(), 12);
    }

    #[test]
    fn spots_are_bright_at_true_centres() {
        let cfg = small();
        let (img, truth) = generate_frame(&cfg);
        for &(cx, cy) in &truth {
            let v = img.get(cx as u32, cy as u32);
            assert!(v > cfg.spot_peak / 2, "dim spot at ({cx:.1},{cy:.1}): {v}");
        }
    }

    #[test]
    fn frame_bytes_follow_bpp() {
        let mut cfg = small();
        cfg.bytes_per_pixel = 1;
        assert_eq!(cfg.frame_bytes(), 64 * 48);
        cfg.bytes_per_pixel = 2;
        assert_eq!(cfg.frame_bytes(), 64 * 48 * 2);
        assert_eq!(cfg.pixel_offset(1, 1), (64 + 1) * 2);
    }

    #[test]
    fn noise_free_background_is_dark() {
        let cfg = small();
        let (img, _) = generate_frame(&cfg);
        // A corner far from any spot centre should be near zero.
        assert!(img.get(0, 0) < cfg.spot_peak / 10);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = ShwfsConfig {
            noise_amplitude: 50,
            ..small()
        };
        let (a, _) = generate_frame(&cfg);
        let (b, _) = generate_frame(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn tilt_moves_all_spots_uniformly() {
        let mut cfg = small();
        cfg.defocus = 0.0;
        cfg.tilt = (2.0, 0.0);
        let sub = cfg.subaperture_px as f64;
        for sy in 0..cfg.grid_y {
            for sx in 0..cfg.grid_x {
                let (cx, _) = cfg.true_spot_centre(sx, sy);
                let nominal = sx as f64 * sub + sub / 2.0;
                assert!((cx - nominal - 2.0).abs() < 1e-12);
            }
        }
    }
}
