//! Named co-run tenant mixes built from the paper's applications.
//!
//! A *mix* is the unit the multi-tenant scheduler (`icomm-sched`)
//! operates on: two to four tenants, each a real application workload
//! plus its real-time contract (a period/deadline expressed as a factor
//! over the tenant's measured solo wall time, and a priority). The
//! factors are device-independent on purpose — the same mix is tight on
//! a Nano and comfortable on a Xavier, exactly like a fixed frame-rate
//! requirement ported across boards.
//!
//! The mixes escalate in contention:
//!
//! - [`duo`] — SH-WFS beside lane detection, generous deadlines: the
//!   friendly baseline.
//! - [`trio`] — all three paper apps co-resident.
//! - [`quad`] — the trio plus a reuse-heavy lane variant (an
//!   intersection burst pinned on), filling [`MAX_TENANTS_PER_MIX`].
//! - [`contended`] — a deadline-tight lane pipeline beside a
//!   relocalizing ORB burst that floods the DRAM channel: the mix the
//!   FIFO baseline misses deadlines on and bandwidth budgeting rescues.
//! - [`pressure`] — the contention axis rotated from bandwidth to
//!   *capacity*: HD variants of lane and ORB whose double buffers do
//!   not fit a tight memory budget together — admission has to demote
//!   them toward single-copy models to admit the whole mix.

use icomm_models::{CommModelKind, Workload};

use crate::phased::{gpu_burst, reuse};
use crate::{LaneApp, OrbApp, ShwfsApp};

/// Mixes are capped at what the joint assignment can enumerate.
pub const MAX_TENANTS_PER_MIX: usize = 4;

/// The named mixes, in escalating contention order.
pub const MIX_NAMES: [&str; 5] = ["duo", "trio", "quad", "contended", "pressure"];

/// One tenant of a co-run mix: a workload plus its real-time contract.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant name, unique within the mix.
    pub name: String,
    /// The tenant's workload (one released job).
    pub workload: Workload,
    /// The model the application ships with before tuning.
    pub current: CommModelKind,
    /// Period (= implicit deadline) as a multiple of the tenant's
    /// measured solo wall time under its assigned model. `2.0` leaves
    /// half the period idle when alone; values near `1.0` leave no slack
    /// for interference.
    pub period_factor: f64,
    /// Scheduling priority; smaller is more important.
    pub priority: u8,
}

fn spec(
    name: &str,
    workload: Workload,
    current: CommModelKind,
    period_factor: f64,
    priority: u8,
) -> TenantSpec {
    TenantSpec {
        name: name.to_string(),
        workload,
        current,
        period_factor,
        priority,
    }
}

/// SH-WFS beside lane detection with generous deadlines.
pub fn duo() -> Vec<TenantSpec> {
    vec![
        spec(
            "shwfs",
            ShwfsApp::default().workload(),
            CommModelKind::StandardCopy,
            2.4,
            0,
        ),
        spec(
            "lane",
            LaneApp::default().workload(),
            CommModelKind::StandardCopy,
            2.4,
            1,
        ),
    ]
}

/// All three paper applications co-resident.
pub fn trio() -> Vec<TenantSpec> {
    vec![
        spec(
            "shwfs",
            ShwfsApp::default().workload(),
            CommModelKind::StandardCopy,
            2.6,
            0,
        ),
        spec(
            "orb",
            OrbApp::default().workload(),
            CommModelKind::StandardCopy,
            2.6,
            1,
        ),
        spec(
            "lane",
            LaneApp::default().workload(),
            CommModelKind::StandardCopy,
            2.6,
            2,
        ),
    ]
}

/// The trio plus a reuse-heavy lane variant — an intersection burst
/// pinned on as a fourth tenant.
pub fn quad() -> Vec<TenantSpec> {
    let lane = LaneApp::default().workload();
    let mut mix = trio();
    for t in &mut mix {
        t.period_factor = 3.0;
    }
    mix.push(spec(
        "lane-burst",
        reuse(&lane, "burst", 8),
        CommModelKind::StandardCopy,
        3.0,
        3,
    ));
    mix
}

/// A deadline-tight lane pipeline beside a relocalizing ORB burst that
/// floods the DRAM channel, plus SH-WFS with moderate reuse caught in
/// the crossfire. FIFO misses deadlines here; a bandwidth budget on the
/// burst restores them.
pub fn contended() -> Vec<TenantSpec> {
    let orb = OrbApp::default().workload();
    let shwfs = ShwfsApp::default().workload();
    vec![
        spec(
            "lane",
            LaneApp::default().workload(),
            CommModelKind::StandardCopy,
            1.35,
            0,
        ),
        spec(
            "shwfs-track",
            reuse(&shwfs, "track", 4),
            CommModelKind::ZeroCopy,
            2.0,
            1,
        ),
        spec(
            "orb-reloc",
            gpu_burst(&orb, "reloc", 24),
            CommModelKind::ZeroCopy,
            2.2,
            2,
        ),
    ]
}

/// The memory-heavy mix: HD lane detection and a high-resolution ORB
/// front-end beside the stock SH-WFS loop. Per-frame buffers in the
/// megabytes make the *sum of footprints* the binding constraint long
/// before the DRAM channel saturates — under a tight `--mem-cap` the
/// double-buffered optima do not fit together, and admission only
/// succeeds by demoting the HD tenants toward single-copy models.
pub fn pressure() -> Vec<TenantSpec> {
    let mut lane_hd = LaneApp::default();
    lane_hd.road.width = 1280;
    lane_hd.road.height = 720;
    let mut orb_hd = OrbApp::default();
    orb_hd.scene.width = 1280;
    orb_hd.scene.height = 960;
    vec![
        spec(
            "lane-hd",
            lane_hd.workload(),
            CommModelKind::StandardCopy,
            2.8,
            0,
        ),
        spec(
            "orb-hd",
            orb_hd.workload(),
            CommModelKind::StandardCopy,
            3.0,
            1,
        ),
        spec(
            "shwfs",
            ShwfsApp::default().workload(),
            CommModelKind::StandardCopy,
            3.0,
            2,
        ),
    ]
}

/// Resolves a mix by name.
///
/// # Errors
///
/// Returns the list of valid names when `name` is unknown.
pub fn mix_by_name(name: &str) -> Result<Vec<TenantSpec>, String> {
    match name {
        "duo" => Ok(duo()),
        "trio" => Ok(trio()),
        "quad" => Ok(quad()),
        "contended" => Ok(contended()),
        "pressure" => Ok(pressure()),
        other => Err(format!(
            "unknown mix '{other}' (expected one of: {})",
            MIX_NAMES.join(", ")
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_named_mix_resolves_and_is_well_formed() {
        for name in MIX_NAMES {
            let mix = mix_by_name(name).expect("named mix resolves");
            assert!(
                (2..=MAX_TENANTS_PER_MIX).contains(&mix.len()),
                "{name}: {} tenants",
                mix.len()
            );
            for t in &mix {
                assert!(t.period_factor > 1.0, "{name}/{}", t.name);
                assert!(t.workload.gpu.shared_accesses.validate().is_ok());
            }
            // Names are unique within the mix.
            let mut names: Vec<&str> = mix.iter().map(|t| t.name.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), mix.len(), "{name}: duplicate tenant names");
        }
    }

    #[test]
    fn unknown_mix_lists_options() {
        let err = mix_by_name("nope").unwrap_err();
        assert!(err.contains("duo") && err.contains("contended"), "{err}");
    }

    #[test]
    fn contended_mix_has_a_tight_tenant_and_a_burst() {
        let mix = contended();
        assert!(mix.iter().any(|t| t.period_factor < 1.5));
        let lane = &mix[0];
        let burst = mix.iter().find(|t| t.name == "orb-reloc").expect("burst");
        assert!(
            burst.workload.gpu.shared_accesses.bytes()
                > 8 * lane.workload.gpu.shared_accesses.bytes(),
            "burst should dominate the channel"
        );
    }

    #[test]
    fn mixes_are_deterministic() {
        assert_eq!(contended(), contended());
        assert_eq!(quad(), quad());
        assert_eq!(pressure(), pressure());
    }

    #[test]
    fn pressure_mix_is_memory_heavy() {
        let hd: u64 = pressure()
            .iter()
            .map(|t| t.workload.bytes_exchanged().as_u64())
            .sum();
        let baseline: u64 = contended()
            .iter()
            .map(|t| t.workload.bytes_exchanged().as_u64())
            .sum();
        assert!(
            hd > 3 * baseline,
            "pressure moves {hd} bytes vs contended's {baseline}: the HD \
             frames should dominate"
        );
    }
}
