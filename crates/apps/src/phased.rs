//! Phased variants of the case studies — the inputs of the online
//! adaptation layer (`icomm-adapt`).
//!
//! The paper tunes each application as if it were stationary. Deployed
//! pipelines are not: the same process alternates between regimes whose
//! cache behaviour — and therefore whose best communication model —
//! differs. Each variant here sequences three regimes of the *same*
//! application into a [`PhasedWorkload`]:
//!
//! 1. a **cache-light** streaming regime (the traced base workload: one
//!    pass over the shared buffer per frame);
//! 2. a **cache-heavy** burst regime (the kernel re-reads the shared
//!    buffer many times, pushing the Eqn. 2 usage past the device
//!    threshold);
//! 3. a **balanced** regime with modest reuse, back near the zone
//!    boundary from below.
//!
//! For the SH-WFS and lane pipelines only the GPU's shared-buffer access
//! pattern changes between phases — payloads, CPU work, and arithmetic
//! stay fixed, exactly the drift an online controller has to catch from
//! counters alone. The ORB front-end is CPU-dominated, so reuse alone
//! barely moves its bottom line; its relocalization burst additionally
//! idles the CPU (the tracker blocks on the GPU brute-force matcher),
//! which is what actually happens when a SLAM system loses tracking.

use icomm_models::{CpuPhase, PhasedWorkload, Workload, WorkloadPhase};
use icomm_trace::Pattern;

use crate::{LaneApp, OrbApp, ShwfsApp};

/// Clones `base` with the GPU shared traffic repeated `times` over and a
/// phase-suffixed name. Shared with the co-run mixes ([`crate::corun`]).
pub(crate) fn reuse(base: &Workload, suffix: &str, times: u32) -> Workload {
    let mut w = base.clone();
    w.name = format!("{}/{suffix}", base.name);
    w.gpu.shared_accesses = Pattern::Repeat {
        body: Box::new(base.gpu.shared_accesses.clone()),
        times,
    };
    w
}

/// [`reuse`] with the CPU idled: a pure-GPU burst (the CPU blocks on the
/// kernel's result and contributes no work of its own).
pub(crate) fn gpu_burst(base: &Workload, suffix: &str, times: u32) -> Workload {
    let mut w = reuse(base, suffix, times);
    w.cpu = CpuPhase::idle();
    w
}

/// Assembles the three-phase schedule shared by all variants.
fn three_phase(
    name: String,
    phases: [(&str, Workload); 3],
    windows_per_phase: u32,
) -> PhasedWorkload {
    assert!(windows_per_phase > 0, "phases need at least one window");
    PhasedWorkload::new(
        name,
        phases
            .into_iter()
            .map(|(suffix, workload)| WorkloadPhase {
                name: suffix.to_string(),
                windows: windows_per_phase,
                workload,
            })
            .collect(),
    )
}

impl ShwfsApp {
    /// Three-phase SH-WFS run: open-loop acquisition, a calibration burst
    /// that re-reads each frame against reference spot grids, then
    /// closed-loop tracking with light reuse.
    ///
    /// # Panics
    ///
    /// Panics when `windows_per_phase` is zero.
    pub fn phased_workload(&self, windows_per_phase: u32) -> PhasedWorkload {
        let base = self.workload();
        three_phase(
            format!("{}/phased", base.name),
            [
                ("acquire", reuse(&base, "acquire", 1)),
                ("calibrate", reuse(&base, "calibrate", 16)),
                ("closed-loop", reuse(&base, "closed-loop", 2)),
            ],
            windows_per_phase,
        )
    }
}

impl OrbApp {
    /// Three-phase ORB front-end: frame ingest, a relocalization burst
    /// (the CPU tracker blocks while brute-force descriptor matching
    /// re-walks the shared image pyramid on the GPU), then steady
    /// tracking.
    ///
    /// # Panics
    ///
    /// Panics when `windows_per_phase` is zero.
    pub fn phased_workload(&self, windows_per_phase: u32) -> PhasedWorkload {
        let base = self.workload();
        three_phase(
            format!("{}/phased", base.name),
            [
                ("ingest", reuse(&base, "ingest", 1)),
                ("relocalize", gpu_burst(&base, "relocalize", 64)),
                ("track", reuse(&base, "track", 2)),
            ],
            windows_per_phase,
        )
    }
}

impl LaneApp {
    /// Three-phase lane detection: highway cruise, a dense-intersection
    /// burst (the Hough stage re-scans the edge map), then cruise with
    /// light reuse.
    ///
    /// # Panics
    ///
    /// Panics when `windows_per_phase` is zero.
    pub fn phased_workload(&self, windows_per_phase: u32) -> PhasedWorkload {
        let base = self.workload();
        three_phase(
            format!("{}/phased", base.name),
            [
                ("highway", reuse(&base, "highway", 1)),
                ("intersection", reuse(&base, "intersection", 16)),
                ("cruise", reuse(&base, "cruise", 2)),
            ],
            windows_per_phase,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_build_three_phases() {
        let phased = [
            ShwfsApp::default().phased_workload(4),
            OrbApp::default().phased_workload(4),
            LaneApp::default().phased_workload(4),
        ];
        for p in &phased {
            assert_eq!(p.phases.len(), 3, "{}", p.name);
            assert_eq!(p.total_windows(), 12);
            assert!(p.name.ends_with("/phased"));
        }
    }

    #[test]
    fn burst_phase_multiplies_shared_traffic_only() {
        let p = ShwfsApp::default().phased_workload(2);
        let light = &p.phases[0].workload;
        let heavy = &p.phases[1].workload;
        assert_eq!(
            heavy.gpu.shared_accesses.bytes(),
            16 * light.gpu.shared_accesses.bytes()
        );
        // Payloads and CPU side are phase-invariant.
        assert_eq!(heavy.bytes_to_gpu, light.bytes_to_gpu);
        assert_eq!(heavy.bytes_from_gpu, light.bytes_from_gpu);
        assert_eq!(heavy.cpu, light.cpu);
        assert_eq!(heavy.gpu.compute_work, light.gpu.compute_work);
    }

    #[test]
    fn orb_relocalization_is_a_pure_gpu_burst() {
        let p = OrbApp::default().phased_workload(2);
        let ingest = &p.phases[0].workload;
        let reloc = &p.phases[1].workload;
        assert_eq!(reloc.cpu, icomm_models::CpuPhase::idle());
        assert_eq!(
            reloc.gpu.shared_accesses.bytes(),
            64 * ingest.gpu.shared_accesses.bytes()
        );
        // The payloads still cross: relocalization matches against the
        // same shared pyramid the ingest phase uploads.
        assert_eq!(reloc.bytes_to_gpu, ingest.bytes_to_gpu);
    }

    #[test]
    fn phase_names_distinguish_workloads() {
        let p = LaneApp::default().phased_workload(1);
        assert!(p.phases[0].workload.name.ends_with("/highway"));
        assert!(p.phases[1].workload.name.ends_with("/intersection"));
        assert!(p.phases[2].workload.name.ends_with("/cruise"));
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn zero_windows_rejected() {
        let _ = OrbApp::default().phased_workload(0);
    }
}
