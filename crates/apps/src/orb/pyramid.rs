//! Image pyramids for multi-scale feature detection.
//!
//! ORB detects features at several scales by running FAST on successively
//! downsampled copies of the frame. The pyramid here uses a 2×2 box
//! filter per octave — the same cheap scheme embedded front-ends use —
//! and is what the tracker-side workload reads when matching patches.

use serde::{Deserialize, Serialize};

use crate::image::Image;

/// A multi-scale image pyramid (level 0 is the full-resolution frame).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pyramid {
    levels: Vec<Image>,
}

impl Pyramid {
    /// Builds a pyramid with `levels` levels (each half the linear size
    /// of the previous).
    ///
    /// # Panics
    ///
    /// Panics if `levels` is zero or if the image halves below 2×2 before
    /// the requested level count is reached.
    pub fn build(base: &Image, levels: u32) -> Self {
        assert!(levels > 0, "a pyramid needs at least one level");
        let mut all = Vec::with_capacity(levels as usize);
        all.push(base.clone());
        for _ in 1..levels {
            let prev = all.last().expect("non-empty");
            assert!(
                prev.width() >= 4 && prev.height() >= 4,
                "image too small for the requested pyramid depth"
            );
            all.push(downsample(prev));
        }
        Pyramid { levels: all }
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the pyramid is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The image at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn level(&self, level: usize) -> &Image {
        &self.levels[level]
    }

    /// Total pixel-buffer bytes across all levels.
    pub fn total_bytes(&self) -> u64 {
        self.levels.iter().map(Image::size_bytes).sum()
    }

    /// The linear scale factor of `level` relative to level 0.
    pub fn scale(&self, level: usize) -> f64 {
        2f64.powi(level as i32)
    }
}

/// 2×2 box-filter downsampling.
pub fn downsample(image: &Image) -> Image {
    let w = image.width() / 2;
    let h = image.height() / 2;
    let mut out = Image::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let sum = image.get(2 * x, 2 * y) as u32
                + image.get(2 * x + 1, 2 * y) as u32
                + image.get(2 * x, 2 * y + 1) as u32
                + image.get(2 * x + 1, 2 * y + 1) as u32;
            out.set(x, y, (sum / 4) as u16);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(w: u32, h: u32) -> Image {
        let mut img = Image::new(w, h);
        for y in 0..h {
            for x in 0..w {
                img.set(x, y, (x + y) as u16);
            }
        }
        img
    }

    #[test]
    fn pyramid_halves_each_level() {
        let p = Pyramid::build(&gradient(64, 48), 3);
        assert_eq!(p.len(), 3);
        assert_eq!(p.level(0).width(), 64);
        assert_eq!(p.level(1).width(), 32);
        assert_eq!(p.level(2).width(), 16);
        assert_eq!(p.level(2).height(), 12);
    }

    #[test]
    fn downsampling_preserves_mean() {
        let img = gradient(64, 64);
        let down = downsample(&img);
        assert!((img.mean() - down.mean()).abs() < 1.5);
    }

    #[test]
    fn box_filter_averages_quads() {
        let mut img = Image::new(4, 2);
        for (i, v) in [10u16, 20, 30, 40, 50, 60, 70, 80].iter().enumerate() {
            img.set((i % 4) as u32, (i / 4) as u32, *v);
        }
        let down = downsample(&img);
        assert_eq!(down.get(0, 0), (10 + 20 + 50 + 60) / 4);
        assert_eq!(down.get(1, 0), (30 + 40 + 70 + 80) / 4);
    }

    #[test]
    fn total_bytes_sums_levels() {
        let p = Pyramid::build(&gradient(64, 64), 3);
        assert_eq!(p.total_bytes(), (64 * 64 + 32 * 32 + 16 * 16) * 2);
    }

    #[test]
    fn scale_is_power_of_two() {
        let p = Pyramid::build(&gradient(64, 64), 3);
        assert_eq!(p.scale(0), 1.0);
        assert_eq!(p.scale(2), 4.0);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_excessive_depth() {
        let _ = Pyramid::build(&gradient(8, 8), 4);
    }
}
