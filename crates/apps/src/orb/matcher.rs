//! Brute-force descriptor matching with Lowe's ratio test.
//!
//! The tracker side of the ORB pipeline: every query descriptor is
//! compared against all reference descriptors by Hamming distance and
//! accepted only when the best match is sufficiently better than the
//! runner-up. These comparisons are exactly the small random reads the
//! [`crate::orb::workload::OrbApp`] descriptor models — the traffic that
//! collapses zero copy on non-I/O-coherent devices.

use serde::{Deserialize, Serialize};

use crate::orb::brief::OrientedKeypoint;

/// One accepted correspondence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Match {
    /// Index into the query set.
    pub query: usize,
    /// Index into the reference set.
    pub reference: usize,
    /// Hamming distance of the accepted pair.
    pub distance: u32,
}

/// Matcher parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatcherConfig {
    /// Reject matches whose distance exceeds this.
    pub max_distance: u32,
    /// Lowe ratio: best must be below `ratio * second_best`.
    pub ratio: f64,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        MatcherConfig {
            max_distance: 64,
            ratio: 0.8,
        }
    }
}

/// Matches `query` descriptors against `reference` descriptors.
pub fn match_descriptors(
    query: &[OrientedKeypoint],
    reference: &[OrientedKeypoint],
    config: &MatcherConfig,
) -> Vec<Match> {
    let mut matches = Vec::new();
    for (qi, q) in query.iter().enumerate() {
        let mut best_index = usize::MAX;
        let mut best = u32::MAX;
        let mut second = u32::MAX;
        for (ri, r) in reference.iter().enumerate() {
            let d = q.descriptor.distance(&r.descriptor);
            if d < best {
                second = best;
                best = d;
                best_index = ri;
            } else if d < second {
                second = d;
            }
        }
        if best_index == usize::MAX {
            continue;
        }
        let passes_ratio = second == u32::MAX || (best as f64) < config.ratio * second as f64;
        if best <= config.max_distance && passes_ratio {
            matches.push(Match {
                query: qi,
                reference: best_index,
                distance: best,
            });
        }
    }
    matches
}

/// Fraction of matches whose spatial displacement agrees with the modal
/// displacement (a cheap inlier test for pure-translation scenes).
pub fn translation_consistency(
    matches: &[Match],
    query: &[OrientedKeypoint],
    reference: &[OrientedKeypoint],
    tolerance_px: f64,
) -> f64 {
    if matches.is_empty() {
        return 0.0;
    }
    let displacements: Vec<(f64, f64)> = matches
        .iter()
        .map(|m| {
            let q = &query[m.query].keypoint;
            let r = &reference[m.reference].keypoint;
            (q.x as f64 - r.x as f64, q.y as f64 - r.y as f64)
        })
        .collect();
    // Use the median displacement as the model.
    let mut xs: Vec<f64> = displacements.iter().map(|d| d.0).collect();
    let mut ys: Vec<f64> = displacements.iter().map(|d| d.1).collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    ys.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let (mx, my) = (xs[xs.len() / 2], ys[ys.len() / 2]);
    let inliers = displacements
        .iter()
        .filter(|(dx, dy)| (dx - mx).abs() <= tolerance_px && (dy - my).abs() <= tolerance_px)
        .count();
    inliers as f64 / matches.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;
    use crate::orb::brief::{describe, has_full_patch, test_pattern};
    use crate::orb::fast::detect;
    use crate::orb::scene::{generate_scene, SceneConfig};
    use icomm_soc::hierarchy::MemSpace;
    use icomm_trace::NullTracer;

    fn features(image: &Image) -> Vec<OrientedKeypoint> {
        let pattern = test_pattern(7);
        detect(image, 24, &mut NullTracer, MemSpace::Cached)
            .iter()
            .filter(|kp| has_full_patch(image, kp))
            .map(|kp| describe(image, kp, &pattern))
            .collect()
    }

    fn shift_image(image: &Image, dx: u32) -> Image {
        let mut out = Image::new(image.width(), image.height());
        for y in 0..image.height() {
            for x in 0..image.width() - dx {
                out.set(x + dx, y, image.get(x, y));
            }
        }
        out
    }

    #[test]
    fn self_matching_is_perfect() {
        let (scene, _) = generate_scene(&SceneConfig {
            width: 256,
            height: 192,
            rectangles: 10,
            ..SceneConfig::default()
        });
        let f = features(&scene);
        assert!(f.len() >= 8, "need features, got {}", f.len());
        let matches = match_descriptors(&f, &f, &MatcherConfig::default());
        // Every feature matches itself at distance 0.
        assert_eq!(matches.len(), f.len());
        for m in &matches {
            assert_eq!(m.query, m.reference);
            assert_eq!(m.distance, 0);
        }
    }

    #[test]
    fn matches_survive_translation() {
        let (scene, _) = generate_scene(&SceneConfig {
            width: 256,
            height: 192,
            rectangles: 10,
            noise_amplitude: 0,
            ..SceneConfig::default()
        });
        let shifted = shift_image(&scene, 7);
        let q = features(&shifted);
        let r = features(&scene);
        let matches = match_descriptors(&q, &r, &MatcherConfig::default());
        assert!(
            matches.len() >= r.len() / 3,
            "too few matches: {} of {}",
            matches.len(),
            r.len()
        );
        let consistency = translation_consistency(&matches, &q, &r, 2.0);
        assert!(
            consistency > 0.6,
            "inlier fraction {consistency:.2} too low"
        );
    }

    #[test]
    fn ratio_test_rejects_ambiguous_matches() {
        let (scene, _) = generate_scene(&SceneConfig {
            width: 256,
            height: 192,
            rectangles: 10,
            ..SceneConfig::default()
        });
        let f = features(&scene);
        let strict = MatcherConfig {
            ratio: 0.1,
            ..MatcherConfig::default()
        };
        let loose = MatcherConfig {
            ratio: 0.99,
            ..MatcherConfig::default()
        };
        let n_strict = match_descriptors(&f, &f, &strict).len();
        let n_loose = match_descriptors(&f, &f, &loose).len();
        assert!(n_strict <= n_loose);
    }

    #[test]
    fn empty_inputs_produce_no_matches() {
        let matches = match_descriptors(&[], &[], &MatcherConfig::default());
        assert!(matches.is_empty());
        assert_eq!(translation_consistency(&matches, &[], &[], 2.0), 0.0);
    }
}
