//! FAST-9 corner detection with non-maximum suppression.
//!
//! The segment-test detector of Rosten & Drummond, as used by ORB-SLAM's
//! front end: a pixel is a corner when at least 9 contiguous pixels of the
//! 16-pixel Bresenham circle of radius 3 are all brighter than the centre
//! plus a threshold, or all darker than the centre minus it. Corner
//! strength is the sum of absolute differences over the contiguous arc,
//! and a 3×3 non-maximum suppression keeps local maxima only.

use serde::{Deserialize, Serialize};

use icomm_soc::hierarchy::MemSpace;
use icomm_trace::Tracer;

use crate::image::Image;

/// The 16 circle offsets (dx, dy) of radius 3, in clockwise order.
pub const CIRCLE: [(i32, i32); 16] = [
    (0, -3),
    (1, -3),
    (2, -2),
    (3, -1),
    (3, 0),
    (3, 1),
    (2, 2),
    (1, 3),
    (0, 3),
    (-1, 3),
    (-2, 2),
    (-3, 1),
    (-3, 0),
    (-3, -1),
    (-2, -2),
    (-1, -3),
];

/// Minimum contiguous arc length for FAST-9.
pub const ARC: usize = 9;

/// A detected corner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Keypoint {
    /// x position in pixels.
    pub x: u32,
    /// y position in pixels.
    pub y: u32,
    /// Corner strength (SAD over the qualifying arc).
    pub score: f64,
}

fn corner_score(image: &Image, x: u32, y: u32, threshold: u16) -> Option<f64> {
    let centre = image.get(x, y) as i32;
    let t = threshold as i32;
    // Classify every circle pixel: +1 brighter, -1 darker, 0 similar.
    let mut class = [0i8; 16];
    let mut diff = [0i32; 16];
    for (i, &(dx, dy)) in CIRCLE.iter().enumerate() {
        let px = (x as i32 + dx) as u32;
        let py = (y as i32 + dy) as u32;
        let v = image.get(px, py) as i32;
        diff[i] = (v - centre).abs();
        class[i] = if v > centre + t {
            1
        } else if v < centre - t {
            -1
        } else {
            0
        };
    }
    // Longest contiguous run (circularly) of same non-zero class.
    for target in [1i8, -1] {
        let mut best_run = 0usize;
        let mut best_sum = 0i32;
        let mut run = 0usize;
        let mut sum = 0i32;
        // Walk twice around the circle to handle wrap-around runs.
        for i in 0..32 {
            let idx = i % 16;
            if class[idx] == target {
                run += 1;
                sum += diff[idx];
                if run > best_run {
                    best_run = run;
                    best_sum = sum;
                }
                if run >= 16 {
                    break;
                }
            } else {
                run = 0;
                sum = 0;
            }
        }
        if best_run >= ARC {
            return Some(best_sum as f64);
        }
    }
    None
}

/// Detects FAST-9 corners with 3×3 non-maximum suppression.
///
/// Circle-pixel reads are traced in `space` (one small read per probed
/// pixel, the sliding-window access pattern that makes the ORB kernel
/// GPU-cache dependent).
pub fn detect(
    image: &Image,
    threshold: u16,
    tracer: &mut impl Tracer,
    space: MemSpace,
) -> Vec<Keypoint> {
    let w = image.width();
    let h = image.height();
    let mut scores = vec![0.0f64; (w * h) as usize];
    let mut candidates = Vec::new();
    for y in 3..h - 3 {
        for x in 3..w - 3 {
            // The detector reads the centre and its circle; trace it as one
            // window read (the 7x7 neighbourhood line the GPU fetches).
            tracer.read(image.byte_offset(x - 3, y), 8, space);
            if let Some(score) = corner_score(image, x, y, threshold) {
                scores[(y * w + x) as usize] = score;
                candidates.push((x, y, score));
            }
        }
    }
    // 3x3 non-maximum suppression.
    let mut keypoints = Vec::new();
    'cand: for &(x, y, score) in &candidates {
        for dy in -1i32..=1 {
            for dx in -1i32..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let nx = (x as i32 + dx) as u32;
                let ny = (y as i32 + dy) as u32;
                if nx < w && ny < h {
                    let other = scores[(ny * w + nx) as usize];
                    if other > score || (other == score && (ny, nx) < (y, x)) {
                        continue 'cand;
                    }
                }
            }
        }
        keypoints.push(Keypoint { x, y, score });
    }
    keypoints
}

#[cfg(test)]
mod tests {
    use super::*;
    use icomm_trace::NullTracer;

    fn bright_square_image() -> Image {
        let mut img = Image::new(64, 64);
        for y in 20..44 {
            for x in 20..44 {
                img.set(x, y, 200);
            }
        }
        img
    }

    #[test]
    fn detects_square_corners() {
        let img = bright_square_image();
        let kps = detect(&img, 30, &mut NullTracer, MemSpace::Cached);
        assert!(!kps.is_empty(), "square corners must be detected");
        // Every keypoint should be near one of the four square corners.
        let corners = [(20u32, 20u32), (43, 20), (20, 43), (43, 43)];
        for kp in &kps {
            let near = corners.iter().any(|&(cx, cy)| {
                (kp.x as i32 - cx as i32).abs() <= 3 && (kp.y as i32 - cy as i32).abs() <= 3
            });
            assert!(near, "keypoint ({}, {}) far from any corner", kp.x, kp.y);
        }
    }

    #[test]
    fn flat_image_has_no_corners() {
        let mut img = Image::new(64, 64);
        for y in 0..64 {
            for x in 0..64 {
                img.set(x, y, 100);
            }
        }
        let kps = detect(&img, 20, &mut NullTracer, MemSpace::Cached);
        assert!(kps.is_empty());
    }

    #[test]
    fn straight_edge_is_not_a_corner() {
        // A vertical edge: circle arcs are at most ~half bright, below 9.
        let mut img = Image::new(64, 64);
        for y in 0..64 {
            for x in 32..64 {
                img.set(x, y, 200);
            }
        }
        let kps = detect(&img, 30, &mut NullTracer, MemSpace::Cached);
        assert!(kps.is_empty(), "edges must not fire FAST-9: {kps:?}");
    }

    #[test]
    fn nms_keeps_local_maxima_only() {
        let img = bright_square_image();
        let kps = detect(&img, 30, &mut NullTracer, MemSpace::Cached);
        // No two keypoints within the 3x3 suppression window.
        for (i, a) in kps.iter().enumerate() {
            for b in kps.iter().skip(i + 1) {
                let close =
                    (a.x as i32 - b.x as i32).abs() <= 1 && (a.y as i32 - b.y as i32).abs() <= 1;
                assert!(!close, "NMS failed: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn higher_threshold_fewer_corners() {
        let mut img = bright_square_image();
        // Add small bumps that a low threshold picks up.
        img.set(10, 10, 40);
        img.set(50, 12, 40);
        let low = detect(&img, 10, &mut NullTracer, MemSpace::Cached).len();
        let high = detect(&img, 60, &mut NullTracer, MemSpace::Cached).len();
        assert!(high <= low);
    }
}
