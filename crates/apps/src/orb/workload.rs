//! Mapping the ORB-SLAM front-end onto an `icomm` workload.
//!
//! Per camera frame:
//!
//! 1. **GPU kernel**: FAST detection + orientation + rBRIEF description
//!    over the image. The detector slides overlapping windows across every
//!    pixel, re-reading each pixel many times — the reuse that makes the
//!    kernel *GPU-cache dependent* (the paper profiles 25.3 % / 20.1 %
//!    GPU cache usage on TX2 / Xavier).
//! 2. **CPU (tracker)**: pose tracking and map matching — heavy host
//!    arithmetic plus a large number of small random reads of the image
//!    pyramid and descriptors in the shared buffer (patch comparisons).
//!    Under zero copy on a non-I/O-coherent device those little reads go
//!    uncached, which is what collapses ORB-SLAM on the TX2 (−744 % in
//!    the paper's Table V).
//!
//! The GPU traffic multiplier is sized from the traced real detector: the
//! number of window reads per pixel is measured, not guessed.

use serde::{Deserialize, Serialize};

use icomm_models::{CpuPhase, GpuPhase, Workload};
use icomm_soc::cache::AccessKind;
use icomm_soc::cpu::{CpuOpClass, OpCount};
use icomm_soc::hierarchy::MemSpace;
use icomm_soc::units::ByteSize;
use icomm_trace::{CountingTracer, Pattern};

use crate::orb::brief::{describe, has_full_patch, test_pattern};
use crate::orb::fast::detect;
use crate::orb::scene::{generate_scene, SceneConfig};

/// Application-level parameters of the ORB case study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrbApp {
    /// Scene/camera configuration.
    pub scene: SceneConfig,
    /// FAST detection threshold.
    pub fast_threshold: u16,
    /// GPU instruction-cycles per pixel (segment test + orientation +
    /// descriptor amortized over the image).
    pub cycles_per_pixel: u64,
    /// Host tracking arithmetic per frame.
    pub host_ops: u64,
    /// Small random pyramid/descriptor reads the tracker performs per
    /// frame (patch comparisons against the local map).
    pub matching_reads: u64,
    /// Pyramid scale levels kept in the shared buffer.
    pub pyramid_levels: u32,
    /// Frames to simulate.
    pub iterations: u32,
}

impl Default for OrbApp {
    fn default() -> Self {
        OrbApp {
            scene: SceneConfig::default(),
            fast_threshold: 24,
            cycles_per_pixel: 220,
            host_ops: 60_000_000,
            matching_reads: 1_000_000,
            pyramid_levels: 4,
            iterations: 2,
        }
    }
}

impl OrbApp {
    /// Image size in bytes (8-bit pixels).
    pub fn image_bytes(&self) -> u64 {
        self.scene.width as u64 * self.scene.height as u64
    }

    /// Pyramid size in bytes: levels scaled by 1/2 area each.
    pub fn pyramid_bytes(&self) -> u64 {
        let mut total = 0u64;
        let mut level = self.image_bytes();
        for _ in 0..self.pyramid_levels {
            total += level;
            level /= 2;
        }
        total
    }

    /// Runs the real front-end once (traced) and builds the workload.
    ///
    /// The traced detector tells us how many window reads per pixel the
    /// sliding-window detection performs; the workload reproduces that
    /// traffic as repeated passes over the image region.
    pub fn workload(&self) -> Workload {
        let (image, _) = generate_scene(&self.scene);
        let mut trace = CountingTracer::new();
        let keypoints = detect(&image, self.fast_threshold, &mut trace, MemSpace::Cached);
        let pattern = test_pattern(7);
        let described = keypoints
            .iter()
            .filter(|kp| has_full_patch(&image, kp))
            .map(|kp| describe(&image, kp, &pattern))
            .collect::<Vec<_>>()
            .len();

        let image_bytes = self.image_bytes();
        let pyramid_bytes = self.pyramid_bytes();
        let descriptor_bytes = (described.max(1) as u64) * 32;
        // Reuse factor: traced window-read bytes over the image size,
        // rounded to full passes (at least 2: detection + description).
        let passes = (trace.bytes / image_bytes).clamp(2, 16) as u32;

        let gpu_shared = Pattern::Sequence(vec![
            // Detection + description sweeps with window reuse.
            Pattern::Repeat {
                body: Box::new(Pattern::Linear {
                    start: 0,
                    bytes: image_bytes,
                    txn_bytes: 64,
                    kind: AccessKind::Read,
                }),
                times: passes,
            },
            // Pyramid construction writes.
            Pattern::Linear {
                start: image_bytes,
                bytes: pyramid_bytes - image_bytes,
                txn_bytes: 64,
                kind: AccessKind::Write,
            },
            // Descriptor output.
            Pattern::Linear {
                start: pyramid_bytes,
                bytes: descriptor_bytes,
                txn_bytes: 32,
                kind: AccessKind::Write,
            },
        ]);

        // CPU tracker: random small patch reads over the pyramid +
        // descriptor reads.
        let cpu_shared = Pattern::Sequence(vec![
            Pattern::SparseUniform {
                start: 0,
                region_bytes: pyramid_bytes,
                count: self.matching_reads,
                txn_bytes: 8,
                seed: self.scene.seed ^ 0xfeed,
                kind: AccessKind::Read,
            },
            Pattern::Linear {
                start: pyramid_bytes,
                bytes: descriptor_bytes,
                txn_bytes: 32,
                kind: AccessKind::Read,
            },
        ]);

        Workload::builder(format!(
            "orb/{}x{} ({} kp)",
            self.scene.width, self.scene.height, described
        ))
        .bytes_to_gpu(ByteSize(image_bytes))
        .bytes_from_gpu(ByteSize(pyramid_bytes - image_bytes + descriptor_bytes))
        .cpu(CpuPhase {
            ops: vec![OpCount::new(CpuOpClass::FpMulAdd, self.host_ops)],
            shared_accesses: cpu_shared,
            private_accesses: None,
        })
        .gpu(GpuPhase {
            compute_work: self.image_bytes() * self.cycles_per_pixel,
            shared_accesses: gpu_shared,
            private_accesses: None,
        })
        // Tracking consumes the freshly described features; within a
        // frame the phases serialize.
        .overlappable(false)
        .iterations(self.iterations)
        .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icomm_models::{run_model, CommModelKind};
    use icomm_soc::DeviceProfile;

    fn quick_app() -> OrbApp {
        OrbApp {
            scene: SceneConfig {
                width: 320,
                height: 240,
                rectangles: 15,
                ..SceneConfig::default()
            },
            matching_reads: 200_000,
            host_ops: 12_000_000,
            iterations: 1,
            ..OrbApp::default()
        }
    }

    #[test]
    fn workload_reflects_traced_reuse() {
        let app = quick_app();
        let w = app.workload();
        // The GPU must read the image several times (window overlap).
        let gpu_bytes = w.gpu.shared_accesses.bytes();
        assert!(
            gpu_bytes >= 3 * app.image_bytes(),
            "gpu traffic {gpu_bytes} should show window reuse"
        );
    }

    #[test]
    fn tx2_zc_collapses() {
        let app = quick_app();
        let w = app.workload();
        let device = DeviceProfile::jetson_tx2();
        let sc = run_model(CommModelKind::StandardCopy, &device, &w);
        let zc = run_model(CommModelKind::ZeroCopy, &device, &w);
        let slowdown = zc.total_time.as_picos() as f64 / sc.total_time.as_picos() as f64;
        // Paper Table V: 521 ms vs 70 ms (7.4x).
        assert!(slowdown > 3.0, "TX2 ZC slowdown {slowdown:.1}x");
    }

    #[test]
    fn xavier_zc_roughly_neutral() {
        let app = quick_app();
        let w = app.workload();
        let device = DeviceProfile::jetson_agx_xavier();
        let sc = run_model(CommModelKind::StandardCopy, &device, &w);
        let zc = run_model(CommModelKind::ZeroCopy, &device, &w);
        let delta = zc.speedup_vs_percent(&sc);
        // Paper Table V: 0 % on Xavier.
        assert!(delta.abs() < 15.0, "Xavier ZC delta {delta:.1}%");
    }

    #[test]
    fn tx2_zc_kernel_order_of_magnitude_slower() {
        let app = quick_app();
        let w = app.workload();
        let device = DeviceProfile::jetson_tx2();
        let sc = run_model(CommModelKind::StandardCopy, &device, &w);
        let zc = run_model(CommModelKind::ZeroCopy, &device, &w);
        let ratio = zc.kernel_time_per_iteration().as_picos() as f64
            / sc.kernel_time_per_iteration().as_picos() as f64;
        // Paper: 824 us vs 93.6 us (8.8x).
        assert!(ratio > 4.0, "TX2 ZC kernel ratio {ratio:.1}x");
    }
}
