//! Orientation assignment and rotated-BRIEF (rBRIEF) descriptors.
//!
//! ORB augments FAST corners with an intensity-centroid orientation and a
//! 256-bit binary descriptor built from pairwise intensity comparisons on
//! a 31×31 patch, with the comparison pattern rotated by the keypoint
//! orientation so the descriptor is rotation-invariant.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::image::Image;
use crate::orb::fast::Keypoint;

/// Patch radius used for orientation and description.
pub const PATCH_RADIUS: i32 = 15;

/// Number of descriptor bits.
pub const DESCRIPTOR_BITS: usize = 256;

/// A 256-bit binary descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Descriptor(pub [u32; 8]);

impl Descriptor {
    /// Hamming distance to another descriptor.
    pub fn distance(&self, other: &Descriptor) -> u32 {
        self.0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }
}

/// A described keypoint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrientedKeypoint {
    /// The underlying corner.
    pub keypoint: Keypoint,
    /// Orientation in radians.
    pub angle: f64,
    /// The rBRIEF descriptor.
    pub descriptor: Descriptor,
}

/// One comparison of the BRIEF test pattern: a pair of patch-relative
/// points.
pub type TestPair = ((i32, i32), (i32, i32));

/// The fixed comparison pattern: point pairs within the patch, generated
/// deterministically (a Gaussian-ish distribution truncated to the patch).
pub fn test_pattern(seed: u64) -> Vec<TestPair> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pattern = Vec::with_capacity(DESCRIPTOR_BITS);
    let r = PATCH_RADIUS - 2; // leave room for rotation
    for _ in 0..DESCRIPTOR_BITS {
        let mut point = || {
            // Sum of two uniforms approximates a triangular distribution
            // centred on the keypoint.
            let a = rng.gen_range(-r..=r);
            let b = rng.gen_range(-r..=r);
            ((a + b) / 2).clamp(-r, r)
        };
        pattern.push(((point(), point()), (point(), point())));
    }
    pattern
}

/// Intensity-centroid orientation of the patch around a keypoint.
///
/// Returns `atan2(m01, m10)` over the circular patch, the ORB moment
/// definition.
///
/// # Panics
///
/// Panics if the keypoint is too close to the image border for a full
/// patch (callers filter keypoints first).
pub fn orientation(image: &Image, kp: &Keypoint) -> f64 {
    let mut m10 = 0.0f64;
    let mut m01 = 0.0f64;
    for dy in -PATCH_RADIUS..=PATCH_RADIUS {
        for dx in -PATCH_RADIUS..=PATCH_RADIUS {
            if dx * dx + dy * dy > PATCH_RADIUS * PATCH_RADIUS {
                continue;
            }
            let x = (kp.x as i32 + dx) as u32;
            let y = (kp.y as i32 + dy) as u32;
            let v = image.get(x, y) as f64;
            m10 += dx as f64 * v;
            m01 += dy as f64 * v;
        }
    }
    m01.atan2(m10)
}

/// Whether a keypoint has a full patch inside the image.
pub fn has_full_patch(image: &Image, kp: &Keypoint) -> bool {
    let r = PATCH_RADIUS;
    kp.x as i32 >= r
        && kp.y as i32 >= r
        && (kp.x as i32) < image.width() as i32 - r
        && (kp.y as i32) < image.height() as i32 - r
}

/// Computes the rotated-BRIEF descriptor of a keypoint.
///
/// # Panics
///
/// Panics if the patch does not fit in the image (see
/// [`has_full_patch`]).
pub fn describe(image: &Image, kp: &Keypoint, pattern: &[TestPair]) -> OrientedKeypoint {
    assert!(has_full_patch(image, kp), "patch out of bounds");
    let angle = orientation(image, kp);
    let (sin, cos) = angle.sin_cos();
    let rotate = |(px, py): (i32, i32)| {
        let rx = (px as f64 * cos - py as f64 * sin).round() as i32;
        let ry = (px as f64 * sin + py as f64 * cos).round() as i32;
        (
            (kp.x as i32 + rx.clamp(-PATCH_RADIUS, PATCH_RADIUS)) as u32,
            (kp.y as i32 + ry.clamp(-PATCH_RADIUS, PATCH_RADIUS)) as u32,
        )
    };
    let mut words = [0u32; 8];
    for (bit, &(a, b)) in pattern.iter().enumerate() {
        let (ax, ay) = rotate(a);
        let (bx, by) = rotate(b);
        if image.get(ax, ay) < image.get(bx, by) {
            words[bit / 32] |= 1 << (bit % 32);
        }
    }
    OrientedKeypoint {
        keypoint: *kp,
        angle,
        descriptor: Descriptor(words),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_image() -> Image {
        // Brightness increasing along +x: orientation must be ~0.
        let mut img = Image::new(64, 64);
        for y in 0..64 {
            for x in 0..64 {
                img.set(x, y, (x * 3) as u16);
            }
        }
        img
    }

    fn kp(x: u32, y: u32) -> Keypoint {
        Keypoint { x, y, score: 1.0 }
    }

    #[test]
    fn pattern_is_deterministic_and_in_patch() {
        let a = test_pattern(7);
        let b = test_pattern(7);
        assert_eq!(a, b);
        assert_eq!(a.len(), DESCRIPTOR_BITS);
        for &((ax, ay), (bx, by)) in &a {
            for v in [ax, ay, bx, by] {
                assert!(v.abs() <= PATCH_RADIUS);
            }
        }
    }

    #[test]
    fn orientation_follows_gradient() {
        let img = gradient_image();
        let angle = orientation(&img, &kp(32, 32));
        assert!(
            angle.abs() < 0.1,
            "gradient along +x should give ~0, got {angle}"
        );
    }

    #[test]
    fn orientation_flips_with_gradient() {
        let mut img = Image::new(64, 64);
        for y in 0..64 {
            for x in 0..64 {
                img.set(x, y, ((63 - x) * 3) as u16);
            }
        }
        let angle = orientation(&img, &kp(32, 32));
        assert!(
            (angle.abs() - std::f64::consts::PI).abs() < 0.1,
            "gradient along -x should give ~pi, got {angle}"
        );
    }

    #[test]
    fn descriptor_is_stable() {
        let img = gradient_image();
        let pattern = test_pattern(7);
        let a = describe(&img, &kp(32, 32), &pattern);
        let b = describe(&img, &kp(32, 32), &pattern);
        assert_eq!(a.descriptor, b.descriptor);
        assert_eq!(a.descriptor.distance(&b.descriptor), 0);
    }

    #[test]
    fn different_patches_differ() {
        let mut img = gradient_image();
        // Perturb a second patch heavily.
        for y in 10..40 {
            for x in 30..60 {
                img.set(x, y, if (x + y) % 2 == 0 { 0 } else { 250 });
            }
        }
        let pattern = test_pattern(7);
        let a = describe(&img, &kp(16, 48), &pattern);
        let b = describe(&img, &kp(45, 25), &pattern);
        assert!(a.descriptor.distance(&b.descriptor) > 20);
    }

    #[test]
    fn hamming_distance_bounds() {
        let zero = Descriptor([0; 8]);
        let ones = Descriptor([u32::MAX; 8]);
        assert_eq!(zero.distance(&ones), 256);
        assert_eq!(zero.distance(&zero), 0);
    }

    #[test]
    #[should_panic(expected = "patch out of bounds")]
    fn describe_rejects_border_keypoints() {
        let img = gradient_image();
        let pattern = test_pattern(7);
        let _ = describe(&img, &kp(2, 2), &pattern);
    }

    #[test]
    fn full_patch_predicate() {
        let img = gradient_image();
        assert!(has_full_patch(&img, &kp(32, 32)));
        assert!(!has_full_patch(&img, &kp(5, 32)));
        assert!(!has_full_patch(&img, &kp(32, 60)));
    }
}
