//! Synthetic corner-rich scenes for exercising the ORB front-end.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::image::Image;

/// Scene parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Number of bright rectangles scattered over the background.
    pub rectangles: u32,
    /// Uniform pixel noise amplitude.
    pub noise_amplitude: u16,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SceneConfig {
    fn default() -> Self {
        SceneConfig {
            width: 640,
            height: 480,
            rectangles: 40,
            noise_amplitude: 4,
            seed: 0x02b,
        }
    }
}

/// Renders a scene of bright axis-aligned rectangles on a dark background;
/// returns the image and the rectangle corner positions (approximate
/// ground truth for the corner detector).
pub fn generate_scene(config: &SceneConfig) -> (Image, Vec<(u32, u32)>) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut image = Image::new(config.width, config.height);
    // Noisy dark background.
    if config.noise_amplitude > 0 {
        for y in 0..config.height {
            for x in 0..config.width {
                image.set(x, y, rng.gen_range(0..=config.noise_amplitude));
            }
        }
    }
    let mut corners = Vec::new();
    for _ in 0..config.rectangles {
        let w = rng.gen_range(24..80u32);
        let h = rng.gen_range(24..80u32);
        let x0 = rng.gen_range(8..config.width.saturating_sub(w + 8));
        let y0 = rng.gen_range(8..config.height.saturating_sub(h + 8));
        let brightness = rng.gen_range(120..220u16);
        for y in y0..y0 + h {
            for x in x0..x0 + w {
                image.set(x, y, brightness);
            }
        }
        corners.extend_from_slice(&[
            (x0, y0),
            (x0 + w - 1, y0),
            (x0, y0 + h - 1),
            (x0 + w - 1, y0 + h - 1),
        ]);
    }
    (image, corners)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scene_is_deterministic() {
        let cfg = SceneConfig::default();
        let (a, ca) = generate_scene(&cfg);
        let (b, cb) = generate_scene(&cfg);
        assert_eq!(a, b);
        assert_eq!(ca, cb);
    }

    #[test]
    fn scene_has_rectangles_and_corners() {
        let cfg = SceneConfig {
            width: 160,
            height: 120,
            rectangles: 5,
            ..SceneConfig::default()
        };
        let (img, corners) = generate_scene(&cfg);
        assert_eq!(corners.len(), 20);
        assert!(img.mean() > 1.0, "rectangles should brighten the scene");
    }

    #[test]
    fn corners_are_in_bounds() {
        let cfg = SceneConfig::default();
        let (_, corners) = generate_scene(&cfg);
        for &(x, y) in &corners {
            assert!(x < cfg.width && y < cfg.height);
        }
    }
}
