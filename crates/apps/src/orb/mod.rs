//! The ORB feature-extraction front-end case study (visual SLAM).

pub mod brief;
pub mod fast;
pub mod matcher;
pub mod pyramid;
pub mod scene;
pub mod workload;

pub use brief::{
    describe, has_full_patch, orientation, test_pattern, Descriptor, OrientedKeypoint,
};
pub use fast::{detect, Keypoint};
pub use matcher::{match_descriptors, translation_consistency, Match, MatcherConfig};
pub use pyramid::{downsample, Pyramid};
pub use scene::{generate_scene, SceneConfig};
pub use workload::OrbApp;
