//! # icomm-apps — the paper's two edge-computing case studies
//!
//! Real Rust implementations of the applications the paper tunes, each
//! paired with a workload descriptor for the `icomm` simulator:
//!
//! - [`shwfs`]: **Shack–Hartmann wavefront sensing** — synthetic sensor
//!   frames, thresholded centre-of-gravity centroid extraction (the GPU
//!   kernel), and wavefront-slope computation (the CPU routine).
//! - [`orb`]: an **ORB feature-extraction front-end** — FAST-9 corner
//!   detection with non-maximum suppression, intensity-centroid
//!   orientation and rotated-BRIEF descriptors, plus the tracker-side
//!   access pattern that makes zero copy collapse on non-I/O-coherent
//!   devices.
//! - [`lane`]: a **lane-detection ADAS pipeline** (Sobel + restricted
//!   Hough) — the streaming application class the paper's introduction
//!   motivates the framework with.
//!
//! The algorithms compute validated numbers (see their unit tests) and
//! are instrumented with [`icomm_trace::Tracer`] so the workload
//! descriptors are sized from *traced* shared-buffer traffic rather than
//! hand-waved estimates.
//!
//! Each app also offers a three-phase [`phased`] variant
//! (`phased_workload`) whose regimes flip the optimal communication
//! model — the test inputs of the online adaptation layer
//! (`icomm-adapt`) — and the apps combine into named co-run tenant
//! mixes ([`corun`]), the inputs of the multi-tenant scheduler
//! (`icomm-sched`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod corun;
pub mod image;
pub mod lane;
pub mod orb;
pub mod phased;
pub mod shwfs;

pub use corun::{mix_by_name, TenantSpec, MIX_NAMES};
pub use image::Image;
pub use lane::LaneApp;
pub use orb::OrbApp;
pub use shwfs::ShwfsApp;
