//! Minimal grayscale image container used by both case studies.

use serde::{Deserialize, Serialize};

/// A row-major grayscale image with `u16` pixels (the dynamic range of the
/// wavefront-sensor cameras the paper's first case study targets; the ORB
/// front-end uses only the low byte).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Image {
    width: u32,
    height: u32,
    data: Vec<u16>,
}

impl Image {
    /// Creates a zeroed image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        Image {
            width,
            height,
            data: vec![0; width as usize * height as usize],
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total pixel count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the image has zero pixels (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the pixel buffer in bytes.
    pub fn size_bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<u16>()) as u64
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> u16 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y as usize * self.width as usize + x as usize]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, value: u16) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y as usize * self.width as usize + x as usize] = value;
    }

    /// Saturating add into a pixel.
    #[inline]
    pub fn add(&mut self, x: u32, y: u32, value: u16) {
        let v = self.get(x, y).saturating_add(value);
        self.set(x, y, v);
    }

    /// Raw pixel slice.
    pub fn pixels(&self) -> &[u16] {
        &self.data
    }

    /// Byte offset of pixel `(x, y)` inside the buffer (used when mapping
    /// pixel accesses onto the simulated shared allocation).
    #[inline]
    pub fn byte_offset(&self, x: u32, y: u32) -> u64 {
        (y as u64 * self.width as u64 + x as u64) * 2
    }

    /// Mean pixel value.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|&p| p as f64).sum::<f64>() / self.data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut img = Image::new(4, 3);
        assert_eq!(img.len(), 12);
        assert_eq!(img.size_bytes(), 24);
        img.set(3, 2, 1000);
        assert_eq!(img.get(3, 2), 1000);
        assert_eq!(img.byte_offset(3, 2), (2 * 4 + 3) * 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_bounds_checked() {
        let img = Image::new(4, 3);
        let _ = img.get(4, 0);
    }

    #[test]
    fn saturating_add() {
        let mut img = Image::new(2, 2);
        img.set(0, 0, u16::MAX - 1);
        img.add(0, 0, 10);
        assert_eq!(img.get(0, 0), u16::MAX);
    }

    #[test]
    fn mean_of_uniform_image() {
        let mut img = Image::new(2, 2);
        for x in 0..2 {
            for y in 0..2 {
                img.set(x, y, 100);
            }
        }
        assert!((img.mean() - 100.0).abs() < 1e-12);
    }
}
