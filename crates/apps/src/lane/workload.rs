//! Mapping the lane-detection pipeline onto an `icomm` workload.
//!
//! Per camera frame:
//!
//! 1. **CPU (producer)**: writes the acquired frame into the shared
//!    buffer, reads the previous frame's lane lines back, and runs the
//!    tracking/smoothing host code.
//! 2. **GPU kernel**: Sobel + threshold over the region of interest, then
//!    Hough voting. The vote accumulator lives in GPU shared memory
//!    (private, always cached) — as real CUDA Hough implementations do —
//!    so the *shared-buffer* traffic is a clean single-pass stream: read
//!    the frame, write the sparse edge bitmap and the top lines.
//!
//! This is the paper's motivating application shape (Section I: camera
//! ADAS pipelines): streaming, compute-dominated, little shared-buffer
//! cache reuse — exactly the profile for which zero copy pays off on
//! I/O-coherent devices and the framework must *still* reject it on
//! devices with a slow pinned path.

use serde::{Deserialize, Serialize};

use icomm_models::{CpuPhase, GpuPhase, Workload};
use icomm_soc::cache::AccessKind;
use icomm_soc::cpu::{CpuOpClass, OpCount};
use icomm_soc::hierarchy::MemSpace;
use icomm_soc::units::ByteSize;
use icomm_trace::{CountingTracer, Pattern};

use crate::lane::detect::{sobel_edges, LaneDetectorConfig};
use crate::lane::scene::{generate_road, RoadConfig};

/// Application-level parameters of the lane-detection case study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaneApp {
    /// Road-scene configuration.
    pub road: RoadConfig,
    /// Detector configuration.
    pub detector: LaneDetectorConfig,
    /// GPU instruction-cycles per ROI pixel (Sobel + thresholding +
    /// amortized voting).
    pub cycles_per_pixel: u64,
    /// Host tracking/smoothing arithmetic per frame.
    pub host_ops: u64,
    /// Hot (L1-resident) CPU accesses per frame.
    pub hot_accesses: u64,
    /// Frames to simulate.
    pub iterations: u32,
}

impl Default for LaneApp {
    fn default() -> Self {
        LaneApp {
            road: RoadConfig::default(),
            detector: LaneDetectorConfig::default(),
            cycles_per_pixel: 244,
            host_ops: 100_000,
            hot_accesses: 60_000,
            iterations: 4,
        }
    }
}

impl LaneApp {
    /// Frame size in bytes (16-bit HDR camera pixels).
    pub fn frame_bytes(&self) -> u64 {
        self.road.width as u64 * self.road.height as u64 * 2
    }

    /// Runs the real detector once (traced) and builds the workload.
    pub fn workload(&self) -> Workload {
        let (image, _) = generate_road(&self.road);
        let mut trace = CountingTracer::new();
        let edges = sobel_edges(&image, &self.detector, &mut trace, MemSpace::Cached);
        let edge_count = edges.iter().filter(|&&e| e).count() as u64;

        let frame_bytes = self.frame_bytes();
        let edge_bitmap_bytes = (self.road.width as u64 * self.road.height as u64) / 8;
        let lines_bytes = 4 * 1024; // top lines / peak list handed back
        let pixels = self.road.width as u64 * self.road.height as u64;

        let gpu_shared = Pattern::Sequence(vec![
            // Single streaming pass over the frame (the 3x3 windows reuse
            // rows out of the GPU L1; the LL-level traffic is one pass).
            Pattern::Linear {
                start: 0,
                bytes: frame_bytes,
                txn_bytes: 64,
                kind: AccessKind::Read,
            },
            // Sparse edge-bitmap writes.
            Pattern::Linear {
                start: frame_bytes,
                bytes: edge_bitmap_bytes,
                txn_bytes: 64,
                kind: AccessKind::Write,
            },
            // Lane-line output.
            Pattern::Linear {
                start: frame_bytes + edge_bitmap_bytes,
                bytes: lines_bytes,
                txn_bytes: 32,
                kind: AccessKind::Write,
            },
        ]);
        // The Hough accumulator is GPU-private (shared memory): heavy
        // read-modify-write reuse that stays cached under every
        // communication model. Voting traffic scales with the traced edge
        // count.
        let gpu_private = Pattern::SparseUniform {
            start: 0,
            region_bytes: 96 * 1024,
            count: edge_count * self.detector.theta_bins as u64 / 8,
            txn_bytes: 4,
            seed: self.road.seed ^ 0x40f,
            kind: AccessKind::Write,
        };

        let cpu_shared = Pattern::Sequence(vec![
            Pattern::Linear {
                start: 0,
                bytes: frame_bytes,
                txn_bytes: 64,
                kind: AccessKind::Write,
            },
            Pattern::Linear {
                start: frame_bytes + edge_bitmap_bytes,
                bytes: lines_bytes,
                txn_bytes: 64,
                kind: AccessKind::Read,
            },
        ]);
        let cpu_private = Pattern::SingleAddress {
            addr: 0,
            count: self.hot_accesses,
            txn_bytes: 8,
            kind: AccessKind::Read,
        };

        Workload::builder(format!(
            "lane/{}x{} ({} edges)",
            self.road.width, self.road.height, edge_count
        ))
        .bytes_to_gpu(ByteSize(frame_bytes))
        .bytes_from_gpu(ByteSize(edge_bitmap_bytes + lines_bytes))
        .cpu(CpuPhase {
            ops: vec![OpCount::new(CpuOpClass::FpMulAdd, self.host_ops)],
            shared_accesses: cpu_shared,
            private_accesses: Some(cpu_private),
        })
        .gpu(GpuPhase {
            compute_work: pixels * self.cycles_per_pixel,
            shared_accesses: gpu_shared,
            private_accesses: Some(gpu_private),
        })
        // Streaming pipeline: the tracker smooths the *previous* frame's
        // lanes while the GPU works the current frame.
        .overlappable(true)
        .iterations(self.iterations)
        .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icomm_models::{run_model, CommModelKind};
    use icomm_soc::DeviceProfile;

    fn quick() -> LaneApp {
        // Quarter-size frame with the host work scaled to match, so the
        // compute/traffic proportions of the full-size pipeline hold.
        LaneApp {
            road: RoadConfig {
                width: 320,
                height: 180,
                ..RoadConfig::default()
            },
            host_ops: 25_000,
            hot_accesses: 15_000,
            iterations: 2,
            ..LaneApp::default()
        }
    }

    #[test]
    fn workload_traffic_sized_from_trace() {
        let app = quick();
        let w = app.workload();
        assert_eq!(w.bytes_to_gpu.as_u64(), app.frame_bytes());
        assert!(w.overlappable);
        assert!(w.name.contains("edges"));
    }

    #[test]
    fn xavier_zc_wins_for_streaming_lane_detection() {
        let app = quick();
        let w = app.workload();
        let device = DeviceProfile::jetson_agx_xavier();
        let sc = run_model(CommModelKind::StandardCopy, &device, &w);
        let zc = run_model(CommModelKind::ZeroCopy, &device, &w);
        let gain = zc.speedup_vs_percent(&sc);
        assert!(gain > 15.0, "Xavier ZC gain {gain:+.0}%");
    }

    #[test]
    fn tx2_zc_loses_for_streaming_lane_detection() {
        // The full-size frame: at quarter size the fixed copy setup costs
        // dominate and the comparison is a coin toss (the framework would
        // land in its "comparable" band); at 640x360 the TX2's pinned
        // path clearly loses.
        let app = LaneApp {
            iterations: 2,
            ..LaneApp::default()
        };
        let w = app.workload();
        let device = DeviceProfile::jetson_tx2();
        let sc = run_model(CommModelKind::StandardCopy, &device, &w);
        let zc = run_model(CommModelKind::ZeroCopy, &device, &w);
        let gain = zc.speedup_vs_percent(&sc);
        assert!(gain < 0.0, "TX2 ZC gain {gain:+.0}% should be negative");
    }

    #[test]
    fn double_buffered_sc_between_sc_and_zc_on_xavier() {
        // The extension model recovers the overlap but not the copy
        // elimination.
        let app = quick();
        let w = app.workload();
        let device = DeviceProfile::jetson_agx_xavier();
        let sc = run_model(CommModelKind::StandardCopy, &device, &w);
        let sc_async = run_model(CommModelKind::StandardCopyAsync, &device, &w);
        assert!(sc_async.total_time <= sc.total_time);
    }
}
