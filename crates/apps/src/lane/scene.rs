//! Synthetic road scenes for the lane-detection case study.
//!
//! The paper motivates its framework with camera-based ADAS pipelines
//! (convoy tracking, lane detection) in which the CPU streams frames to
//! the iGPU. This generator renders a straight road under perspective:
//! a dark asphalt trapezoid with two bright lane markings converging
//! toward a vanishing point, plus uniform sensor noise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::image::Image;

/// Road-scene parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoadConfig {
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Lane half-width at the bottom of the frame, in pixels.
    pub lane_half_width: f64,
    /// Horizontal position of the vanishing point as a fraction of the
    /// width.
    pub vanishing_x_frac: f64,
    /// Vertical position of the vanishing point (horizon) as a fraction
    /// of the height.
    pub horizon_frac: f64,
    /// Brightness of the lane markings.
    pub marking_brightness: u16,
    /// Brightness of the asphalt.
    pub road_brightness: u16,
    /// Marking stroke width in pixels (at the bottom; tapers upward).
    pub marking_px: u32,
    /// Uniform noise amplitude.
    pub noise_amplitude: u16,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RoadConfig {
    fn default() -> Self {
        RoadConfig {
            width: 640,
            height: 360,
            lane_half_width: 180.0,
            vanishing_x_frac: 0.5,
            horizon_frac: 0.35,
            marking_brightness: 220,
            road_brightness: 60,
            marking_px: 6,
            noise_amplitude: 6,
            seed: 0x1a2e,
        }
    }
}

impl RoadConfig {
    /// The horizon row.
    pub fn horizon_y(&self) -> u32 {
        (self.height as f64 * self.horizon_frac) as u32
    }

    /// The x position of the left (`side = -1`) or right (`side = +1`)
    /// lane marking at row `y`, or `None` above the horizon.
    pub fn lane_x_at(&self, side: f64, y: u32) -> Option<f64> {
        let horizon = self.horizon_y();
        if y <= horizon {
            return None;
        }
        let vx = self.width as f64 * self.vanishing_x_frac;
        // Linear interpolation from the vanishing point to the bottom.
        let t = (y - horizon) as f64 / (self.height - 1 - horizon).max(1) as f64;
        Some(vx + side * self.lane_half_width * t)
    }
}

/// Renders the road scene; returns the image and, for validation, the
/// ground-truth lane-marking x positions at the bottom row (left, right).
pub fn generate_road(config: &RoadConfig) -> (Image, (f64, f64)) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut image = Image::new(config.width, config.height);
    let horizon = config.horizon_y();
    for y in 0..config.height {
        for x in 0..config.width {
            let mut v = if y > horizon {
                config.road_brightness
            } else {
                config.road_brightness / 2 // sky/backdrop
            };
            if y > horizon {
                // Marking stroke tapers with distance.
                let t = (y - horizon) as f64 / (config.height - 1 - horizon).max(1) as f64;
                let stroke = (config.marking_px as f64 * t).max(1.5);
                for side in [-1.0, 1.0] {
                    if let Some(lx) = config.lane_x_at(side, y) {
                        if (x as f64 - lx).abs() <= stroke / 2.0 {
                            v = config.marking_brightness;
                        }
                    }
                }
            }
            let noise = if config.noise_amplitude > 0 {
                rng.gen_range(0..=config.noise_amplitude)
            } else {
                0
            };
            image.set(x, y, v.saturating_add(noise));
        }
    }
    let bottom = config.height - 1;
    let left = config.lane_x_at(-1.0, bottom).expect("below horizon");
    let right = config.lane_x_at(1.0, bottom).expect("below horizon");
    (image, (left, right))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scene_is_deterministic() {
        let cfg = RoadConfig::default();
        assert_eq!(generate_road(&cfg).0, generate_road(&cfg).0);
    }

    #[test]
    fn markings_are_bright_at_truth_positions() {
        let cfg = RoadConfig {
            noise_amplitude: 0,
            ..RoadConfig::default()
        };
        let (img, (left, right)) = generate_road(&cfg);
        let y = cfg.height - 1;
        assert!(img.get(left as u32, y) >= cfg.marking_brightness);
        assert!(img.get(right as u32, y) >= cfg.marking_brightness);
        // Road between the lanes is dark.
        let mid = ((left + right) / 2.0) as u32;
        assert!(img.get(mid, y) < cfg.road_brightness + cfg.noise_amplitude + 5);
    }

    #[test]
    fn lanes_converge_toward_vanishing_point() {
        let cfg = RoadConfig::default();
        let near_bottom = cfg.height - 1;
        let near_horizon = cfg.horizon_y() + 2;
        let width_bottom =
            cfg.lane_x_at(1.0, near_bottom).unwrap() - cfg.lane_x_at(-1.0, near_bottom).unwrap();
        let width_top =
            cfg.lane_x_at(1.0, near_horizon).unwrap() - cfg.lane_x_at(-1.0, near_horizon).unwrap();
        assert!(width_bottom > 5.0 * width_top);
    }

    #[test]
    fn no_lane_above_horizon() {
        let cfg = RoadConfig::default();
        assert!(cfg.lane_x_at(-1.0, 0).is_none());
        assert!(cfg.lane_x_at(1.0, cfg.horizon_y()).is_none());
    }
}
