//! Lane detection: Sobel edges + restricted Hough transform.
//!
//! The GPU side of the ADAS pipeline: per pixel, a 3×3 Sobel gradient and
//! a threshold produce an edge map; edge pixels then vote into a Hough
//! accumulator restricted to plausible lane angles. The CPU side extracts
//! the two strongest peaks (left and right of the image centre) and
//! converts them back to lane positions.
//!
//! Everything computes real numbers — the tests drive a synthetic road
//! scene through the detector and check the recovered lane positions
//! against ground truth.

use serde::{Deserialize, Serialize};

use icomm_soc::hierarchy::MemSpace;
use icomm_trace::Tracer;

use crate::image::Image;

/// Hough parameterization: a line is `rho = x*cos(theta) + y*sin(theta)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HoughLine {
    /// Distance from the origin in pixels.
    pub rho: f64,
    /// Angle in radians.
    pub theta: f64,
    /// Accumulated votes.
    pub votes: u32,
}

impl HoughLine {
    /// The x position where this line crosses row `y`.
    ///
    /// Returns `None` for (near-)horizontal lines that never cross a
    /// column meaningfully.
    pub fn x_at(&self, y: f64) -> Option<f64> {
        let cos = self.theta.cos();
        if cos.abs() < 1e-6 {
            return None;
        }
        Some((self.rho - y * self.theta.sin()) / cos)
    }
}

/// Detector parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaneDetectorConfig {
    /// Gradient-magnitude threshold for the edge map.
    pub edge_threshold: u32,
    /// Number of theta bins over the allowed angle range.
    pub theta_bins: u32,
    /// Rho resolution in pixels per bin.
    pub rho_per_bin: f64,
    /// Maximum lane-marking angle from vertical, in radians (lanes under
    /// perspective are near-vertical in image space).
    pub max_angle_from_vertical: f64,
    /// Ignore rows above this fraction of the height (sky/horizon).
    pub roi_top_frac: f64,
}

impl Default for LaneDetectorConfig {
    fn default() -> Self {
        LaneDetectorConfig {
            edge_threshold: 240,
            theta_bins: 32,
            rho_per_bin: 2.0,
            max_angle_from_vertical: 0.6,
            roi_top_frac: 0.4,
        }
    }
}

/// The Sobel + threshold edge map. Pixels are 0 or 1.
///
/// Window reads are traced in `space` (this is the GPU kernel's memory
/// behaviour: every output pixel reads a 3×3 neighbourhood).
pub fn sobel_edges(
    image: &Image,
    config: &LaneDetectorConfig,
    tracer: &mut impl Tracer,
    space: MemSpace,
) -> Vec<bool> {
    let w = image.width();
    let h = image.height();
    let top = (h as f64 * config.roi_top_frac) as u32;
    let mut edges = vec![false; (w * h) as usize];
    for y in top.max(1)..h - 1 {
        for x in 1..w - 1 {
            // One coalesced window read per pixel (3 rows fetched; the
            // middle rows are cache-resident between neighbours).
            tracer.read(image.byte_offset(x - 1, y - 1), 8, space);
            let px =
                |dx: i32, dy: i32| image.get((x as i32 + dx) as u32, (y as i32 + dy) as u32) as i32;
            let gx = -px(-1, -1) - 2 * px(-1, 0) - px(-1, 1) + px(1, -1) + 2 * px(1, 0) + px(1, 1);
            let gy = -px(-1, -1) - 2 * px(0, -1) - px(1, -1) + px(-1, 1) + 2 * px(0, 1) + px(1, 1);
            let magnitude = gx.unsigned_abs() + gy.unsigned_abs();
            if magnitude >= config.edge_threshold {
                edges[(y * w + x) as usize] = true;
                tracer.write((y as u64 * w as u64 + x as u64) / 8, 1, space);
            }
        }
    }
    edges
}

/// Hough voting over the edge map, restricted to near-vertical angles.
pub fn hough_vote(
    edges: &[bool],
    width: u32,
    height: u32,
    config: &LaneDetectorConfig,
    tracer: &mut impl Tracer,
    space: MemSpace,
) -> Vec<HoughLine> {
    assert_eq!(edges.len(), (width * height) as usize, "edge map size");
    let diag = ((width as f64).hypot(height as f64)).ceil();
    let rho_bins = (2.0 * diag / config.rho_per_bin).ceil() as usize;
    let theta_bins = config.theta_bins as usize;
    let mut accumulator = vec![0u32; rho_bins * theta_bins];
    let theta_of = |bin: usize| {
        // Angles near 0 (vertical lines in rho/theta form).
        -config.max_angle_from_vertical
            + 2.0 * config.max_angle_from_vertical * bin as f64 / (theta_bins - 1).max(1) as f64
    };
    for y in 0..height {
        for x in 0..width {
            if !edges[(y * width + x) as usize] {
                continue;
            }
            for bin in 0..theta_bins {
                let theta = theta_of(bin);
                let rho = x as f64 * theta.cos() + y as f64 * theta.sin();
                let rho_bin = ((rho + diag) / config.rho_per_bin) as usize;
                if rho_bin < rho_bins {
                    let idx = rho_bin * theta_bins + bin;
                    accumulator[idx] += 1;
                    // Accumulator updates: read-modify-write of a 4-byte
                    // counter.
                    tracer.read((idx * 4) as u64, 4, space);
                    tracer.write((idx * 4) as u64, 4, space);
                }
            }
        }
    }
    accumulator
        .iter()
        .enumerate()
        .filter(|&(_, &v)| v > 0)
        .map(|(idx, &votes)| {
            let rho_bin = idx / theta_bins;
            let bin = idx % theta_bins;
            HoughLine {
                rho: rho_bin as f64 * config.rho_per_bin - diag,
                theta: theta_of(bin),
                votes,
            }
        })
        .collect()
}

/// The detected lane pair: x positions where the two strongest lines
/// cross the bottom row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LanePair {
    /// Left marking x at the bottom row.
    pub left_x: f64,
    /// Right marking x at the bottom row.
    pub right_x: f64,
}

/// CPU side: picks the strongest line left and right of the image centre.
///
/// Returns `None` when either side has no votes.
pub fn extract_lanes(lines: &[HoughLine], width: u32, height: u32) -> Option<LanePair> {
    let bottom = (height - 1) as f64;
    let centre = width as f64 / 2.0;
    let mut best_left: Option<&HoughLine> = None;
    let mut best_right: Option<&HoughLine> = None;
    for line in lines {
        let Some(x) = line.x_at(bottom) else { continue };
        if !(0.0..width as f64).contains(&x) {
            continue;
        }
        let slot = if x < centre {
            &mut best_left
        } else {
            &mut best_right
        };
        let better = match slot {
            Some(best) => line.votes > best.votes,
            None => true,
        };
        if better {
            *slot = Some(line);
        }
    }
    match (best_left, best_right) {
        (Some(l), Some(r)) => Some(LanePair {
            left_x: l.x_at(bottom).expect("filtered above"),
            right_x: r.x_at(bottom).expect("filtered above"),
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lane::scene::{generate_road, RoadConfig};
    use icomm_trace::{CountingTracer, NullTracer};

    fn detect(cfg: &RoadConfig) -> (LanePair, (f64, f64)) {
        let (img, truth) = generate_road(cfg);
        let det = LaneDetectorConfig::default();
        let edges = sobel_edges(&img, &det, &mut NullTracer, MemSpace::Cached);
        let lines = hough_vote(
            &edges,
            img.width(),
            img.height(),
            &det,
            &mut NullTracer,
            MemSpace::Cached,
        );
        let lanes = extract_lanes(&lines, img.width(), img.height()).expect("lanes found");
        (lanes, truth)
    }

    #[test]
    fn recovers_lane_positions_noise_free() {
        let cfg = RoadConfig {
            noise_amplitude: 0,
            ..RoadConfig::default()
        };
        let (lanes, (left, right)) = detect(&cfg);
        assert!(
            (lanes.left_x - left).abs() < 12.0,
            "left {:.1} vs truth {left:.1}",
            lanes.left_x
        );
        assert!(
            (lanes.right_x - right).abs() < 12.0,
            "right {:.1} vs truth {right:.1}",
            lanes.right_x
        );
    }

    #[test]
    fn robust_to_noise() {
        let cfg = RoadConfig {
            noise_amplitude: 10,
            ..RoadConfig::default()
        };
        let (lanes, (left, right)) = detect(&cfg);
        assert!((lanes.left_x - left).abs() < 20.0);
        assert!((lanes.right_x - right).abs() < 20.0);
    }

    #[test]
    fn lane_pair_is_ordered() {
        let (lanes, _) = detect(&RoadConfig::default());
        assert!(lanes.left_x < lanes.right_x);
    }

    #[test]
    fn edge_map_sparse_on_road_scene() {
        let cfg = RoadConfig {
            noise_amplitude: 0,
            ..RoadConfig::default()
        };
        let (img, _) = generate_road(&cfg);
        let det = LaneDetectorConfig::default();
        let edges = sobel_edges(&img, &det, &mut NullTracer, MemSpace::Cached);
        let count = edges.iter().filter(|&&e| e).count();
        let total = edges.len();
        assert!(count > 100, "some edges must fire ({count})");
        assert!(count < total / 20, "edges must be sparse ({count}/{total})");
    }

    #[test]
    fn sobel_traffic_scales_with_roi() {
        let cfg = RoadConfig {
            width: 160,
            height: 120,
            ..RoadConfig::default()
        };
        let (img, _) = generate_road(&cfg);
        let det = LaneDetectorConfig::default();
        let mut tracer = CountingTracer::new();
        let _ = sobel_edges(&img, &det, &mut tracer, MemSpace::Cached);
        let top = (cfg.height as f64 * det.roi_top_frac) as u64;
        let expected_reads = (cfg.height as u64 - 1 - top) * (cfg.width as u64 - 2);
        assert_eq!(tracer.reads, expected_reads);
    }

    #[test]
    fn x_at_handles_horizontal_lines() {
        let line = HoughLine {
            rho: 10.0,
            theta: std::f64::consts::FRAC_PI_2,
            votes: 1,
        };
        assert!(line.x_at(5.0).is_none());
    }

    #[test]
    #[should_panic(expected = "edge map size")]
    fn hough_validates_dimensions() {
        let det = LaneDetectorConfig::default();
        let _ = hough_vote(
            &[false; 10],
            100,
            100,
            &det,
            &mut NullTracer,
            MemSpace::Cached,
        );
    }
}
