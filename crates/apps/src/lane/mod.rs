//! The lane-detection case study (camera ADAS pipeline).
//!
//! Not one of the paper's two evaluated applications, but the application
//! class its introduction motivates the framework with (convoy tracking
//! and lane detection on embedded GPUs \[1\], \[2\]).

pub mod detect;
pub mod scene;
pub mod workload;

pub use detect::{extract_lanes, hough_vote, sobel_edges, HoughLine, LaneDetectorConfig, LanePair};
pub use scene::{generate_road, RoadConfig};
pub use workload::LaneApp;
