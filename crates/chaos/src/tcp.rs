//! Hostile TCP clients for torturing a running tuning server.
//!
//! These helpers are the transport half of the chaos suite: they connect
//! to an `icomm-serve` endpoint and misbehave — random bytes, a line
//! that never ends, a half-request followed by silence. The server must
//! answer with error lines or disconnect; it must never wedge or panic.
//! Used by the integration tests; the timing-dependent parts are kept
//! out of [`ChaosReport`](crate::ChaosReport), which stays byte-identical
//! per seed.
//!
//! The `binary_*` family aims the same hostility at the `icomm-net`
//! binary listener: garbage that never frames, frame headers advertising
//! absurd lengths, valid frames cut off mid-body, and frames whose CRC
//! trailer has been bit-flipped. The binary server must count each
//! rejection in the serve fault counters and refuse service without
//! wedging the shard.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use icomm_net::wire::{encode_tune_request, frame_bytes, Opcode};
use icomm_net::{BinaryClient, ClientError};
use icomm_serve::TuneRequest;

use crate::rng::ChaosRng;

/// Sends `lines` lines of seeded random bytes (newline-free garbage,
/// terminated), reading a response after each. Returns the number of
/// response lines received before the server cut us off.
///
/// # Errors
///
/// Propagates connect/configure failures; read/write failures mid-attack
/// just end the count.
pub fn send_garbage(addr: SocketAddr, seed: u64, lines: u32) -> std::io::Result<u64> {
    let mut rng = ChaosRng::new(seed);
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut responses = 0u64;
    for _ in 0..lines {
        let len = 1 + rng.index(64);
        let mut junk: Vec<u8> = Vec::with_capacity(len + 1);
        for _ in 0..len {
            // Printable non-newline garbage, so each write is one line.
            junk.push(b' ' + (rng.next_u64() % 94) as u8);
        }
        junk.push(b'\n');
        if writer
            .write_all(&junk)
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(n) if n > 0 => responses += 1,
            _ => break,
        }
    }
    Ok(responses)
}

/// Sends one `len`-byte line and returns the server's first response
/// line (empty if the server just closed the connection).
///
/// # Errors
///
/// Propagates connect/configure failures.
pub fn send_oversized(addr: SocketAddr, len: usize) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = vec![b'x'; len];
    line.push(b'\n');
    let _ = writer.write_all(&line).and_then(|()| writer.flush());
    let mut response = String::new();
    let _ = reader.read_line(&mut response);
    Ok(response)
}

/// Sends half a request and then stalls, holding the connection open
/// until the server hangs up (read deadline) or `give_up` passes.
/// Returns true if the server disconnected us — the correct defense.
///
/// # Errors
///
/// Propagates connect/configure failures.
pub fn stall_mid_request(addr: SocketAddr, give_up: Duration) -> std::io::Result<bool> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(give_up))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(b"{\"id\": 1, \"boa")?;
    writer.flush()?;
    // A hardened server times the read out and closes; our blocking read
    // then observes EOF. A wedged server leaves us hanging until give_up.
    let mut reader = BufReader::new(stream);
    let mut sink = [0u8; 64];
    match reader.read(&mut sink) {
        Ok(0) => Ok(true),   // server closed: defended
        Ok(_) => Ok(false),  // server answered half a request?!
        Err(_) => Ok(false), // our own timeout: server wedged
    }
}

/// What the binary server did about one hostile connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryDefense {
    /// The server sent an explicit `Error` frame.
    ErrorFrame,
    /// The server closed the connection without a reply.
    Disconnected,
    /// The server answered with a normal (non-error) reply — wrong for
    /// a hostile payload.
    Served,
    /// The server neither replied nor hung up before our timeout —
    /// a wedged shard.
    Wedged,
}

/// Writes `bytes` to a fresh connection against the binary listener
/// and classifies the server's defense.
///
/// # Errors
///
/// Propagates connect failures; everything after connect is part of
/// the classification.
pub fn binary_probe(addr: SocketAddr, bytes: &[u8]) -> std::io::Result<BinaryDefense> {
    let mut client = match BinaryClient::connect_timeout(addr, Duration::from_secs(5)) {
        Ok(c) => c,
        Err(ClientError::Io(e)) => return Err(e),
        Err(_) => return Ok(BinaryDefense::Wedged),
    };
    if client.send_raw(bytes).is_err() {
        // The server already slammed the door mid-write.
        return Ok(BinaryDefense::Disconnected);
    }
    match client.read_frame() {
        Ok(frame) if frame.opcode == Opcode::Error => Ok(BinaryDefense::ErrorFrame),
        Ok(_) => Ok(BinaryDefense::Served),
        Err(ClientError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            Ok(BinaryDefense::Disconnected)
        }
        Err(ClientError::Io(e))
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            Ok(BinaryDefense::Wedged)
        }
        // A garbled reply still proves the server engaged the error
        // path rather than serving the hostile frame.
        Err(_) => Ok(BinaryDefense::Disconnected),
    }
}

/// Sends seeded random bytes that (almost surely) never form a valid
/// frame. The decoder should fail the length bound, the version check,
/// or the CRC and answer with an `Error` frame or a disconnect.
///
/// # Errors
///
/// Propagates connect failures.
pub fn binary_garbage(addr: SocketAddr, seed: u64, len: usize) -> std::io::Result<BinaryDefense> {
    let mut rng = ChaosRng::new(seed);
    let mut junk = Vec::with_capacity(len);
    for _ in 0..len {
        junk.push(rng.next_u64() as u8);
    }
    binary_probe(addr, &junk)
}

/// Sends a frame header advertising `advertised_len` bytes (far past
/// the server's frame cap). A hardened decoder rejects the length
/// *before* buffering a body, so this must be refused immediately —
/// not after the server tries to allocate gigabytes.
///
/// # Errors
///
/// Propagates connect failures.
pub fn binary_oversized(addr: SocketAddr, advertised_len: u32) -> std::io::Result<BinaryDefense> {
    let mut bytes = Vec::with_capacity(16);
    bytes.extend_from_slice(&advertised_len.to_le_bytes());
    // A few body bytes so the server sees the header plus a taste of
    // the (never-completed) payload.
    bytes.extend_from_slice(&[1, 1, 0, 0, 0, 0, 0, 0]);
    binary_probe(addr, &bytes)
}

/// Sends the first `keep` bytes of a valid tune frame and then goes
/// silent, holding the socket open. The server's mid-frame read
/// deadline must eventually disconnect us. Returns true if it did.
///
/// # Errors
///
/// Propagates connect/configure failures.
pub fn binary_truncated(addr: SocketAddr, keep: usize, give_up: Duration) -> std::io::Result<bool> {
    let request = TuneRequest::new(1, "tx2", "orb");
    let frame = frame_bytes(Opcode::Tune, &encode_tune_request(&request));
    let keep = keep.min(frame.len().saturating_sub(1)).max(1);
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(give_up))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(&frame[..keep])?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let mut sink = [0u8; 64];
    match reader.read(&mut sink) {
        Ok(0) => Ok(true),   // server hit its read deadline: defended
        Ok(_) => Ok(false),  // server answered a partial frame?!
        Err(_) => Ok(false), // our own timeout: server wedged
    }
}

/// Builds a valid tune frame, flips one bit in its CRC trailer, and
/// sends it. The decoder must detect the corruption and refuse.
///
/// # Errors
///
/// Propagates connect failures.
pub fn binary_corrupt_crc(addr: SocketAddr, seed: u64) -> std::io::Result<BinaryDefense> {
    let mut rng = ChaosRng::new(seed);
    let request = TuneRequest::new(rng.next_u64(), "nano", "shwfs");
    let mut frame = frame_bytes(Opcode::Tune, &encode_tune_request(&request));
    let trailer_start = frame.len() - 4;
    let byte = trailer_start + rng.index(4);
    let bit = 1u8 << rng.index(8);
    frame[byte] ^= bit;
    binary_probe(addr, &frame)
}
