//! Hostile TCP clients for torturing a running tuning server.
//!
//! These helpers are the transport half of the chaos suite: they connect
//! to an `icomm-serve` endpoint and misbehave — random bytes, a line
//! that never ends, a half-request followed by silence. The server must
//! answer with error lines or disconnect; it must never wedge or panic.
//! Used by the integration tests; the timing-dependent parts are kept
//! out of [`ChaosReport`](crate::ChaosReport), which stays byte-identical
//! per seed.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::rng::ChaosRng;

/// Sends `lines` lines of seeded random bytes (newline-free garbage,
/// terminated), reading a response after each. Returns the number of
/// response lines received before the server cut us off.
///
/// # Errors
///
/// Propagates connect/configure failures; read/write failures mid-attack
/// just end the count.
pub fn send_garbage(addr: SocketAddr, seed: u64, lines: u32) -> std::io::Result<u64> {
    let mut rng = ChaosRng::new(seed);
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut responses = 0u64;
    for _ in 0..lines {
        let len = 1 + rng.index(64);
        let mut junk: Vec<u8> = Vec::with_capacity(len + 1);
        for _ in 0..len {
            // Printable non-newline garbage, so each write is one line.
            junk.push(b' ' + (rng.next_u64() % 94) as u8);
        }
        junk.push(b'\n');
        if writer
            .write_all(&junk)
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(n) if n > 0 => responses += 1,
            _ => break,
        }
    }
    Ok(responses)
}

/// Sends one `len`-byte line and returns the server's first response
/// line (empty if the server just closed the connection).
///
/// # Errors
///
/// Propagates connect/configure failures.
pub fn send_oversized(addr: SocketAddr, len: usize) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = vec![b'x'; len];
    line.push(b'\n');
    let _ = writer.write_all(&line).and_then(|()| writer.flush());
    let mut response = String::new();
    let _ = reader.read_line(&mut response);
    Ok(response)
}

/// Sends half a request and then stalls, holding the connection open
/// until the server hangs up (read deadline) or `give_up` passes.
/// Returns true if the server disconnected us — the correct defense.
///
/// # Errors
///
/// Propagates connect/configure failures.
pub fn stall_mid_request(addr: SocketAddr, give_up: Duration) -> std::io::Result<bool> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(give_up))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(b"{\"id\": 1, \"boa")?;
    writer.flush()?;
    // A hardened server times the read out and closes; our blocking read
    // then observes EOF. A wedged server leaves us hanging until give_up.
    let mut reader = BufReader::new(stream);
    let mut sink = [0u8; 64];
    match reader.read(&mut sink) {
        Ok(0) => Ok(true),   // server closed: defended
        Ok(_) => Ok(false),  // server answered half a request?!
        Err(_) => Ok(false), // our own timeout: server wedged
    }
}
