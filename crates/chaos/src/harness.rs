//! The chaos harness: one seeded campaign over the full stack, one
//! deterministic report.
//!
//! [`run_chaos`] executes four measurements for a `(plan, seed)` pair:
//!
//! 1. the **clean adaptive run** (no faults) — the baseline regret;
//! 2. the **faulted adaptive run** — same workload, counters degraded by
//!    the plan;
//! 3. the **static SC** and **oracle** baselines the regret is priced
//!    against;
//! 4. a **snapshot torture** pass over the device characterization's
//!    framed snapshot — the persist boundary under the same seed.
//!
//! Everything is simulated and seeded: no wall clock, no I/O, no
//! threads. Two runs with the same inputs produce byte-identical
//! reports — the property the CI chaos stage asserts.

use std::fmt;

use serde::{Deserialize, Serialize};

use icomm_adapt::{AdaptController, ControllerConfig, SwitchEvent};
use icomm_microbench::DeviceCharacterization;
use icomm_models::{oracle_phased, run_phased, static_phased, CommModelKind, PhasedWorkload};
use icomm_soc::DeviceProfile;

use crate::inject::{FaultInjector, InjectionLog};
use crate::plan::FaultPlan;
use crate::policy::run_faulted;
use crate::snapshot::{torture_snapshot, SnapshotTortureReport};

/// How many corruption trials the persist boundary gets per campaign.
const SNAPSHOT_TRIALS: u64 = 256;

/// The outcome of one chaos campaign. Fully deterministic per
/// `(device, workload, plan, seed)` — and serializable, so the CI stage
/// can diff two same-seed runs byte for byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosReport {
    /// Board name.
    pub device: String,
    /// Phased workload name.
    pub workload: String,
    /// The fault plan that ran.
    pub plan: FaultPlan,
    /// The campaign seed.
    pub seed: u64,
    /// Windows executed.
    pub windows: u64,
    /// The run completed without a panic or wedge. Present in the report
    /// for the reader; a campaign that did panic never produces one.
    pub survived: bool,
    /// Faults the injector actually landed.
    pub injections: InjectionLog,
    /// Clean adaptive regret vs the oracle, percent.
    pub clean_regret_pct: f64,
    /// Faulted adaptive regret vs the oracle, percent.
    pub faulted_regret_pct: f64,
    /// What the faults cost: faulted minus clean regret, in points.
    pub regret_inflation_pct: f64,
    /// Faulted adaptive time vs always-SC, percent (negative: the
    /// degraded controller still beat the safe static choice).
    pub faulted_vs_sc_pct: f64,
    /// Switches the faulted run charged.
    pub switches: u32,
    /// Windows quarantined for implausible counters.
    pub quarantined: u32,
    /// Windows lost from the stream.
    pub lost_windows: u64,
    /// Stale/duplicate deliveries the controller discarded.
    pub duplicates: u32,
    /// Switches suppressed by the confidence gate.
    pub suppressed_confidence: u32,
    /// Retreats to standard copy after confidence collapsed.
    pub sc_fallbacks: u32,
    /// Stream confidence at end of run.
    pub final_confidence: f64,
    /// Every switch the faulted controller committed.
    pub switch_log: Vec<SwitchEvent>,
    /// The persist boundary under the same seed.
    pub snapshot_torture: SnapshotTortureReport,
}

impl ChaosReport {
    /// Hard pass/fail for CI: the run completed, the controller state
    /// stayed sane, and no corrupted snapshot slipped past the verifier.
    pub fn passed(&self) -> bool {
        self.survived
            && self.snapshot_torture.survived()
            && self.final_confidence.is_finite()
            && (0.0..=1.0).contains(&self.final_confidence)
    }
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chaos campaign: '{}' on {} (seed {}, {} windows)",
            self.workload, self.device, self.seed, self.windows
        )?;
        writeln!(f, "  plan: {}", self.plan)?;
        writeln!(
            f,
            "  survived: {}   snapshot torture: {}/{} rejected, {} silent",
            if self.passed() { "yes" } else { "NO" },
            self.snapshot_torture.rejected,
            self.snapshot_torture.trials,
            self.snapshot_torture.silent,
        )?;
        writeln!(
            f,
            "  injected: {} dropped ({} stalled), {} dup, {} reordered, {} nan, {} inf, \
             {} saturated, {} outliers, {} noisy",
            self.injections.dropped,
            self.injections.stalled,
            self.injections.duplicated,
            self.injections.reordered,
            self.injections.nans,
            self.injections.infs,
            self.injections.saturated,
            self.injections.outliers,
            self.injections.noisy,
        )?;
        writeln!(
            f,
            "  regret vs oracle: clean {:+.2}%  faulted {:+.2}%  inflation {:+.2} pts",
            self.clean_regret_pct, self.faulted_regret_pct, self.regret_inflation_pct
        )?;
        writeln!(
            f,
            "  faulted vs always-SC: {:+.2}%   switches: {}",
            self.faulted_vs_sc_pct, self.switches
        )?;
        writeln!(
            f,
            "  defenses: {} quarantined, {} lost, {} stale, {} confidence-suppressed, \
             {} SC fallbacks (confidence {:.2} at end)",
            self.quarantined,
            self.lost_windows,
            self.duplicates,
            self.suppressed_confidence,
            self.sc_fallbacks,
            self.final_confidence,
        )?;
        for ev in &self.switch_log {
            writeln!(
                f,
                "  switch @{:>4}: {} -> {} ({})",
                ev.window,
                ev.from.abbrev(),
                ev.to.abbrev(),
                ev.reason
            )?;
        }
        Ok(())
    }
}

/// Regret of `time` against `reference`, in percent; 0 when the
/// reference is degenerate.
fn regret_pct(time: u64, reference: u64) -> f64 {
    if reference == 0 {
        0.0
    } else {
        (time as f64 - reference as f64) / reference as f64 * 100.0
    }
}

/// The controller configuration a chaos campaign uses — the CLI `adapt`
/// defaults with the workload's payload hint.
fn campaign_config(phased: &PhasedWorkload) -> ControllerConfig {
    ControllerConfig {
        payload_hint: phased.phases[0].workload.bytes_exchanged(),
        ..ControllerConfig::default()
    }
}

/// Runs one chaos campaign and reports it.
pub fn run_chaos(
    device: &DeviceProfile,
    characterization: &DeviceCharacterization,
    phased: &PhasedWorkload,
    plan: &FaultPlan,
    seed: u64,
) -> ChaosReport {
    let config = campaign_config(phased);

    let mut clean_controller =
        AdaptController::new(device.clone(), characterization.clone(), config.clone());
    let clean = run_phased(device, phased, &mut clean_controller);
    let oracle = oracle_phased(device, phased);
    let static_sc = static_phased(device, phased, CommModelKind::StandardCopy);

    let mut controller = AdaptController::new(device.clone(), characterization.clone(), config);
    let mut injector = FaultInjector::new(plan.clone(), seed);
    let faulted = run_faulted(device, phased, &mut controller, &mut injector);

    let snapshot_torture = match icomm_persist::to_string(characterization) {
        Ok(json) => torture_snapshot(
            &icomm_persist::snapshot::encode(&json),
            seed,
            SNAPSHOT_TRIALS,
        ),
        // An unserializable characterization would itself be a bug; the
        // campaign still reports, with zero trials, rather than panic.
        Err(_) => SnapshotTortureReport::default(),
    };

    let clean_regret = regret_pct(clean.total_time.0, oracle.total_time.0);
    let faulted_regret = regret_pct(faulted.total_time.0, oracle.total_time.0);
    ChaosReport {
        device: device.name.clone(),
        workload: phased.name.clone(),
        plan: plan.clone(),
        seed,
        windows: phased.total_windows(),
        survived: true,
        injections: faulted.injections.clone(),
        clean_regret_pct: clean_regret,
        faulted_regret_pct: faulted_regret,
        regret_inflation_pct: faulted_regret - clean_regret,
        faulted_vs_sc_pct: regret_pct(faulted.total_time.0, static_sc.total_time.0),
        switches: faulted.switches,
        quarantined: faulted.stats.quarantined,
        lost_windows: faulted.stats.lost_windows,
        duplicates: faulted.stats.duplicates,
        suppressed_confidence: faulted.stats.suppressed_confidence,
        sc_fallbacks: faulted.stats.sc_fallbacks,
        final_confidence: faulted.final_confidence,
        switch_log: faulted.switch_log,
        snapshot_torture,
    }
}

/// Runs the same campaign across a seed matrix.
pub fn chaos_matrix(
    device: &DeviceProfile,
    characterization: &DeviceCharacterization,
    phased: &PhasedWorkload,
    plan: &FaultPlan,
    seeds: &[u64],
) -> Vec<ChaosReport> {
    seeds
        .iter()
        .map(|&seed| run_chaos(device, characterization, phased, plan, seed))
        .collect()
}

/// One summary line per campaign, plus a verdict — what the CI smoke
/// stage prints.
pub fn render_matrix(reports: &[ChaosReport]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  {:<6} {:>9} {:>9} {:>10} {:>7} {:>6} {:>6}  verdict",
        "seed", "clean%", "faulted%", "inflation", "quar", "fall", "conf"
    );
    for r in reports {
        let _ = writeln!(
            out,
            "  {:<6} {:>+9.2} {:>+9.2} {:>+10.2} {:>7} {:>6} {:>6.2}  {}",
            r.seed,
            r.clean_regret_pct,
            r.faulted_regret_pct,
            r.regret_inflation_pct,
            r.quarantined,
            r.sc_fallbacks,
            r.final_confidence,
            if r.passed() { "pass" } else { "FAIL" },
        );
    }
    let _ = writeln!(
        out,
        "  {}/{} campaigns passed",
        reports.iter().filter(|r| r.passed()).count(),
        reports.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use icomm_microbench::quick_characterize_device;
    use icomm_models::{GpuPhase, Workload, WorkloadPhase};
    use icomm_soc::cache::AccessKind;
    use icomm_soc::units::ByteSize;
    use icomm_trace::Pattern;

    fn setup() -> (DeviceProfile, DeviceCharacterization, PhasedWorkload) {
        let make = |passes| {
            Workload::builder("w")
                .bytes_to_gpu(ByteSize::kib(128))
                .gpu(GpuPhase {
                    compute_work: 1 << 14,
                    shared_accesses: Pattern::Repeat {
                        body: Box::new(Pattern::Linear {
                            start: 0,
                            bytes: 128 * 1024,
                            txn_bytes: 64,
                            kind: AccessKind::Read,
                        }),
                        times: passes,
                    },
                    private_accesses: None,
                })
                .build()
        };
        let phased = PhasedWorkload::new(
            "chaos-harness",
            vec![
                WorkloadPhase {
                    name: "light".into(),
                    windows: 8,
                    workload: make(1),
                },
                WorkloadPhase {
                    name: "heavy".into(),
                    windows: 8,
                    workload: make(10),
                },
            ],
        );
        let device = DeviceProfile::jetson_tx2();
        let characterization = quick_characterize_device(&device);
        (device, characterization, phased)
    }

    #[test]
    fn campaigns_pass_and_serialize_finitely() {
        let (device, characterization, phased) = setup();
        for preset in FaultPlan::PRESETS {
            let plan = FaultPlan::preset(preset).expect("listed preset resolves");
            let report = run_chaos(&device, &characterization, &phased, &plan, 42);
            assert!(report.passed(), "{preset}: {report}");
            // The JSON serializer rejects NaN/Inf — success doubles as a
            // finiteness check on every float in the report.
            let json = icomm_persist::to_string(&report).expect("report serializes");
            let back: ChaosReport = icomm_persist::from_str(&json).expect("report deserializes");
            assert_eq!(back, report);
        }
    }

    #[test]
    fn same_seed_reports_are_byte_identical() {
        let (device, characterization, phased) = setup();
        let plan = FaultPlan::hostile();
        let a = run_chaos(&device, &characterization, &phased, &plan, 1337);
        let b = run_chaos(&device, &characterization, &phased, &plan, 1337);
        assert_eq!(
            icomm_persist::to_string(&a).expect("first report serializes"),
            icomm_persist::to_string(&b).expect("second report serializes")
        );
        assert_eq!(format!("{a}"), format!("{b}"));
    }

    #[test]
    fn none_plan_has_zero_inflation() {
        let (device, characterization, phased) = setup();
        let report = run_chaos(&device, &characterization, &phased, &FaultPlan::none(), 5);
        assert_eq!(report.regret_inflation_pct, 0.0);
        assert_eq!(report.injections.total(), 0);
        assert_eq!(report.quarantined, 0);
        assert_eq!(report.final_confidence, 1.0);
    }

    #[test]
    fn matrix_renders_a_verdict_per_seed() {
        let (device, characterization, phased) = setup();
        let reports = chaos_matrix(
            &device,
            &characterization,
            &phased,
            &FaultPlan::full(),
            &[1, 2, 3],
        );
        assert_eq!(reports.len(), 3);
        let table = render_matrix(&reports);
        assert!(table.contains("3/3 campaigns passed"), "{table}");
    }
}
