//! The injector: turns a [`FaultPlan`] plus a seed into concrete faults
//! on a profile-window stream.
//!
//! Two orthogonal attack surfaces:
//!
//! - **stream faults** ([`FaultInjector::stream_action`]): a window is
//!   delivered, dropped, duplicated, or swallowed by a stall — what a
//!   lossy counter transport does to window *indices*;
//! - **value faults** ([`FaultInjector::corrupt`]): the delivered
//!   window's counters are jittered, spiked, NaN'd, or saturated — what
//!   multiplexing and timer wrap do to counter *values*.
//!
//! Every decision draws from one [`ChaosRng`], so a `(plan, seed)` pair
//! replays the exact same fault sequence.

use icomm_profile::ProfileReport;
use icomm_soc::units::Picos;
use serde::{Deserialize, Serialize};

use crate::plan::FaultPlan;
use crate::rng::ChaosRng;

/// What the transport does with one produced window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamAction {
    /// The window reaches the consumer.
    Deliver,
    /// The window is lost (the consumer sees an index gap).
    Drop,
    /// The window arrives twice with the same index.
    Duplicate,
    /// The window is held back and delivered after its successor.
    Reorder,
}

/// Counts of every fault actually injected — part of the chaos report.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionLog {
    /// Windows the transport delivered.
    pub delivered: u64,
    /// Windows dropped (incl. stalled ones).
    pub dropped: u64,
    /// Windows delivered twice.
    pub duplicated: u64,
    /// Windows delivered out of order.
    pub reordered: u64,
    /// Windows swallowed by a stall.
    pub stalled: u64,
    /// Counters jittered with Gaussian noise.
    pub noisy: u64,
    /// Counters hit by a heavy-tail outlier.
    pub outliers: u64,
    /// Counters replaced by NaN.
    pub nans: u64,
    /// Counters replaced by an infinity.
    pub infs: u64,
    /// Windows with a saturated/wrapped timer.
    pub saturated: u64,
}

impl InjectionLog {
    /// Total faults of any kind.
    pub fn total(&self) -> u64 {
        self.dropped
            + self.duplicated
            + self.reordered
            + self.noisy
            + self.outliers
            + self.nans
            + self.infs
            + self.saturated
    }
}

/// Seeded fault source for one chaos run.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: ChaosRng,
    stall_left: u32,
    log: InjectionLog,
}

impl FaultInjector {
    /// Creates an injector for `plan` with a deterministic seed.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        FaultInjector {
            plan,
            rng: ChaosRng::new(seed),
            stall_left: 0,
            log: InjectionLog::default(),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// What happened so far.
    pub fn log(&self) -> &InjectionLog {
        &self.log
    }

    /// Decides the transport's fate for the next produced window.
    pub fn stream_action(&mut self) -> StreamAction {
        if self.stall_left > 0 {
            self.stall_left -= 1;
            self.log.stalled += 1;
            self.log.dropped += 1;
            return StreamAction::Drop;
        }
        if self.rng.chance(self.plan.stall_prob) && self.plan.stall_windows > 0 {
            self.stall_left = self.plan.stall_windows - 1;
            self.log.stalled += 1;
            self.log.dropped += 1;
            return StreamAction::Drop;
        }
        if self.rng.chance(self.plan.drop_prob) {
            self.log.dropped += 1;
            return StreamAction::Drop;
        }
        if self.rng.chance(self.plan.dup_prob) {
            self.log.duplicated += 1;
            self.log.delivered += 1;
            return StreamAction::Duplicate;
        }
        if self.rng.chance(self.plan.reorder_prob) {
            self.log.reordered += 1;
            self.log.delivered += 1;
            return StreamAction::Reorder;
        }
        self.log.delivered += 1;
        StreamAction::Deliver
    }

    /// Applies value faults to a delivered window in place.
    pub fn corrupt(&mut self, profile: &mut ProfileReport) {
        // Noise and outliers on the continuous counters.
        if self.plan.noise_sigma > 0.0 || self.plan.outlier_prob > 0.0 {
            let sigma = self.plan.noise_sigma;
            let outlier_p = self.plan.outlier_prob;
            let alpha = self.plan.outlier_alpha;
            let mut jitter = |v: &mut f64| {
                if self.rng.chance(outlier_p) {
                    *v *= self.rng.pareto(alpha);
                    self.log.outliers += 1;
                } else if sigma > 0.0 {
                    *v *= 1.0 + sigma * self.rng.gauss();
                    self.log.noisy += 1;
                }
            };
            jitter(&mut profile.miss_rate_l1_cpu);
            jitter(&mut profile.miss_rate_ll_cpu);
            jitter(&mut profile.hit_rate_l1_gpu);
            jitter(&mut profile.gpu_transaction_bytes);
        }
        // NaN / Inf strikes on one counter at a time.
        if self.rng.chance(self.plan.nan_prob) {
            *self.pick_rate(profile) = f64::NAN;
            self.log.nans += 1;
        }
        if self.rng.chance(self.plan.inf_prob) {
            let sign = if self.rng.chance(0.5) { 1.0 } else { -1.0 };
            *self.pick_rate(profile) = sign * f64::INFINITY;
            self.log.infs += 1;
        }
        // Saturated or wrapped timer: the whole window's timing is junk.
        if self.rng.chance(self.plan.saturate_prob) {
            profile.total_time = if self.rng.chance(0.5) {
                Picos::ZERO
            } else {
                // Far beyond any plausible profiling window.
                Picos(u64::MAX / 2)
            };
            self.log.saturated += 1;
        }
    }

    fn pick_rate<'a>(&mut self, profile: &'a mut ProfileReport) -> &'a mut f64 {
        match self.rng.index(4) {
            0 => &mut profile.miss_rate_l1_cpu,
            1 => &mut profile.miss_rate_ll_cpu,
            2 => &mut profile.hit_rate_l1_gpu,
            _ => &mut profile.gpu_transaction_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icomm_models::CommModelKind;

    fn clean_profile() -> ProfileReport {
        ProfileReport {
            workload: "w".into(),
            model: CommModelKind::StandardCopy,
            miss_rate_l1_cpu: 0.1,
            miss_rate_ll_cpu: 0.2,
            hit_rate_l1_gpu: 0.8,
            gpu_transactions: 1000,
            gpu_transaction_bytes: 64.0,
            kernel_time: Picos::from_micros(50),
            cpu_time: Picos::from_micros(20),
            copy_time: Picos::from_micros(10),
            total_time: Picos::from_micros(90),
        }
    }

    #[test]
    fn none_plan_changes_nothing() {
        let mut injector = FaultInjector::new(FaultPlan::none(), 1);
        let mut profile = clean_profile();
        for _ in 0..100 {
            assert_eq!(injector.stream_action(), StreamAction::Deliver);
            injector.corrupt(&mut profile);
        }
        assert_eq!(profile, clean_profile());
        assert_eq!(injector.log().total(), 0);
        assert_eq!(injector.log().delivered, 100);
    }

    #[test]
    fn same_seed_injects_identically() {
        let run = |seed| {
            let mut injector = FaultInjector::new(FaultPlan::hostile(), seed);
            let mut out = Vec::new();
            for _ in 0..200 {
                let action = injector.stream_action();
                let mut p = clean_profile();
                injector.corrupt(&mut p);
                out.push((action, format!("{p:?}")));
            }
            (out, injector.log().clone())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn hostile_plan_actually_injects_every_class() {
        let mut injector = FaultInjector::new(FaultPlan::hostile(), 5);
        for _ in 0..500 {
            if injector.stream_action() != StreamAction::Drop {
                let mut p = clean_profile();
                injector.corrupt(&mut p);
            }
        }
        let log = injector.log();
        assert!(log.dropped > 0, "{log:?}");
        assert!(log.duplicated > 0, "{log:?}");
        assert!(log.reordered > 0, "{log:?}");
        assert!(log.stalled > 0, "{log:?}");
        assert!(log.nans > 0, "{log:?}");
        assert!(log.infs > 0, "{log:?}");
        assert!(log.saturated > 0, "{log:?}");
        assert!(log.outliers > 0, "{log:?}");
        assert!(log.noisy > 0, "{log:?}");
    }

    #[test]
    fn stall_swallows_consecutive_windows() {
        let plan = FaultPlan {
            stall_prob: 1.0,
            stall_windows: 3,
            ..FaultPlan::none()
        };
        let mut injector = FaultInjector::new(plan, 1);
        for _ in 0..9 {
            assert_eq!(injector.stream_action(), StreamAction::Drop);
        }
        assert_eq!(injector.log().stalled, 9);
    }
}
