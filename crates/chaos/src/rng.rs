//! The chaos random source: seeded, replayable, and self-contained.
//!
//! Every fault the harness injects is drawn from one [`ChaosRng`] stream,
//! so a `(plan, seed)` pair fully determines the run — the property the
//! byte-identical-replay guarantee rests on. The vendored `rand` only
//! samples integers, so the continuous distributions (uniform, Gaussian,
//! Pareto) are built here from raw 64-bit draws.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Deterministic random source for fault injection.
#[derive(Debug, Clone)]
pub struct ChaosRng {
    inner: StdRng,
}

impl ChaosRng {
    /// Creates a stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        ChaosRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.inner.next_u64() >> 11) as f64 * 2f64.powi(-53)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.uniform() < p
    }

    /// Uniform index in `[0, n)`; `n` must be positive.
    pub fn index(&mut self, n: usize) -> usize {
        (self.inner.next_u64() % n.max(1) as u64) as usize
    }

    /// Standard normal draw (Box-Muller).
    pub fn gauss(&mut self) -> f64 {
        // Avoid ln(0): shift the first draw away from zero.
        let u1 = (self.uniform()).max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Heavy-tail draw: Pareto with shape `alpha` and scale 1 (values in
    /// `[1, inf)`; smaller `alpha` means fatter tails).
    pub fn pareto(&mut self, alpha: f64) -> f64 {
        let u = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        u.powf(-1.0 / alpha.max(0.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_replays_identically() {
        let draw = |seed| {
            let mut rng = ChaosRng::new(seed);
            (0..64)
                .map(|_| (rng.uniform(), rng.gauss(), rng.pareto(1.5)))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn distributions_stay_in_range() {
        let mut rng = ChaosRng::new(99);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
            assert!(rng.gauss().is_finite());
            assert!(rng.pareto(1.5) >= 1.0);
        }
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn gauss_is_roughly_centered() {
        let mut rng = ChaosRng::new(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gauss()).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} far from 0");
    }
}
