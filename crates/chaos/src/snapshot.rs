//! Persist-boundary chaos: corrupting framed snapshots and checking the
//! verifier catches every mutilation.
//!
//! [`torture_snapshot`] takes the bytes of a framed snapshot
//! ([`icomm_persist::snapshot`]) and subjects them to seeded truncations,
//! bit flips, garbage splices and trailing junk. The invariant under
//! test: **no corrupted snapshot is ever silently accepted** — every
//! trial either fails verification loudly or (when the mutation happens
//! to be byte-identical, e.g. a zero-length truncation) decodes to the
//! original payload.

use serde::{Deserialize, Serialize};

use crate::rng::ChaosRng;

/// One way to mutilate a byte buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Cut the buffer after `keep` bytes.
    Truncate {
        /// Bytes to keep.
        keep: usize,
    },
    /// XOR one bit.
    BitFlip {
        /// Byte offset.
        offset: usize,
        /// Bit index, `0..8`.
        bit: u8,
    },
    /// Overwrite a span with garbage.
    Splice {
        /// Byte offset the garbage starts at.
        offset: usize,
        /// Garbage length.
        len: usize,
    },
    /// Append junk after the frame.
    TrailingJunk {
        /// Junk length.
        len: usize,
    },
}

/// Applies a corruption to a copy of `bytes`.
pub fn apply(bytes: &[u8], corruption: Corruption, rng: &mut ChaosRng) -> Vec<u8> {
    let mut out = bytes.to_vec();
    match corruption {
        Corruption::Truncate { keep } => out.truncate(keep.min(out.len())),
        Corruption::BitFlip { offset, bit } => {
            if !out.is_empty() {
                let offset = offset % out.len();
                out[offset] ^= 1 << (bit % 8);
            }
        }
        Corruption::Splice { offset, len } => {
            if !out.is_empty() {
                let offset = offset % out.len();
                let end = (offset + len).min(out.len());
                for b in &mut out[offset..end] {
                    *b = (rng.next_u64() & 0xFF) as u8;
                }
            }
        }
        Corruption::TrailingJunk { len } => {
            for _ in 0..len {
                out.push((rng.next_u64() & 0xFF) as u8);
            }
        }
    }
    out
}

/// Draws a random corruption sized to `len`-byte input.
pub fn random_corruption(len: usize, rng: &mut ChaosRng) -> Corruption {
    let len = len.max(1);
    match rng.index(4) {
        0 => Corruption::Truncate {
            keep: rng.index(len),
        },
        1 => Corruption::BitFlip {
            offset: rng.index(len),
            bit: (rng.next_u64() % 8) as u8,
        },
        2 => Corruption::Splice {
            offset: rng.index(len),
            len: 1 + rng.index(16),
        },
        _ => Corruption::TrailingJunk {
            len: 1 + rng.index(16),
        },
    }
}

/// Outcome of a snapshot torture campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotTortureReport {
    /// Corruption trials run.
    pub trials: u64,
    /// Trials the verifier rejected (the expected outcome).
    pub rejected: u64,
    /// Trials where the mutation left the frame verifiable AND the
    /// decoded payload identical to the original (benign, e.g. junk the
    /// parser never reads is impossible here, so this means the mutation
    /// was a no-op).
    pub intact: u64,
    /// Trials where a *changed* payload passed verification — silent
    /// corruption, the one unacceptable outcome.
    pub silent: u64,
}

impl SnapshotTortureReport {
    /// Whether the verifier held the line: nothing corrupt slipped by.
    pub fn survived(&self) -> bool {
        self.silent == 0
    }
}

/// Runs `trials` seeded corruptions against a framed snapshot and
/// classifies each decode attempt.
pub fn torture_snapshot(frame: &[u8], seed: u64, trials: u64) -> SnapshotTortureReport {
    let original = icomm_persist::snapshot::decode(frame)
        .map(str::to_owned)
        .ok();
    let mut rng = ChaosRng::new(seed);
    let mut report = SnapshotTortureReport {
        trials,
        ..SnapshotTortureReport::default()
    };
    for _ in 0..trials {
        let corruption = random_corruption(frame.len(), &mut rng);
        let mutated = apply(frame, corruption, &mut rng);
        match icomm_persist::snapshot::decode(&mutated) {
            Err(_) => report.rejected += 1,
            Ok(payload) if Some(payload) == original.as_deref() => report.intact += 1,
            Ok(_) => report.silent += 1,
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifier_rejects_every_real_corruption() {
        let frame = icomm_persist::snapshot::encode(r#"{"answer": 42}"#);
        let report = torture_snapshot(&frame, 1234, 500);
        assert!(report.survived(), "{report:?}");
        assert!(report.rejected > 0, "{report:?}");
        assert_eq!(report.trials, 500);
    }

    #[test]
    fn torture_is_deterministic_per_seed() {
        let frame = icomm_persist::snapshot::encode(r#"{"k": [1, 2, 3]}"#);
        let a = torture_snapshot(&frame, 7, 200);
        let b = torture_snapshot(&frame, 7, 200);
        assert_eq!(a, b);
    }

    #[test]
    fn corruptions_actually_mutate() {
        let mut rng = ChaosRng::new(9);
        let bytes = b"hello snapshot world".to_vec();
        let mut changed = 0;
        for _ in 0..100 {
            let c = random_corruption(bytes.len(), &mut rng);
            if apply(&bytes, c, &mut rng) != bytes {
                changed += 1;
            }
        }
        assert!(changed > 80, "only {changed}/100 corruptions changed bytes");
    }
}
