//! The fault plan: what to break, how hard, how often.
//!
//! A [`FaultPlan`] is a declarative description of a degraded
//! environment. Presets name the scenarios the CI matrix exercises
//! (`none`, `noise`, `loss`, `corrupt`, `hostile`, `full`); a spec string
//! like `"loss,drop_prob=0.4"` starts from a preset and overrides
//! individual knobs.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Probabilities and intensities for every fault class the injector
/// knows. All `*_prob` fields are per-window probabilities in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Relative Gaussian noise applied to every counter (sigma as a
    /// fraction of the value; `0.05` = 5% noise).
    pub noise_sigma: f64,
    /// Probability a counter gets a heavy-tail (Pareto) multiplicative
    /// outlier instead of mere noise.
    pub outlier_prob: f64,
    /// Pareto shape for outliers; smaller is fatter-tailed.
    pub outlier_alpha: f64,
    /// Probability a window is dropped from the stream (index gap).
    pub drop_prob: f64,
    /// Probability a window is delivered twice (same index).
    pub dup_prob: f64,
    /// Probability a window is held back and delivered after its
    /// successor (arrives stale, out of order).
    pub reorder_prob: f64,
    /// Probability one counter is replaced by NaN.
    pub nan_prob: f64,
    /// Probability one counter is replaced by +/-infinity.
    pub inf_prob: f64,
    /// Probability the window's timer saturates (total time pegged at a
    /// wrap-around value or zero).
    pub saturate_prob: f64,
    /// Probability a stall starts: the source goes silent for
    /// [`FaultPlan::stall_windows`] consecutive windows.
    pub stall_prob: f64,
    /// Length of a stall, in windows.
    pub stall_windows: u32,
    /// Fleet: probability a device crashed before arriving and lost its
    /// local snapshot — its registry entry is evicted, so it re-joins
    /// the fleet as a stranger (cold cache, fresh characterization or
    /// transfer).
    pub churn_prob: f64,
    /// Fleet: probability an arriving device's cluster has a poisoned
    /// characterization planted next to it in the registry — an
    /// adversarial transfer source the robust aggregation must absorb.
    pub poison_prob: f64,
    /// Fleet: shard panics injected into the live-fire serving slice
    /// (requires the binary wire, whose shard plane is supervised).
    pub shard_panics: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// No faults: the control run.
    pub fn none() -> Self {
        FaultPlan {
            noise_sigma: 0.0,
            outlier_prob: 0.0,
            outlier_alpha: 1.5,
            drop_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            nan_prob: 0.0,
            inf_prob: 0.0,
            saturate_prob: 0.0,
            stall_prob: 0.0,
            stall_windows: 4,
            churn_prob: 0.0,
            poison_prob: 0.0,
            shard_panics: 0,
        }
    }

    /// Measurement noise: Gaussian jitter plus occasional heavy-tail
    /// outliers, the baseline reality of multiplexed counters.
    pub fn noise() -> Self {
        FaultPlan {
            noise_sigma: 0.05,
            outlier_prob: 0.05,
            ..FaultPlan::none()
        }
    }

    /// Lossy transport: dropped, duplicated and stalled windows.
    pub fn loss() -> Self {
        FaultPlan {
            drop_prob: 0.15,
            dup_prob: 0.05,
            reorder_prob: 0.05,
            stall_prob: 0.02,
            stall_windows: 4,
            ..FaultPlan::none()
        }
    }

    /// Corrupted samples: NaN/Inf counters and saturated timers.
    pub fn corrupt() -> Self {
        FaultPlan {
            nan_prob: 0.08,
            inf_prob: 0.04,
            saturate_prob: 0.04,
            ..FaultPlan::none()
        }
    }

    /// Sustained counter loss: the stream mostly vanishes — the scenario
    /// that must drive the controller back to standard copy.
    pub fn hostile() -> Self {
        FaultPlan {
            noise_sigma: 0.10,
            outlier_prob: 0.10,
            drop_prob: 0.45,
            dup_prob: 0.10,
            reorder_prob: 0.10,
            nan_prob: 0.20,
            inf_prob: 0.10,
            saturate_prob: 0.10,
            stall_prob: 0.08,
            stall_windows: 6,
            outlier_alpha: 1.2,
            ..FaultPlan::none()
        }
    }

    /// Everything at once, at moderate intensity.
    pub fn full() -> Self {
        FaultPlan {
            noise_sigma: 0.05,
            outlier_prob: 0.05,
            drop_prob: 0.10,
            dup_prob: 0.05,
            reorder_prob: 0.05,
            nan_prob: 0.05,
            inf_prob: 0.02,
            saturate_prob: 0.03,
            stall_prob: 0.02,
            stall_windows: 4,
            outlier_alpha: 1.5,
            ..FaultPlan::none()
        }
    }

    /// The preset names [`FaultPlan::parse`] accepts.
    pub const PRESETS: [&'static str; 6] = ["none", "noise", "loss", "corrupt", "hostile", "full"];

    /// Looks up a preset by name.
    pub fn preset(name: &str) -> Option<FaultPlan> {
        match name {
            "none" => Some(FaultPlan::none()),
            "noise" => Some(FaultPlan::noise()),
            "loss" => Some(FaultPlan::loss()),
            "corrupt" => Some(FaultPlan::corrupt()),
            "hostile" => Some(FaultPlan::hostile()),
            "full" => Some(FaultPlan::full()),
            _ => None,
        }
    }

    /// Parses a plan spec: a preset name optionally followed by
    /// comma-separated `knob=value` overrides, e.g.
    /// `"loss,drop_prob=0.4,stall_windows=8"`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown preset, unknown knob, or
    /// unparseable/out-of-range value.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut parts = spec.split(',');
        let preset = parts.next().unwrap_or("").trim();
        let mut plan = FaultPlan::preset(preset).ok_or_else(|| {
            format!(
                "unknown fault preset '{preset}' (known: {})",
                FaultPlan::PRESETS.join(", ")
            )
        })?;
        for part in parts {
            let part = part.trim();
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected knob=value, got '{part}'"))?;
            let parse_f64 = || {
                value
                    .parse::<f64>()
                    .ok()
                    .filter(|v| v.is_finite() && *v >= 0.0)
                    .ok_or_else(|| {
                        format!("knob '{key}' needs a non-negative number, got '{value}'")
                    })
            };
            match key {
                "noise_sigma" => plan.noise_sigma = parse_f64()?,
                "outlier_prob" => plan.outlier_prob = parse_f64()?,
                "outlier_alpha" => plan.outlier_alpha = parse_f64()?,
                "drop_prob" => plan.drop_prob = parse_f64()?,
                "dup_prob" => plan.dup_prob = parse_f64()?,
                "reorder_prob" => plan.reorder_prob = parse_f64()?,
                "nan_prob" => plan.nan_prob = parse_f64()?,
                "inf_prob" => plan.inf_prob = parse_f64()?,
                "saturate_prob" => plan.saturate_prob = parse_f64()?,
                "stall_prob" => plan.stall_prob = parse_f64()?,
                "stall_windows" => {
                    plan.stall_windows = value
                        .parse::<u32>()
                        .map_err(|_| format!("knob '{key}' needs a count, got '{value}'"))?;
                }
                "churn_prob" => plan.churn_prob = parse_f64()?,
                "poison_prob" => plan.poison_prob = parse_f64()?,
                "shard_panics" => {
                    plan.shard_panics = value
                        .parse::<u32>()
                        .map_err(|_| format!("knob '{key}' needs a count, got '{value}'"))?;
                }
                other => return Err(format!("unknown fault knob '{other}'")),
            }
        }
        plan.validate()?;
        Ok(plan)
    }

    /// Checks every probability is in `[0, 1]` and every intensity is
    /// finite.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending knob.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("outlier_prob", self.outlier_prob),
            ("drop_prob", self.drop_prob),
            ("dup_prob", self.dup_prob),
            ("reorder_prob", self.reorder_prob),
            ("nan_prob", self.nan_prob),
            ("inf_prob", self.inf_prob),
            ("saturate_prob", self.saturate_prob),
            ("stall_prob", self.stall_prob),
            ("churn_prob", self.churn_prob),
            ("poison_prob", self.poison_prob),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} {p} outside [0, 1]"));
            }
        }
        if !self.noise_sigma.is_finite() || self.noise_sigma < 0.0 {
            return Err(format!("noise_sigma {} must be >= 0", self.noise_sigma));
        }
        if !self.outlier_alpha.is_finite() || self.outlier_alpha <= 0.0 {
            return Err(format!("outlier_alpha {} must be > 0", self.outlier_alpha));
        }
        Ok(())
    }

    /// Whether the plan injects anything at all.
    pub fn is_none(&self) -> bool {
        *self == FaultPlan::none()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "noise sigma {:.2}, outliers {:.0}%, drop {:.0}%, dup {:.0}%, reorder {:.0}%, \
             nan {:.0}%, inf {:.0}%, saturate {:.0}%, stall {:.0}% x{}",
            self.noise_sigma,
            self.outlier_prob * 100.0,
            self.drop_prob * 100.0,
            self.dup_prob * 100.0,
            self.reorder_prob * 100.0,
            self.nan_prob * 100.0,
            self.inf_prob * 100.0,
            self.saturate_prob * 100.0,
            self.stall_prob * 100.0,
            self.stall_windows,
        )?;
        if self.churn_prob > 0.0 || self.poison_prob > 0.0 || self.shard_panics > 0 {
            write!(
                f,
                ", churn {:.0}%, poison {:.0}%, shard panics {}",
                self.churn_prob * 100.0,
                self.poison_prob * 100.0,
                self.shard_panics,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_and_validate() {
        for name in FaultPlan::PRESETS {
            let plan = FaultPlan::preset(name).expect("listed preset resolves");
            plan.validate().expect("preset validates");
            assert_eq!(FaultPlan::parse(name).expect("preset name parses"), plan);
        }
        assert!(FaultPlan::preset("mayhem").is_none());
    }

    #[test]
    fn spec_overrides_apply() {
        let plan =
            FaultPlan::parse("loss,drop_prob=0.4,stall_windows=8").expect("override spec parses");
        assert_eq!(plan.drop_prob, 0.4);
        assert_eq!(plan.stall_windows, 8);
        assert_eq!(plan.dup_prob, FaultPlan::loss().dup_prob);
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        let err = FaultPlan::parse("mayhem").expect_err("unknown preset rejected");
        assert!(err.contains("unknown fault preset"), "{err}");
        let err = FaultPlan::parse("full,wat=1").expect_err("unknown knob rejected");
        assert!(err.contains("unknown fault knob"), "{err}");
        let err = FaultPlan::parse("full,drop_prob=chaos").expect_err("non-numeric rejected");
        assert!(err.contains("non-negative number"), "{err}");
        let err = FaultPlan::parse("full,drop_prob=1.5").expect_err("out-of-range rejected");
        assert!(err.contains("outside [0, 1]"), "{err}");
        let err = FaultPlan::parse("full,drop_prob").expect_err("bare knob rejected");
        assert!(err.contains("knob=value"), "{err}");
    }

    #[test]
    fn fleet_knobs_parse_and_validate() {
        let plan = FaultPlan::parse("none,churn_prob=0.1,poison_prob=0.2,shard_panics=3")
            .expect("fleet spec parses");
        assert_eq!(plan.churn_prob, 0.1);
        assert_eq!(plan.poison_prob, 0.2);
        assert_eq!(plan.shard_panics, 3);
        assert!(!plan.is_none());
        let shown = plan.to_string();
        assert!(shown.contains("churn 10%"), "{shown}");

        let err = FaultPlan::parse("none,churn_prob=1.5").expect_err("out-of-range rejected");
        assert!(err.contains("outside [0, 1]"), "{err}");
        // Fault-free plans keep the compact rendering.
        assert!(!FaultPlan::none().to_string().contains("churn"));
    }

    #[test]
    fn none_is_none() {
        assert!(FaultPlan::none().is_none());
        assert!(!FaultPlan::full().is_none());
        assert!(FaultPlan::parse("none")
            .expect("'none' spec parses")
            .is_none());
    }
}
