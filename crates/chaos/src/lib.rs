//! # icomm-chaos — deterministic fault injection for the tuning stack
//!
//! On real embedded deployments the profile→adapt→serve→persist pipeline
//! never sees clean inputs for long: counters multiplex and saturate,
//! window streams drop and reorder, snapshots tear mid-write, clients
//! stall mid-request. This crate makes those failures *reproducible*: a
//! [`FaultPlan`] names what breaks, a seed fixes exactly when, and the
//! whole campaign replays byte-identically — turning "it survived chaos"
//! into a regression test instead of an anecdote.
//!
//! The layers:
//!
//! - [`rng`]: the seeded random source ([`ChaosRng`]) every fault draws
//!   from — uniform, Gaussian and Pareto tails built on the workspace
//!   generator.
//! - [`plan`]: the declarative [`FaultPlan`] with its named presets
//!   (`none`, `noise`, `loss`, `corrupt`, `hostile`, `full`) and the
//!   `preset,knob=value` spec parser behind `icomm chaos --plan`.
//! - [`inject`]: the [`FaultInjector`] that turns the plan into stream
//!   faults (drop/duplicate/reorder/stall) and value faults
//!   (noise/outliers/NaN/Inf/saturation), logging every hit.
//! - [`policy`]: [`run_faulted`] — the adaptation controller driven
//!   through the degraded stream, with the same window execution and
//!   switch-cost accounting as the clean harness.
//! - [`snapshot`]: seeded corruption of framed persist snapshots,
//!   asserting the verifier rejects every real mutation.
//! - [`tcp`]: hostile clients (garbage, oversized lines, mid-request
//!   stalls) for the TCP server's integration tests, plus `binary_*`
//!   attacks (unframeable garbage, hostile advertised lengths,
//!   truncated frames, CRC bit-flips) for the `icomm-net` listener.
//! - [`harness`]: [`run_chaos`] / [`chaos_matrix`] — one campaign, one
//!   deterministic [`ChaosReport`] with regret inflation, quarantine and
//!   SC-fallback counts.
//!
//! The report's headline numbers: **regret inflation** (how much the
//! faults cost, in regret points vs the oracle) and **SC fallbacks**
//! (how often confidence collapsed and the controller retreated to the
//! always-correct standard-copy model). See the repository README
//! ("Fault tolerance") and `docs/RESULTS.md` for measured campaigns.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod harness;
pub mod inject;
pub mod plan;
pub mod policy;
pub mod rng;
pub mod snapshot;
pub mod tcp;

pub use harness::{chaos_matrix, render_matrix, run_chaos, ChaosReport};
pub use inject::{FaultInjector, InjectionLog, StreamAction};
pub use plan::FaultPlan;
pub use policy::{run_faulted, FaultedRun};
pub use rng::ChaosRng;
pub use snapshot::{torture_snapshot, SnapshotTortureReport};
