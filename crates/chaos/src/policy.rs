//! The chaos-driven adaptive run: an [`AdaptController`] fed through a
//! faulted counter transport.
//!
//! [`run_faulted`] mirrors [`icomm_models::run_phased`] exactly — same
//! per-window execution, same switch-cost charging — except the
//! controller observes the stream *through* a [`FaultInjector`]: windows
//! are dropped, duplicated, reordered, and their counters corrupted
//! before [`AdaptController::observe_profile`] sees them. The
//! application itself always runs (faults hit the measurement path, not
//! the workload), so the run's total time is directly comparable to the
//! clean adaptive run and the oracle.

use icomm_adapt::{AdaptController, AdaptStats, SwitchEvent};
use icomm_models::{model_for, switch_cost, CommModelKind, PhasedWorkload};
use icomm_profile::ProfileReport;
use icomm_soc::units::Picos;
use icomm_soc::{DeviceProfile, Soc};

use crate::inject::{FaultInjector, InjectionLog, StreamAction};

/// Outcome of one faulted adaptive run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultedRun {
    /// End-to-end time: window runtimes plus switch costs.
    pub total_time: Picos,
    /// Model switches actually charged.
    pub switches: u32,
    /// Model each window ran under.
    pub models: Vec<CommModelKind>,
    /// Controller counters at the end of the run.
    pub stats: AdaptStats,
    /// Every switch the controller committed.
    pub switch_log: Vec<SwitchEvent>,
    /// Stream confidence when the run ended.
    pub final_confidence: f64,
    /// What the injector actually did.
    pub injections: InjectionLog,
}

/// Runs `controller` over `phased` with the counter stream degraded by
/// `injector`. Deterministic for a given `(plan, seed, workload,
/// characterization)` tuple.
pub fn run_faulted(
    device: &DeviceProfile,
    phased: &PhasedWorkload,
    controller: &mut AdaptController,
    injector: &mut FaultInjector,
) -> FaultedRun {
    let total_windows = phased.total_windows();
    let mut active = controller.active_model();
    let mut pending_switch = Picos::ZERO;
    let mut switches = 0u32;
    let mut total_time = Picos::ZERO;
    let mut models = Vec::with_capacity(total_windows as usize);
    let mut window = 0u64;
    // A reordered window waits here until its successor is delivered.
    let mut held: Option<(u64, ProfileReport)> = None;
    for phase in &phased.phases {
        for _ in 0..phase.windows {
            let mut soc = Soc::new(device.clone());
            let run = model_for(active).run(&mut soc, &phase.workload);
            total_time += run.total_time + pending_switch;
            pending_switch = Picos::ZERO;
            models.push(active);

            let mut next = active;
            match injector.stream_action() {
                StreamAction::Drop => {}
                StreamAction::Deliver => {
                    let mut profile = ProfileReport::from_run(&run);
                    injector.corrupt(&mut profile);
                    next = controller.observe_profile(window, profile);
                    if let Some((stale_window, stale)) = held.take() {
                        // The held-back window lands after its successor.
                        next = controller.observe_profile(stale_window, stale);
                    }
                }
                StreamAction::Duplicate => {
                    let mut profile = ProfileReport::from_run(&run);
                    injector.corrupt(&mut profile);
                    controller.observe_profile(window, profile.clone());
                    next = controller.observe_profile(window, profile);
                }
                StreamAction::Reorder => {
                    let mut profile = ProfileReport::from_run(&run);
                    injector.corrupt(&mut profile);
                    if let Some((stale_window, stale)) = held.replace((window, profile)) {
                        // Two holds in flight: the older arrives now.
                        next = controller.observe_profile(stale_window, stale);
                    }
                }
            }

            if next != active && window + 1 < total_windows {
                let cost = switch_cost(device, &phase.workload, active, next);
                pending_switch = cost;
                switches += 1;
                active = next;
            }
            window += 1;
        }
    }
    // A window still held back at end of stream arrives last.
    if let Some((stale_window, stale)) = held.take() {
        controller.observe_profile(stale_window, stale);
    }
    FaultedRun {
        total_time,
        switches,
        models,
        stats: controller.stats().clone(),
        switch_log: controller.switch_log().to_vec(),
        final_confidence: controller.confidence(),
        injections: injector.log().clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;
    use icomm_adapt::ControllerConfig;
    use icomm_microbench::quick_characterize_device;
    use icomm_models::{run_phased, PhasedRunReport};

    fn setup() -> (DeviceProfile, PhasedWorkload) {
        use icomm_models::{GpuPhase, Workload, WorkloadPhase};
        use icomm_soc::cache::AccessKind;
        use icomm_soc::units::ByteSize;
        use icomm_trace::Pattern;
        let make = |passes| {
            Workload::builder("w")
                .bytes_to_gpu(ByteSize::kib(128))
                .gpu(GpuPhase {
                    compute_work: 1 << 14,
                    shared_accesses: Pattern::Repeat {
                        body: Box::new(Pattern::Linear {
                            start: 0,
                            bytes: 128 * 1024,
                            txn_bytes: 64,
                            kind: AccessKind::Read,
                        }),
                        times: passes,
                    },
                    private_accesses: None,
                })
                .build()
        };
        let phased = PhasedWorkload::new(
            "chaos-two-phase",
            vec![
                WorkloadPhase {
                    name: "light".into(),
                    windows: 8,
                    workload: make(1),
                },
                WorkloadPhase {
                    name: "heavy".into(),
                    windows: 8,
                    workload: make(10),
                },
            ],
        );
        (DeviceProfile::jetson_agx_xavier(), phased)
    }

    #[test]
    fn none_plan_matches_the_clean_harness() {
        let (device, phased) = setup();
        let characterization = quick_characterize_device(&device);
        let mut controller = AdaptController::new(
            device.clone(),
            characterization.clone(),
            ControllerConfig::default(),
        );
        let mut injector = FaultInjector::new(FaultPlan::none(), 1);
        let faulted = run_faulted(&device, &phased, &mut controller, &mut injector);

        let mut clean_controller = AdaptController::new(
            device.clone(),
            characterization,
            ControllerConfig::default(),
        );
        let clean: PhasedRunReport = run_phased(&device, &phased, &mut clean_controller);
        assert_eq!(faulted.total_time, clean.total_time);
        assert_eq!(faulted.models, clean.model_sequence());
        assert_eq!(faulted.switches, clean.switches);
        assert_eq!(faulted.injections.total(), 0);
    }

    #[test]
    fn faulted_runs_replay_identically() {
        let (device, phased) = setup();
        let characterization = quick_characterize_device(&device);
        let run = |seed| {
            let mut controller = AdaptController::new(
                device.clone(),
                characterization.clone(),
                ControllerConfig::default(),
            );
            let mut injector = FaultInjector::new(FaultPlan::hostile(), seed);
            run_faulted(&device, &phased, &mut controller, &mut injector)
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn every_window_runs_even_when_the_stream_collapses() {
        let (device, phased) = setup();
        let characterization = quick_characterize_device(&device);
        let mut controller = AdaptController::new(
            device.clone(),
            characterization,
            ControllerConfig::default(),
        );
        let plan = FaultPlan {
            drop_prob: 1.0,
            ..FaultPlan::none()
        };
        let mut injector = FaultInjector::new(plan, 7);
        let faulted = run_faulted(&device, &phased, &mut controller, &mut injector);
        assert_eq!(faulted.models.len() as u64, phased.total_windows());
        assert_eq!(faulted.stats.windows, 0);
        assert_eq!(faulted.injections.dropped, phased.total_windows());
    }
}
