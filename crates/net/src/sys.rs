//! Minimal `extern "C"` bindings for the Linux epoll and eventfd
//! syscall surface.
//!
//! The workspace is fully vendored and offline, so the usual `libc`
//! crate is unavailable. Instead of pulling in a dependency for six
//! functions, this module declares exactly the symbols the reactor
//! needs and nothing else. All wrappers translate `-1` returns into
//! [`std::io::Error::last_os_error`] so callers deal in ordinary
//! `io::Result`s.
//!
//! Safety notes:
//!
//! * `epoll_event` is `#[repr(C, packed)]` on x86-64 (matching the
//!   kernel ABI, which packs the struct on that architecture). Fields
//!   are only ever read by copy — never by reference — to avoid
//!   unaligned-reference UB.
//! * File descriptors handed to these wrappers are owned by the
//!   caller; nothing here closes an fd implicitly.

use std::io;

/// Raw file descriptor alias, kept local so the crate does not need
/// `std::os::fd` trait plumbing in its public API.
pub type RawFd = i32;

/// Readable event flag (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable event flag (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition flag (`EPOLLERR`).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up flag (`EPOLLHUP`).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down the writing half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

/// `epoll_ctl` op: register a new fd.
pub const EPOLL_CTL_ADD: i32 = 1;
/// `epoll_ctl` op: deregister an fd.
pub const EPOLL_CTL_DEL: i32 = 2;
/// `epoll_ctl` op: change the interest set of a registered fd.
pub const EPOLL_CTL_MOD: i32 = 3;

/// `epoll_create1` flag: close-on-exec.
pub const EPOLL_CLOEXEC: i32 = 0x80000;
/// `eventfd` flag: close-on-exec.
pub const EFD_CLOEXEC: i32 = 0x80000;
/// `eventfd` flag: nonblocking reads/writes.
pub const EFD_NONBLOCK: i32 = 0x800;

/// Kernel ABI layout of `struct epoll_event`.
///
/// x86-64 packs this struct (a historical quirk of the 32/64-bit
/// compat layer); other architectures use natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy, Debug)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// Caller-chosen token returned verbatim with each event.
    pub data: u64,
}

impl EpollEvent {
    /// Zeroed event, used to size the `epoll_wait` output buffer.
    pub const fn zeroed() -> Self {
        EpollEvent { events: 0, data: 0 }
    }
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Create a new epoll instance with close-on-exec set.
pub fn sys_epoll_create() -> io::Result<RawFd> {
    // SAFETY: no pointers involved; the kernel validates the flag.
    cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

/// Add, modify, or delete `fd` in the epoll interest set.
///
/// `op` is one of [`EPOLL_CTL_ADD`], [`EPOLL_CTL_MOD`],
/// [`EPOLL_CTL_DEL`]; for DEL the event payload is ignored.
pub fn sys_epoll_ctl(epfd: RawFd, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    let mut ev = EpollEvent {
        events,
        data: token,
    };
    // SAFETY: `ev` is a valid, live epoll_event for the duration of
    // the call; the kernel copies it before returning.
    cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) })?;
    Ok(())
}

/// Wait for readiness events, filling `events` and returning how many
/// entries were written. `timeout_ms < 0` blocks indefinitely.
pub fn sys_epoll_wait(
    epfd: RawFd,
    events: &mut [EpollEvent],
    timeout_ms: i32,
) -> io::Result<usize> {
    let max = events.len().min(i32::MAX as usize) as i32;
    // SAFETY: `events` points at `max` writable epoll_event slots.
    let n = cvt(unsafe { epoll_wait(epfd, events.as_mut_ptr(), max, timeout_ms) })?;
    Ok(n as usize)
}

/// Create a nonblocking close-on-exec eventfd for cross-thread wakeups.
pub fn sys_eventfd() -> io::Result<RawFd> {
    // SAFETY: no pointers involved.
    cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })
}

/// Post one wakeup to an eventfd (adds 1 to its counter).
pub fn sys_eventfd_write(fd: RawFd) -> io::Result<()> {
    let one: u64 = 1;
    // SAFETY: writes exactly 8 bytes from a live stack variable, the
    // size the eventfd ABI requires.
    let n = unsafe { write(fd, (&one as *const u64).cast::<u8>(), 8) };
    if n < 0 {
        let err = io::Error::last_os_error();
        // A full eventfd counter still counts as "woken".
        if err.kind() == io::ErrorKind::WouldBlock {
            return Ok(());
        }
        return Err(err);
    }
    Ok(())
}

/// Drain an eventfd's counter so it can signal again. Nonblocking: a
/// would-block (nothing pending) is not an error.
pub fn sys_eventfd_drain(fd: RawFd) {
    let mut buf = [0u8; 8];
    // SAFETY: reads at most 8 bytes into a live 8-byte buffer.
    let _ = unsafe { read(fd, buf.as_mut_ptr(), 8) };
}

/// Close a raw fd created by this module.
pub fn sys_close(fd: RawFd) {
    // SAFETY: the caller owns `fd`; double-closes are the caller's
    // responsibility and this crate closes each fd exactly once.
    let _ = unsafe { close(fd) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_create_and_close() {
        let fd = sys_epoll_create().expect("epoll_create1");
        assert!(fd >= 0);
        sys_close(fd);
    }

    #[test]
    fn eventfd_wakes_epoll() {
        let ep = sys_epoll_create().expect("epoll_create1");
        let ev = sys_eventfd().expect("eventfd");
        sys_epoll_ctl(ep, EPOLL_CTL_ADD, ev, EPOLLIN, 7).expect("ctl add");

        // Nothing pending: a zero-timeout wait sees no events.
        let mut events = vec![EpollEvent::zeroed(); 4];
        let n = sys_epoll_wait(ep, &mut events, 0).expect("wait");
        assert_eq!(n, 0);

        sys_eventfd_write(ev).expect("eventfd write");
        let n = sys_epoll_wait(ep, &mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        let token = events[0].data;
        assert_eq!(token, 7);

        // Drain resets the counter; the next zero-timeout wait is idle
        // again (level-triggered semantics).
        sys_eventfd_drain(ev);
        let n = sys_epoll_wait(ep, &mut events, 0).expect("wait");
        assert_eq!(n, 0);

        sys_close(ev);
        sys_close(ep);
    }

    #[test]
    fn ctl_del_removes_interest() {
        let ep = sys_epoll_create().expect("epoll_create1");
        let ev = sys_eventfd().expect("eventfd");
        sys_epoll_ctl(ep, EPOLL_CTL_ADD, ev, EPOLLIN, 1).expect("ctl add");
        sys_eventfd_write(ev).expect("write");
        sys_epoll_ctl(ep, EPOLL_CTL_DEL, ev, 0, 0).expect("ctl del");
        let mut events = vec![EpollEvent::zeroed(); 4];
        let n = sys_epoll_wait(ep, &mut events, 0).expect("wait");
        assert_eq!(n, 0);
        sys_close(ev);
        sys_close(ep);
    }
}
