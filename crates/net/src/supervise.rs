//! Shard supervision: liveness board, health reporting, and
//! deterministic panic injection.
//!
//! Every shard event loop runs under a supervisor (see
//! [`crate::BinaryServer`]) that catches panics, reconciles the
//! connections the dead shard orphaned, and restarts the loop under a
//! bounded-backoff [`icomm_resilience::RestartPolicy`]. The shared
//! [`HealthBoard`] is the supervision tree's observable state: one cell
//! per shard with a liveness flag, a restart counter, and the shard's
//! open-connection count. Clients read it through the `Health` opcode
//! as a JSON [`HealthReport`].
//!
//! [`PanicInjector`] is the chaos hook: a deterministic frame-countdown
//! that panics a shard mid-serve every `after_frames` served frames, up
//! to a fixed budget — the fleet harness uses it to prove the
//! supervisor restarts shards without losing responses on surviving
//! connections.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};

use serde::{Deserialize, Serialize};

/// Per-shard supervision state, shared between the shard thread, its
/// supervisor, and the acceptor.
#[derive(Debug)]
pub struct ShardHealthCell {
    /// Whether the shard's event loop is currently running.
    alive: AtomicBool,
    /// Times the supervisor restarted this shard after a panic.
    restarts: AtomicU64,
    /// Connections currently adopted by this shard. The supervisor
    /// swaps this to zero after a panic to reconcile the global
    /// open-connection count (the panicked loop never ran `close`).
    open: AtomicUsize,
}

impl ShardHealthCell {
    fn new() -> Self {
        ShardHealthCell {
            alive: AtomicBool::new(false),
            restarts: AtomicU64::new(0),
            open: AtomicUsize::new(0),
        }
    }

    /// Whether the shard's event loop is currently running.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Marks the shard alive (entering its event loop) or dead.
    pub fn set_alive(&self, alive: bool) {
        self.alive.store(alive, Ordering::Release);
    }

    /// Times the supervisor restarted this shard.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Records one supervisor restart.
    pub fn record_restart(&self) {
        self.restarts.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections currently adopted by the shard.
    pub fn open_conns(&self) -> usize {
        self.open.load(Ordering::Acquire)
    }

    /// The shard adopted a connection.
    pub fn conn_adopted(&self) {
        self.open.fetch_add(1, Ordering::AcqRel);
    }

    /// The shard closed (or failed to set up) an adopted connection.
    pub fn conn_closed(&self) {
        self.open.fetch_sub(1, Ordering::AcqRel);
    }

    /// Takes the orphan count after a panic: connections the dead loop
    /// still held. Resets the per-shard count to zero.
    pub fn take_orphans(&self) -> usize {
        self.open.swap(0, Ordering::AcqRel)
    }
}

/// Shared liveness/restart board: one [`ShardHealthCell`] per shard.
#[derive(Debug)]
pub struct HealthBoard {
    shards: Vec<ShardHealthCell>,
}

impl HealthBoard {
    /// Board for `shards` supervised event loops, all initially dead
    /// (each supervisor marks its shard alive on entry).
    pub fn new(shards: usize) -> Self {
        HealthBoard {
            shards: (0..shards.max(1)).map(|_| ShardHealthCell::new()).collect(),
        }
    }

    /// Number of shards on the board.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Boards are never empty ([`HealthBoard::new`] clamps to 1).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The cell for `shard` (panics on an out-of-range id — shard ids
    /// are assigned by the server that sized the board).
    pub fn cell(&self, shard: usize) -> &ShardHealthCell {
        &self.shards[shard]
    }

    /// Shards currently alive.
    pub fn alive_count(&self) -> usize {
        self.shards.iter().filter(|c| c.is_alive()).count()
    }

    /// Point-in-time health report for the `Health` opcode.
    pub fn report(&self) -> HealthReport {
        let shards: Vec<ShardHealth> = self
            .shards
            .iter()
            .enumerate()
            .map(|(shard, cell)| ShardHealth {
                shard,
                alive: cell.is_alive(),
                restarts: cell.restarts(),
                open_conns: cell.open_conns() as u64,
            })
            .collect();
        let alive = shards.iter().filter(|s| s.alive).count();
        let restarts_total = shards.iter().map(|s| s.restarts).sum();
        HealthReport {
            shards,
            alive,
            restarts_total,
        }
    }
}

/// Liveness and restart state of one shard, as reported on the wire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardHealth {
    /// Shard id (its index in the server's shard list).
    pub shard: usize,
    /// Whether the shard's event loop is currently running.
    pub alive: bool,
    /// Times the supervisor restarted this shard after a panic.
    pub restarts: u64,
    /// Connections currently adopted by this shard.
    pub open_conns: u64,
}

/// JSON payload of a `HealthReply` frame: the supervision tree's view
/// of every shard.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Per-shard liveness, restart, and connection counts.
    pub shards: Vec<ShardHealth>,
    /// Shards currently alive.
    pub alive: usize,
    /// Supervisor restarts summed across shards.
    pub restarts_total: u64,
}

/// Chaos-injection plan: panic a shard event loop every `after_frames`
/// served frames, `panics` times total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PanicPlan {
    /// Served frames between injected panics (clamped to at least 1).
    pub after_frames: u64,
    /// Total panics to inject before the injector goes quiet.
    pub panics: u32,
}

/// Deterministic shard-panic injector shared by every shard.
///
/// A global frame countdown: the shard serving the frame that drives
/// the countdown to zero panics on the spot (before any reply is
/// queued), re-arming the countdown until the panic budget is spent.
/// Deterministic in the *count* of panics per run; which shard takes
/// each hit follows the frame interleaving.
#[derive(Debug)]
pub struct PanicInjector {
    countdown: AtomicI64,
    interval: i64,
    remaining: AtomicI64,
    fired: AtomicU64,
}

impl PanicInjector {
    /// Injector from a plan.
    pub fn new(plan: PanicPlan) -> Self {
        let interval = plan.after_frames.max(1) as i64;
        PanicInjector {
            countdown: AtomicI64::new(interval),
            interval,
            remaining: AtomicI64::new(i64::from(plan.panics)),
            fired: AtomicU64::new(0),
        }
    }

    /// Panics injected so far.
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    /// Called once per served frame; panics when the countdown fires
    /// and the panic budget is not yet spent.
    pub fn check(&self) {
        if self.remaining.load(Ordering::Relaxed) <= 0 {
            return;
        }
        if self.countdown.fetch_sub(1, Ordering::AcqRel) != 1 {
            return;
        }
        // Countdown hit zero on this frame: re-arm for the next shot
        // and spend one panic from the budget.
        self.countdown.store(self.interval, Ordering::Release);
        if self.remaining.fetch_sub(1, Ordering::AcqRel) > 0 {
            self.fired.fetch_add(1, Ordering::Relaxed);
            panic!("injected shard panic (chaos)");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn board_tracks_liveness_and_restarts() {
        let board = HealthBoard::new(3);
        assert_eq!(board.len(), 3);
        assert_eq!(board.alive_count(), 0);
        board.cell(0).set_alive(true);
        board.cell(2).set_alive(true);
        board.cell(2).record_restart();
        board.cell(2).conn_adopted();
        board.cell(2).conn_adopted();
        let report = board.report();
        assert_eq!(report.alive, 2);
        assert_eq!(report.restarts_total, 1);
        assert!(report.shards[0].alive && !report.shards[1].alive);
        assert_eq!(report.shards[2].open_conns, 2);
    }

    #[test]
    fn orphan_takeover_resets_the_count() {
        let cell = ShardHealthCell::new();
        cell.conn_adopted();
        cell.conn_adopted();
        cell.conn_closed();
        assert_eq!(cell.take_orphans(), 1);
        assert_eq!(cell.open_conns(), 0);
    }

    #[test]
    fn injector_fires_exactly_its_budget() {
        let injector = PanicInjector::new(PanicPlan {
            after_frames: 3,
            panics: 2,
        });
        let mut panics = 0;
        for _ in 0..20 {
            if std::panic::catch_unwind(|| injector.check()).is_err() {
                panics += 1;
            }
        }
        assert_eq!(panics, 2);
        assert_eq!(injector.fired(), 2);
    }

    #[test]
    fn health_report_round_trips_through_json() {
        let board = HealthBoard::new(2);
        board.cell(1).set_alive(true);
        let report = board.report();
        let json = icomm_persist::to_string(&report).expect("serialize");
        let back: HealthReport = icomm_persist::from_str(&json).expect("parse");
        assert_eq!(back, report);
    }
}
