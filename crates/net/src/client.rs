//! Blocking binary-wire client.
//!
//! [`BinaryClient`] speaks `icommwire v1` over one TCP connection:
//! write a request frame, read frames until the matching reply
//! arrives. It is deliberately synchronous — the client side of this
//! workload (CLI, tests, load generators) wants simple call/return
//! semantics; concurrency comes from running many clients.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use icomm_microbench::DeviceCharacterization;
use icomm_serve::{StatsReport, TuneRequest, TuneResponse};

use crate::wire::{
    decode_batch_response, decode_error, decode_tune_response, encode_batch_request,
    encode_characterize_request, encode_tune_request, frame_bytes, Frame, FrameDecoder, Opcode,
    WireError,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, EOF mid-reply).
    Io(std::io::Error),
    /// The server's bytes did not decode as `icommwire v1`.
    Wire(WireError),
    /// The server replied with an explicit `Error` frame.
    Server(String),
    /// The server replied with a frame that makes no sense here (wrong
    /// opcode, undecodable JSON payload, ...).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server(message) => write!(f, "server error: {message}"),
            ClientError::Protocol(message) => write!(f, "protocol error: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// One blocking connection to a [`crate::BinaryServer`].
#[derive(Debug)]
pub struct BinaryClient {
    stream: TcpStream,
    decoder: FrameDecoder,
}

impl BinaryClient {
    /// Connects with TCP_NODELAY set (the protocol is request/response
    /// with small frames; Nagle only adds latency).
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: SocketAddr) -> Result<BinaryClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(BinaryClient {
            stream,
            decoder: FrameDecoder::with_default_limit(),
        })
    }

    /// Connects with a read timeout, so tests never hang on a lost
    /// reply.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect_timeout(
        addr: SocketAddr,
        read_timeout: Duration,
    ) -> Result<BinaryClient, ClientError> {
        let client = Self::connect(addr)?;
        client.stream.set_read_timeout(Some(read_timeout))?;
        Ok(client)
    }

    /// Sends one tune request and waits for its reply.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, wire-format violations, or an
    /// `Error` frame from the server.
    pub fn tune(&mut self, request: &TuneRequest) -> Result<TuneResponse, ClientError> {
        let frame = frame_bytes(Opcode::Tune, &encode_tune_request(request));
        self.stream.write_all(&frame)?;
        let reply = self.read_frame()?;
        match reply.opcode {
            Opcode::TuneReply => Ok(decode_tune_response(&reply.body)?),
            other => Err(self.unexpected(other, &reply.body)),
        }
    }

    /// Sends a batch of tune requests as one frame and waits for the
    /// single batched reply (responses in request order).
    ///
    /// # Errors
    ///
    /// Fails on transport errors, wire-format violations, or an
    /// `Error` frame from the server.
    pub fn tune_batch(
        &mut self,
        requests: &[TuneRequest],
    ) -> Result<Vec<TuneResponse>, ClientError> {
        let frame = frame_bytes(Opcode::Batch, &encode_batch_request(requests));
        self.stream.write_all(&frame)?;
        let reply = self.read_frame()?;
        match reply.opcode {
            Opcode::BatchReply => Ok(decode_batch_response(&reply.body)?),
            other => Err(self.unexpected(other, &reply.body)),
        }
    }

    /// Fetches the service's stats report.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, wire-format violations, or an
    /// undecodable stats payload.
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        let frame = frame_bytes(Opcode::Stats, &[]);
        self.stream.write_all(&frame)?;
        let reply = self.read_frame()?;
        match reply.opcode {
            Opcode::StatsReply => {
                let json = std::str::from_utf8(&reply.body)
                    .map_err(|_| ClientError::Protocol("stats payload not UTF-8".to_string()))?;
                icomm_persist::from_str(json)
                    .map_err(|e| ClientError::Protocol(format!("stats payload: {e:?}")))
            }
            other => Err(self.unexpected(other, &reply.body)),
        }
    }

    /// Fetches the server's supervision-tree health report: per-shard
    /// liveness, restart counts, and open connections.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, wire-format violations, or an
    /// undecodable health payload.
    pub fn health(&mut self) -> Result<crate::HealthReport, ClientError> {
        let frame = frame_bytes(Opcode::Health, &[]);
        self.stream.write_all(&frame)?;
        let reply = self.read_frame()?;
        match reply.opcode {
            Opcode::HealthReply => {
                let json = std::str::from_utf8(&reply.body)
                    .map_err(|_| ClientError::Protocol("health payload not UTF-8".to_string()))?;
                icomm_persist::from_str(json)
                    .map_err(|e| ClientError::Protocol(format!("health payload: {e:?}")))
            }
            other => Err(self.unexpected(other, &reply.body)),
        }
    }

    /// Asks the server to characterize a board by name.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, wire-format violations, an unknown
    /// board, or an undecodable characterization payload.
    pub fn characterize(&mut self, board: &str) -> Result<DeviceCharacterization, ClientError> {
        let frame = frame_bytes(Opcode::Characterize, &encode_characterize_request(board));
        self.stream.write_all(&frame)?;
        let reply = self.read_frame()?;
        match reply.opcode {
            Opcode::CharacterizeReply => {
                let json = std::str::from_utf8(&reply.body).map_err(|_| {
                    ClientError::Protocol("characterization payload not UTF-8".to_string())
                })?;
                icomm_persist::from_str(json)
                    .map_err(|e| ClientError::Protocol(format!("characterization payload: {e:?}")))
            }
            other => Err(self.unexpected(other, &reply.body)),
        }
    }

    /// Writes raw bytes to the socket — the hostile-client hook used
    /// by the chaos harness to inject malformed frames.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }

    /// Reads frames until one complete frame is available.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, EOF mid-frame, or wire violations.
    pub fn read_frame(&mut self) -> Result<Frame, ClientError> {
        loop {
            if let Some(frame) = self.decoder.next_frame()? {
                return Ok(frame);
            }
            let mut buf = [0u8; 16 * 1024];
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
            self.decoder.extend(&buf[..n]);
        }
    }

    fn unexpected(&self, opcode: Opcode, body: &[u8]) -> ClientError {
        if opcode == Opcode::Error {
            match decode_error(body) {
                Ok(message) => ClientError::Server(message),
                Err(e) => ClientError::Wire(e),
            }
        } else {
            ClientError::Protocol(format!("unexpected reply opcode {opcode:?}"))
        }
    }
}
