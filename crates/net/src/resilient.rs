//! Self-healing wrapper over [`BinaryClient`].
//!
//! [`ResilientClient`] owns (and transparently re-establishes) one
//! connection to a binary server and layers three recovery behaviors
//! over every idempotent call:
//!
//! * **Deadline-bounded retries** with deterministically jittered
//!   exponential backoff ([`icomm_resilience::RetryPolicy`]). Only
//!   transport-level failures retry — an explicit server error is
//!   deterministic and surfaces immediately.
//! * **A per-endpoint circuit breaker**
//!   ([`icomm_resilience::CircuitBreaker`]): consecutive transport
//!   errors and `overloaded` responses trip it open, halting traffic
//!   for a cooldown before half-open probes readmit the endpoint.
//! * **Hedged reads** (optional): with `hedge_after` set, a reply
//!   that has not arrived within the hedge delay is abandoned and the
//!   request re-sent on a fresh connection — safe because Tune and
//!   Characterize are idempotent reads of derived state.
//!
//! The tune path is what the fleet live-fire harness runs against a
//! chaos-injected server: a shard panic mid-request surfaces as a
//! clean EOF here, the retry path reconnects (the acceptor deals the
//! new socket to a live shard), and the response is never lost.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use icomm_resilience::{BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy};
use icomm_serve::{StatsReport, TuneRequest, TuneResponse};

use crate::client::{BinaryClient, ClientError};
use crate::supervise::HealthReport;

/// Tuning for a [`ResilientClient`].
#[derive(Clone, Debug)]
pub struct ResilienceConfig {
    /// Retry schedule for transport failures.
    pub retry: RetryPolicy,
    /// Circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Hedged-read delay: abandon a pending reply after this long and
    /// re-send on a fresh connection. `None` disables hedging; the
    /// plain `read_timeout` then bounds each attempt.
    pub hedge_after: Option<Duration>,
    /// Per-attempt read timeout when hedging is disabled.
    pub read_timeout: Duration,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            hedge_after: None,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// Observable recovery activity of one [`ResilientClient`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResilienceCounters {
    /// Request attempts sent on the wire.
    pub attempts: u64,
    /// Attempts beyond the first for some request.
    pub retries: u64,
    /// Fresh connections established after a transport failure.
    pub reconnects: u64,
    /// Hedged re-sends after an overdue reply.
    pub hedges: u64,
    /// Calls rejected (or delayed) by the open circuit breaker.
    pub breaker_rejections: u64,
}

/// A self-healing blocking client for one server endpoint.
#[derive(Debug)]
pub struct ResilientClient {
    addr: SocketAddr,
    config: ResilienceConfig,
    breaker: CircuitBreaker,
    conn: Option<BinaryClient>,
    started: Instant,
    counters: ResilienceCounters,
}

impl ResilientClient {
    /// Client for `addr` with default resilience tuning. Connects
    /// lazily on the first call.
    pub fn new(addr: SocketAddr) -> Self {
        Self::with_config(addr, ResilienceConfig::default())
    }

    /// Client for `addr` with explicit tuning.
    pub fn with_config(addr: SocketAddr, config: ResilienceConfig) -> Self {
        let breaker = CircuitBreaker::new(config.breaker.clone());
        ResilientClient {
            addr,
            config,
            breaker,
            conn: None,
            started: Instant::now(),
            counters: ResilienceCounters::default(),
        }
    }

    /// Recovery activity so far.
    pub fn counters(&self) -> &ResilienceCounters {
        &self.counters
    }

    /// Current breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Times the breaker has tripped open.
    pub fn breaker_trips(&self) -> u64 {
        self.breaker.trips()
    }

    /// Sends one tune request with retries, breaker gating, and
    /// (when configured) hedged reads. An `overloaded` response is
    /// returned to the caller but counts against the breaker — the
    /// server is shedding; hammering it helps nobody.
    ///
    /// # Errors
    ///
    /// Fails when the deadline or attempt budget is exhausted, the
    /// breaker stayed open through the deadline, or the server
    /// answered with a deterministic error.
    pub fn tune(&mut self, request: &TuneRequest) -> Result<TuneResponse, ClientError> {
        self.call_idempotent(
            |client| client.tune(request),
            |response| response.is_overloaded(),
        )
    }

    /// Asks the server to characterize a board, with the same recovery
    /// behavior as [`ResilientClient::tune`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`ResilientClient::tune`].
    pub fn characterize(
        &mut self,
        board: &str,
    ) -> Result<icomm_microbench::DeviceCharacterization, ClientError> {
        self.call_idempotent(|client| client.characterize(board), |_| false)
    }

    /// Fetches the stats report with retries (idempotent).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ResilientClient::tune`].
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        self.call_idempotent(|client| client.stats(), |_| false)
    }

    /// Fetches the supervision health report with retries (idempotent).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ResilientClient::tune`].
    pub fn health(&mut self) -> Result<HealthReport, ClientError> {
        self.call_idempotent(|client| client.health(), |_| false)
    }

    /// Microseconds since client creation — the breaker's clock.
    fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Connection to call on, establishing one if needed.
    fn ensure_conn(&mut self) -> Result<&mut BinaryClient, ClientError> {
        if self.conn.is_none() {
            let read_timeout = self.config.hedge_after.unwrap_or(self.config.read_timeout);
            let client = BinaryClient::connect_timeout(self.addr, read_timeout)?;
            self.conn = Some(client);
        }
        Ok(self.conn.as_mut().expect("connection was just established"))
    }

    /// Whether a transport error is the hedging trigger: the reply is
    /// overdue, not broken.
    fn is_overdue(error: &ClientError) -> bool {
        matches!(
            error,
            ClientError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }

    /// Whether a server-side refusal names a transient availability
    /// condition rather than a deterministic request failure. "No shard
    /// event loops" means every shard is mid-restart — the supervisor
    /// brings one back within its backoff budget; "connection capacity"
    /// clears as other clients drain. Both are worth a retry.
    fn is_transient_refusal(error: &ClientError) -> bool {
        matches!(
            error,
            ClientError::Server(msg) if msg.contains("no shard event loops")
                || msg.contains("connection capacity")
        )
    }

    /// The shared retry/breaker/hedge engine for idempotent calls.
    ///
    /// `soft_failure` classifies successful replies that should still
    /// count against the breaker (`overloaded` tune responses).
    fn call_idempotent<T>(
        &mut self,
        op: impl Fn(&mut BinaryClient) -> Result<T, ClientError>,
        soft_failure: impl Fn(&T) -> bool,
    ) -> Result<T, ClientError> {
        let deadline = Instant::now() + self.config.retry.deadline;
        let mut last_error: Option<ClientError> = None;
        let mut attempt = 0u32;
        while attempt < self.config.retry.max_attempts {
            if attempt > 0 {
                self.counters.retries += 1;
            }
            if !self.breaker.allow(self.now_us()) {
                // Open breaker: wait out part of the cooldown inside
                // the deadline rather than failing instantly, so a
                // recovering endpoint gets its half-open probe.
                self.counters.breaker_rejections += 1;
                let wait = self.config.retry.backoff_for(attempt);
                if Instant::now() + wait >= deadline {
                    return Err(last_error.unwrap_or_else(|| {
                        ClientError::Server("circuit breaker open".to_string())
                    }));
                }
                std::thread::sleep(wait);
                last_error
                    .get_or_insert_with(|| ClientError::Server("circuit breaker open".to_string()));
                attempt += 1;
                continue;
            }
            self.counters.attempts += 1;
            let outcome = match self.ensure_conn() {
                Ok(client) => op(client),
                Err(e) => Err(e),
            };
            match outcome {
                Ok(value) => {
                    let now = self.now_us();
                    if soft_failure(&value) {
                        self.breaker.record_failure(now);
                    } else {
                        self.breaker.record_success(now);
                    }
                    return Ok(value);
                }
                Err(e)
                    if matches!(e, ClientError::Io(_) | ClientError::Wire(_))
                        || Self::is_transient_refusal(&e) =>
                {
                    // The connection can no longer be trusted (EOF,
                    // timeout, desynchronized framing) or the server
                    // refused for a transient availability reason: drop
                    // the connection and retry on a fresh one.
                    let hedge = self.config.hedge_after.is_some() && Self::is_overdue(&e);
                    self.conn = None;
                    self.counters.reconnects += 1;
                    self.breaker.record_failure(self.now_us());
                    last_error = Some(e);
                    attempt += 1;
                    if hedge {
                        // Overdue reply: re-send immediately, no
                        // backoff — that is the hedge.
                        self.counters.hedges += 1;
                        if Instant::now() >= deadline {
                            break;
                        }
                        continue;
                    }
                    let wait = self.config.retry.backoff_for(attempt - 1);
                    if Instant::now() + wait >= deadline {
                        break;
                    }
                    std::thread::sleep(wait);
                }
                Err(e) => {
                    // Server / protocol errors are deterministic: the
                    // same request will fail the same way. Count it
                    // against the breaker and surface it.
                    self.breaker.record_failure(self.now_us());
                    return Err(e);
                }
            }
        }
        Err(last_error.unwrap_or_else(|| {
            ClientError::Server("retry budget exhausted with no attempt made".to_string())
        }))
    }
}
