//! Shared-nothing shard event loops.
//!
//! Each shard owns one [`Reactor`], a private connection table, and a
//! private decision cache — no locks are shared between shards on the
//! request path (the ROADMAP's "shared-nothing per-core shards"). An
//! acceptor thread hands new connections to shards round-robin over a
//! channel; from then on every byte of that connection is handled by
//! exactly one thread.
//!
//! The request path is batched: one reactor sweep drains every ready
//! socket, decodes all complete frames, serves what it can from the
//! shard-local decision cache, and submits the remainder to the
//! [`TuningService`] worker pool as a **single** batch — one
//! channel/condvar round-trip per sweep instead of one per request.
//! Responses are queued per-connection and flushed with vectored
//! writes.
//!
//! Client-visible ids are free-form and may collide across
//! connections, so the shard remaps every engine-bound request to a
//! synthetic id (its index in the sweep batch) and restores the
//! original id before encoding the reply.

use std::collections::{HashMap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::Receiver;
use icomm_serve::{StatsReport, TuneRequest, TuneResponse, TuningService};

use crate::reactor::{Event, Interest, Reactor};
use crate::supervise::{HealthBoard, PanicInjector};
use crate::wire::{
    decode_batch_request, decode_characterize_request, decode_tune_request, encode_error,
    encode_frame, frame_bytes, FrameDecoder, Opcode, WireError,
};

/// The shard's link to its supervision tree: the shared health board,
/// this shard's id on it, and the optional chaos panic injector.
#[derive(Debug)]
pub struct ShardSupervision {
    /// Shared per-shard liveness/restart/connection board.
    pub health: Arc<HealthBoard>,
    /// This shard's index on the board.
    pub shard_id: usize,
    /// Deterministic panic injector (chaos testing only).
    pub injector: Option<Arc<PanicInjector>>,
}

impl ShardSupervision {
    /// A standalone supervision context (own board, no injector) for
    /// tests and single-shard embedding.
    pub fn standalone() -> Self {
        ShardSupervision {
            health: Arc::new(HealthBoard::new(1)),
            shard_id: 0,
            injector: None,
        }
    }
}

/// Per-shard tunables, derived from the server's `NetConfig`.
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Largest frame a client may send, in bytes.
    pub max_frame_bytes: u32,
    /// How long a connection may stall mid-frame before it is dropped.
    /// `None` disables the deadline (idle connections with no partial
    /// frame are never reaped either way).
    pub read_deadline: Option<Duration>,
    /// Serve repeat `(board, app, current)` decisions from a
    /// shard-local cache without touching the worker pool.
    pub decision_cache: bool,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            max_frame_bytes: crate::wire::DEFAULT_MAX_FRAME_LEN,
            read_deadline: Some(Duration::from_secs(30)),
            decision_cache: true,
        }
    }
}

/// Upper bound on cached decisions per shard before the cache resets.
const DECISION_CACHE_CAP: usize = 4096;

/// How long one reactor sweep blocks when no work arrives, in ms. Also
/// bounds how late a deadline expiry can be observed.
const SWEEP_TIMEOUT_MS: i32 = 100;

/// Decision-cache key: the request coordinates that determine a
/// decision. Keyed on the *request*'s `current` — the engine fills a
/// default into the response, so keying on the response would never
/// match a follow-up request.
type CacheKey = (String, String, Option<String>);

/// Where an engine-bound request came from, so its response can be
/// routed back with the original client id, plus the cache key the
/// response should be stored under.
struct Origin {
    target: Target,
    key: Option<CacheKey>,
}

/// Reply routing for one engine-bound request.
enum Target {
    /// A lone `Tune` frame: reply with one `TuneReply`.
    Single { token: u64, orig_id: u64 },
    /// Slot `slot` of batch-group `group`: reply lands inside that
    /// group's `BatchReply` once every slot is filled.
    Group {
        group: usize,
        slot: usize,
        orig_id: u64,
    },
}

/// One in-flight `Batch` frame: the connection it came from and a slot
/// per request, filled by cache hits and engine responses alike.
struct Group {
    token: u64,
    slots: Vec<Option<TuneResponse>>,
}

/// Per-connection state owned by exactly one shard.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Encoded reply frames not yet fully written.
    outbox: VecDeque<Vec<u8>>,
    /// Bytes of `outbox.front()` already written.
    front_written: usize,
    /// Whether the reactor registration currently includes EPOLLOUT.
    wants_write: bool,
    /// Last moment bytes arrived; drives the mid-frame stall deadline.
    last_read: Instant,
    /// Close once the outbox drains (fatal frame error already queued).
    close_after_flush: bool,
}

impl Conn {
    fn queue(&mut self, frame: Vec<u8>) {
        self.outbox.push_back(frame);
    }
}

/// What to do with a connection after handling one of its events.
enum ConnFate {
    Keep,
    /// Close and count nothing further (clean EOF or queued-error close).
    Close,
}

/// A shard: one event loop thread's worth of state.
pub struct Shard {
    service: Arc<TuningService>,
    reactor: Reactor,
    incoming: Receiver<TcpStream>,
    shutdown: Arc<AtomicBool>,
    open_conns: Arc<AtomicUsize>,
    config: ShardConfig,
    supervision: ShardSupervision,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    decision_cache: HashMap<(String, String, Option<String>), TuneResponse>,
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("conns", &self.conns.len())
            .field("cached_decisions", &self.decision_cache.len())
            .finish()
    }
}

impl Shard {
    /// Builds a shard around an existing reactor (whose waker the
    /// acceptor already holds).
    pub fn new(
        service: Arc<TuningService>,
        reactor: Reactor,
        incoming: Receiver<TcpStream>,
        shutdown: Arc<AtomicBool>,
        open_conns: Arc<AtomicUsize>,
        config: ShardConfig,
        supervision: ShardSupervision,
    ) -> Self {
        Shard {
            service,
            reactor,
            incoming,
            shutdown,
            open_conns,
            config,
            supervision,
            conns: HashMap::new(),
            next_token: 1,
            decision_cache: HashMap::new(),
        }
    }

    /// Runs the event loop until the shutdown flag is set. Consumes the
    /// shard; all connections are dropped on exit.
    pub fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        while !self.shutdown.load(Ordering::Acquire) {
            if self.reactor.wait(&mut events, SWEEP_TIMEOUT_MS).is_err() {
                break;
            }
            self.adopt_incoming();

            // Sweep-wide accumulators: engine-bound requests with
            // synthetic ids, their origins, and open batch groups.
            let mut pending: Vec<TuneRequest> = Vec::new();
            let mut origins: Vec<Origin> = Vec::new();
            let mut groups: Vec<Group> = Vec::new();

            let drained: Vec<Event> = std::mem::take(&mut events);
            for event in drained {
                let fate = self.handle_event(&event, &mut pending, &mut origins, &mut groups);
                if matches!(fate, ConnFate::Close) {
                    self.close(event.token);
                }
            }

            self.dispatch(pending, origins, &mut groups);
            self.deliver_groups(groups);
            self.flush_all();
            self.sweep_deadlines();
        }
        // Drop every connection eagerly so the open-connection count
        // the acceptor checks is accurate during shutdown.
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close(token);
        }
    }

    /// Registers connections the acceptor queued on our channel.
    fn adopt_incoming(&mut self) {
        while let Ok(stream) = self.incoming.try_recv() {
            if stream.set_nonblocking(true).is_err() {
                self.conn_error();
                continue;
            }
            let _ = stream.set_nodelay(true);
            let token = self.next_token;
            self.next_token += 1;
            if self
                .reactor
                .register(&stream, token, Interest::READ)
                .is_err()
            {
                self.conn_error();
                continue;
            }
            self.conns.insert(
                token,
                Conn {
                    stream,
                    decoder: FrameDecoder::new(self.config.max_frame_bytes),
                    outbox: VecDeque::new(),
                    front_written: 0,
                    wants_write: false,
                    last_read: Instant::now(),
                    close_after_flush: false,
                },
            );
            // Mirror the adoption on the health board: if this loop
            // panics, the supervisor reads the per-shard count to
            // reconcile the global one.
            self.supervision
                .health
                .cell(self.supervision.shard_id)
                .conn_adopted();
        }
    }

    /// An accepted connection failed before serving anything.
    fn conn_error(&self) {
        let metrics = self.service.metrics_handle();
        metrics.conn_errors.fetch_add(1, Ordering::Relaxed);
        self.open_conns.fetch_sub(1, Ordering::AcqRel);
    }

    fn handle_event(
        &mut self,
        event: &Event,
        pending: &mut Vec<TuneRequest>,
        origins: &mut Vec<Origin>,
        groups: &mut Vec<Group>,
    ) -> ConnFate {
        if !self.conns.contains_key(&event.token) {
            return ConnFate::Keep;
        }
        if event.readable || event.hangup {
            match self.read_ready(event.token, pending, origins, groups) {
                ConnFate::Close => return ConnFate::Close,
                ConnFate::Keep => {}
            }
        }
        // Writable readiness is consumed by the sweep-wide flush pass.
        ConnFate::Keep
    }

    /// Reads everything available on a connection, decoding and
    /// processing every complete frame.
    fn read_ready(
        &mut self,
        token: u64,
        pending: &mut Vec<TuneRequest>,
        origins: &mut Vec<Origin>,
        groups: &mut Vec<Group>,
    ) -> ConnFate {
        let mut buf = [0u8; 16 * 1024];
        let mut saw_eof = false;
        loop {
            let conn = match self.conns.get_mut(&token) {
                Some(c) => c,
                None => return ConnFate::Keep,
            };
            // Framing already failed: ignore whatever else the peer
            // sends and let the queued error frame flush.
            if conn.close_after_flush {
                return ConnFate::Keep;
            }
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    saw_eof = true;
                    break;
                }
                Ok(n) => {
                    conn.last_read = Instant::now();
                    conn.decoder.extend(&buf[..n]);
                    if let ConnFate::Close = self.drain_frames(token, pending, origins, groups) {
                        return ConnFate::Close;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.service
                        .metrics_handle()
                        .conn_errors
                        .fetch_add(1, Ordering::Relaxed);
                    return ConnFate::Close;
                }
            }
        }
        if saw_eof {
            if let Some(conn) = self.conns.get(&token) {
                if conn.decoder.has_partial() {
                    // The peer walked away mid-frame.
                    self.service
                        .metrics_handle()
                        .frame_truncated
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            return ConnFate::Close;
        }
        ConnFate::Keep
    }

    /// Decodes and serves every complete frame buffered on `token`.
    fn drain_frames(
        &mut self,
        token: u64,
        pending: &mut Vec<TuneRequest>,
        origins: &mut Vec<Origin>,
        groups: &mut Vec<Group>,
    ) -> ConnFate {
        loop {
            let frame = {
                let conn = match self.conns.get_mut(&token) {
                    Some(c) => c,
                    None => return ConnFate::Keep,
                };
                match conn.decoder.next_frame() {
                    Ok(Some(frame)) => frame,
                    Ok(None) => return ConnFate::Keep,
                    Err(err) => {
                        // Framing is unrecoverable: we can no longer
                        // find the next frame boundary. Count, reply,
                        // close once the error frame flushes.
                        self.count_wire_error(&err);
                        if let Some(conn) = self.conns.get_mut(&token) {
                            conn.queue(frame_bytes(Opcode::Error, &encode_error(&err.to_string())));
                            conn.close_after_flush = true;
                        }
                        return ConnFate::Keep;
                    }
                }
            };
            self.serve_frame(token, frame.opcode, &frame.body, pending, origins, groups);
        }
    }

    fn count_wire_error(&self, err: &WireError) {
        let metrics = self.service.metrics_handle();
        match err {
            WireError::Oversized { .. } => metrics.frame_oversized.fetch_add(1, Ordering::Relaxed),
            WireError::BadCrc { .. } => metrics.frame_crc_errors.fetch_add(1, Ordering::Relaxed),
            _ => metrics.frame_malformed.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Serves one well-framed request.
    fn serve_frame(
        &mut self,
        token: u64,
        opcode: Opcode,
        body: &[u8],
        pending: &mut Vec<TuneRequest>,
        origins: &mut Vec<Origin>,
        groups: &mut Vec<Group>,
    ) {
        // Chaos hook: a deterministic frame countdown may panic this
        // shard here, before any reply is queued — the supervisor
        // catches it, the client sees a clean EOF and retries.
        if let Some(injector) = &self.supervision.injector {
            injector.check();
        }
        match opcode {
            Opcode::Tune => match decode_tune_request(body) {
                Ok(request) => {
                    self.route_request(request, None, token, pending, origins, groups);
                }
                Err(err) => self.reply_body_error(token, &err),
            },
            Opcode::Batch => match decode_batch_request(body) {
                Ok(requests) => {
                    if requests.is_empty() {
                        self.queue_frame(
                            token,
                            frame_bytes(
                                Opcode::BatchReply,
                                &crate::wire::encode_batch_response(&[]),
                            ),
                        );
                        return;
                    }
                    let group = groups.len();
                    groups.push(Group {
                        token,
                        slots: vec![None; requests.len()],
                    });
                    for (slot, request) in requests.into_iter().enumerate() {
                        self.route_request(
                            request,
                            Some((group, slot)),
                            token,
                            pending,
                            origins,
                            groups,
                        );
                    }
                }
                Err(err) => self.reply_body_error(token, &err),
            },
            Opcode::Stats => {
                let report = StatsReport::from_snapshot(&self.service.metrics());
                let frame = match icomm_persist::to_string(&report) {
                    Ok(json) => frame_bytes(Opcode::StatsReply, json.as_bytes()),
                    Err(e) => frame_bytes(
                        Opcode::Error,
                        &encode_error(&format!("stats serialization failed: {e:?}")),
                    ),
                };
                self.queue_frame(token, frame);
            }
            Opcode::Health => {
                let report = self.supervision.health.report();
                let frame = match icomm_persist::to_string(&report) {
                    Ok(json) => frame_bytes(Opcode::HealthReply, json.as_bytes()),
                    Err(e) => frame_bytes(
                        Opcode::Error,
                        &encode_error(&format!("health serialization failed: {e:?}")),
                    ),
                };
                self.queue_frame(token, frame);
            }
            Opcode::Characterize => match decode_characterize_request(body) {
                Ok(board) => {
                    let frame = match self.service.characterize_board(&board) {
                        Ok(characterization) => {
                            match icomm_persist::to_string(characterization.as_ref()) {
                                Ok(json) => frame_bytes(Opcode::CharacterizeReply, json.as_bytes()),
                                Err(e) => frame_bytes(
                                    Opcode::Error,
                                    &encode_error(&format!(
                                        "characterization serialization failed: {e:?}"
                                    )),
                                ),
                            }
                        }
                        Err(message) => frame_bytes(Opcode::Error, &encode_error(&message)),
                    };
                    self.queue_frame(token, frame);
                }
                Err(err) => self.reply_body_error(token, &err),
            },
            // Reply opcodes (and Error) only flow server→client; a
            // client sending one is confused or hostile.
            Opcode::TuneReply
            | Opcode::StatsReply
            | Opcode::CharacterizeReply
            | Opcode::BatchReply
            | Opcode::HealthReply
            | Opcode::Error => {
                self.service
                    .metrics_handle()
                    .frame_malformed
                    .fetch_add(1, Ordering::Relaxed);
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.queue(frame_bytes(
                        Opcode::Error,
                        &encode_error("unexpected reply opcode from client"),
                    ));
                    conn.close_after_flush = true;
                }
            }
        }
    }

    /// A structurally valid frame with an undecodable body: reply with
    /// an error but keep the connection (frame boundaries are intact).
    fn reply_body_error(&mut self, token: u64, err: &WireError) {
        self.service
            .metrics_handle()
            .frame_malformed
            .fetch_add(1, Ordering::Relaxed);
        self.queue_frame(
            token,
            frame_bytes(Opcode::Error, &encode_error(&err.to_string())),
        );
    }

    fn queue_frame(&mut self, token: u64, frame: Vec<u8>) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.queue(frame);
        }
    }

    /// Routes one tune request: decision cache first, engine batch
    /// otherwise. `slot` is `Some((group, slot))` for batch members.
    fn route_request(
        &mut self,
        request: TuneRequest,
        slot: Option<(usize, usize)>,
        token: u64,
        pending: &mut Vec<TuneRequest>,
        origins: &mut Vec<Origin>,
        groups: &mut [Group],
    ) {
        let key: Option<CacheKey> = if self.config.decision_cache {
            Some((
                request.board.clone(),
                request.app.clone(),
                request.current.clone(),
            ))
        } else {
            None
        };
        if let Some(cached) = key.as_ref().and_then(|k| self.decision_cache.get(k)) {
            let started = Instant::now();
            let mut response = cached.clone();
            response.id = request.id;
            let metrics = self.service.metrics_handle();
            metrics.requests.fetch_add(1, Ordering::Relaxed);
            metrics.completed.fetch_add(1, Ordering::Relaxed);
            metrics.decision_cache_hits.fetch_add(1, Ordering::Relaxed);
            metrics
                .total_latency
                .record(started.elapsed().as_micros() as u64);
            match slot {
                None => {
                    let body = crate::wire::encode_tune_response(&response);
                    self.queue_frame(token, frame_bytes(Opcode::TuneReply, &body));
                }
                Some((group, slot)) => {
                    groups[group].slots[slot] = Some(response);
                }
            }
            return;
        }
        let orig_id = request.id;
        let mut remapped = request;
        remapped.id = pending.len() as u64;
        pending.push(remapped);
        origins.push(Origin {
            target: match slot {
                None => Target::Single { token, orig_id },
                Some((group, slot)) => Target::Group {
                    group,
                    slot,
                    orig_id,
                },
            },
            key,
        });
    }

    /// Submits the sweep's engine-bound requests as one batch and
    /// routes the responses back to their origins.
    fn dispatch(&mut self, pending: Vec<TuneRequest>, origins: Vec<Origin>, groups: &mut [Group]) {
        if pending.is_empty() {
            return;
        }
        let metrics = self.service.metrics_handle();
        metrics.batches_submitted.fetch_add(1, Ordering::Relaxed);
        metrics
            .batched_requests
            .fetch_add(pending.len() as u64, Ordering::Relaxed);
        let responses = self.service.submit_batch(pending).wait();
        for mut response in responses {
            let index = response.id as usize;
            let origin = match origins.get(index) {
                Some(origin) => origin,
                // An engine response with an id we never issued would
                // be an engine bug; drop rather than misroute.
                None => continue,
            };
            if response.ok && response.overloaded.is_none() {
                if let Some(key) = &origin.key {
                    if self.decision_cache.len() >= DECISION_CACHE_CAP {
                        self.decision_cache.clear();
                    }
                    self.decision_cache.insert(key.clone(), response.clone());
                }
            }
            match origin.target {
                Target::Single { token, orig_id } => {
                    response.id = orig_id;
                    let body = crate::wire::encode_tune_response(&response);
                    self.queue_frame(token, frame_bytes(Opcode::TuneReply, &body));
                }
                Target::Group {
                    group,
                    slot,
                    orig_id,
                } => {
                    response.id = orig_id;
                    groups[group].slots[slot] = Some(response);
                }
            }
        }
    }

    /// Encodes one `BatchReply` per completed group. Every group
    /// completes within its sweep (the engine round-trip is
    /// synchronous), so unfilled slots mean a lost engine response —
    /// surfaced as an explicit failure rather than a hang.
    fn deliver_groups(&mut self, groups: Vec<Group>) {
        for group in groups {
            let responses: Vec<TuneResponse> = group
                .slots
                .into_iter()
                .enumerate()
                .map(|(slot, response)| {
                    response.unwrap_or_else(|| {
                        TuneResponse::failure(
                            slot as u64,
                            "engine returned no response for batch slot".to_string(),
                        )
                    })
                })
                .collect();
            let body = crate::wire::encode_batch_response(&responses);
            let mut frame = Vec::with_capacity(body.len() + 10);
            encode_frame(Opcode::BatchReply, &body, &mut frame);
            self.queue_frame(group.token, frame);
        }
    }

    /// Flushes every connection with queued output; closes the ones
    /// that finished flushing a fatal error, adjusts EPOLLOUT interest
    /// for the rest.
    fn flush_all(&mut self) {
        let tokens: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| !c.outbox.is_empty() || c.close_after_flush)
            .map(|(t, _)| *t)
            .collect();
        for token in tokens {
            match self.flush_conn(token) {
                ConnFate::Close => self.close(token),
                ConnFate::Keep => {}
            }
        }
    }

    /// Writes as much queued output as the socket accepts, vectored.
    fn flush_conn(&mut self, token: u64) -> ConnFate {
        let conn = match self.conns.get_mut(&token) {
            Some(c) => c,
            None => return ConnFate::Keep,
        };
        while !conn.outbox.is_empty() {
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(conn.outbox.len().min(64));
            for (i, frame) in conn.outbox.iter().take(64).enumerate() {
                let start = if i == 0 { conn.front_written } else { 0 };
                slices.push(IoSlice::new(&frame[start..]));
            }
            match conn.stream.write_vectored(&slices) {
                Ok(0) => {
                    self.service
                        .metrics_handle()
                        .conn_errors
                        .fetch_add(1, Ordering::Relaxed);
                    return ConnFate::Close;
                }
                Ok(mut n) => {
                    while n > 0 {
                        let front_left = conn.outbox[0].len() - conn.front_written;
                        if n >= front_left {
                            n -= front_left;
                            conn.outbox.pop_front();
                            conn.front_written = 0;
                        } else {
                            conn.front_written += n;
                            n = 0;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.service
                        .metrics_handle()
                        .conn_errors
                        .fetch_add(1, Ordering::Relaxed);
                    return ConnFate::Close;
                }
            }
        }
        if conn.outbox.is_empty() {
            if conn.close_after_flush {
                return ConnFate::Close;
            }
            if conn.wants_write {
                conn.wants_write = false;
                let _ = self.reactor.reregister(&conn.stream, token, Interest::READ);
            }
        } else if !conn.wants_write {
            conn.wants_write = true;
            let _ = self
                .reactor
                .reregister(&conn.stream, token, Interest::READ_WRITE);
        }
        ConnFate::Keep
    }

    /// Drops connections stalled mid-frame past the read deadline.
    /// Idle connections with no partial frame are left alone — cheap
    /// keep-alive is the point of an event-driven server.
    fn sweep_deadlines(&mut self) {
        let deadline = match self.config.read_deadline {
            Some(d) => d,
            None => return,
        };
        let now = Instant::now();
        let stalled: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.decoder.has_partial() && now.duration_since(c.last_read) > deadline)
            .map(|(t, _)| *t)
            .collect();
        for token in stalled {
            self.service
                .metrics_handle()
                .read_timeouts
                .fetch_add(1, Ordering::Relaxed);
            self.close(token);
        }
    }

    /// Deregisters and drops a connection, releasing its capacity slot.
    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.reactor.deregister(&conn.stream);
            self.open_conns.fetch_sub(1, Ordering::AcqRel);
            self.supervision
                .health
                .cell(self.supervision.shard_id)
                .conn_closed();
        }
    }
}
