//! The binary TCP listener: acceptor thread + supervised shard loops.
//!
//! [`BinaryServer`] binds a listener, spins up `shards` event-loop
//! threads (one reactor each), and runs an acceptor thread that deals
//! new connections to shards round-robin. The acceptor enforces the
//! global connection cap *before* a connection reaches a shard: an
//! over-cap client gets a single `Error` frame and an immediate close,
//! so a saturated server degrades with explicit refusals instead of
//! accept-queue timeouts.
//!
//! Every shard thread is a **supervisor**: the event loop runs under
//! `catch_unwind`, and a panic tears down only that shard's
//! connections (their sockets close with a clean EOF) while the
//! supervisor reconciles the global connection count, waits out an
//! exponential backoff, builds a fresh [`Reactor`], and restarts the
//! loop — up to the [`icomm_resilience::RestartPolicy`] budget. The
//! acceptor reads the shared [`HealthBoard`] and routes new
//! connections around dead shards; clients observe the supervision
//! tree through the `Health` opcode.
//!
//! The JSON line server ([`icomm_serve::Server`]) stays available as a
//! compatibility listener; both planes can serve the same
//! [`TuningService`] simultaneously, which is how the parity and
//! throughput harnesses compare them.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use icomm_resilience::{RestartPolicy, Supervisor};
use icomm_serve::TuningService;

use crate::reactor::{Reactor, Waker};
use crate::shard::{Shard, ShardConfig, ShardSupervision};
use crate::supervise::{HealthBoard, HealthReport, PanicInjector, PanicPlan};
use crate::wire::{encode_error, frame_bytes, Opcode};

/// A shard's current waker, swapped by the supervisor on every restart
/// (each restart builds a fresh reactor with a fresh eventfd). Writers
/// recover a poisoned lock: the slot only ever holds a cloneable
/// handle, never partially-updated state.
type WakerSlot = Arc<Mutex<Waker>>;

fn set_waker(slot: &WakerSlot, waker: Waker) {
    match slot.lock() {
        Ok(mut guard) => *guard = waker,
        Err(poisoned) => *poisoned.into_inner() = waker,
    }
}

fn wake_slot(slot: &WakerSlot) {
    let waker = match slot.lock() {
        Ok(guard) => guard.clone(),
        Err(poisoned) => poisoned.into_inner().clone(),
    };
    let _ = waker.wake();
}

/// Configuration for the binary serving plane.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Number of shard event loops. Defaults to available parallelism.
    pub shards: usize,
    /// Global cap on concurrently open connections across all shards.
    pub max_connections: usize,
    /// Largest frame a client may send, in bytes.
    pub max_frame_bytes: u32,
    /// Mid-frame stall deadline (see [`ShardConfig::read_deadline`]).
    pub read_deadline: Option<Duration>,
    /// Enable the shard-local decision cache.
    pub decision_cache: bool,
    /// Restart budget and backoff for crashed shard event loops.
    pub restart: RestartPolicy,
    /// Chaos hook: inject deterministic shard panics (see
    /// [`PanicPlan`]). `None` in production.
    pub panic_plan: Option<PanicPlan>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            shards: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            max_connections: 16_384,
            max_frame_bytes: crate::wire::DEFAULT_MAX_FRAME_LEN,
            read_deadline: Some(Duration::from_secs(30)),
            decision_cache: true,
            restart: RestartPolicy::default(),
            panic_plan: None,
        }
    }
}

impl NetConfig {
    /// Sets the shard count (clamped to at least 1).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the global connection cap.
    pub fn with_max_connections(mut self, cap: usize) -> Self {
        self.max_connections = cap;
        self
    }

    /// Sets the mid-frame stall deadline (`None` disables it).
    pub fn with_read_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.read_deadline = deadline;
        self
    }

    /// Enables or disables the shard-local decision cache.
    pub fn with_decision_cache(mut self, enabled: bool) -> Self {
        self.decision_cache = enabled;
        self
    }

    /// Sets the shard restart budget and backoff.
    pub fn with_restart(mut self, restart: RestartPolicy) -> Self {
        self.restart = restart;
        self
    }

    /// Arms deterministic shard-panic injection (chaos testing only).
    pub fn with_panic_plan(mut self, plan: PanicPlan) -> Self {
        self.panic_plan = Some(plan);
        self
    }
}

/// Running binary server: acceptor + shard threads over a shared
/// [`TuningService`].
pub struct BinaryServer {
    service: Arc<TuningService>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    wakers: Vec<WakerSlot>,
    acceptor: Option<JoinHandle<()>>,
    shard_handles: Vec<JoinHandle<()>>,
    open_conns: Arc<AtomicUsize>,
    health: Arc<HealthBoard>,
    injector: Option<Arc<PanicInjector>>,
}

impl std::fmt::Debug for BinaryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BinaryServer")
            .field("local_addr", &self.local_addr)
            .field("shards", &self.shard_handles.len())
            .field("open_conns", &self.open_conns.load(Ordering::Relaxed))
            .finish()
    }
}

impl BinaryServer {
    /// Starts with default [`NetConfig`] on `addr` (port 0 picks a free
    /// port; see [`BinaryServer::local_addr`]).
    ///
    /// # Errors
    ///
    /// Returns a message when the listener cannot bind or a reactor
    /// cannot be created.
    pub fn start(service: Arc<TuningService>, addr: &str) -> Result<BinaryServer, String> {
        Self::start_with(service, addr, NetConfig::default())
    }

    /// Starts the acceptor and shard threads with an explicit config.
    ///
    /// # Errors
    ///
    /// Returns a message when the listener cannot bind or a reactor
    /// cannot be created.
    pub fn start_with(
        service: Arc<TuningService>,
        addr: &str,
        config: NetConfig,
    ) -> Result<BinaryServer, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let open_conns = Arc::new(AtomicUsize::new(0));
        let shard_config = ShardConfig {
            max_frame_bytes: config.max_frame_bytes,
            read_deadline: config.read_deadline,
            decision_cache: config.decision_cache,
        };
        let shards = config.shards.max(1);
        let health = Arc::new(HealthBoard::new(shards));
        let injector = config
            .panic_plan
            .map(|plan| Arc::new(PanicInjector::new(plan)));

        let mut wakers: Vec<WakerSlot> = Vec::new();
        let mut senders: Vec<Sender<TcpStream>> = Vec::new();
        let mut shard_handles = Vec::new();
        for shard_id in 0..shards {
            // The first reactor is built on the caller's thread so a
            // resource failure surfaces as a start error; restarts
            // build their own inside the supervisor.
            let reactor = Reactor::new().map_err(|e| format!("reactor: {e}"))?;
            let waker_slot: WakerSlot = Arc::new(Mutex::new(reactor.waker()));
            wakers.push(Arc::clone(&waker_slot));
            // Marked alive before the acceptor exists, so an early
            // connection is never refused by a not-yet-started shard.
            health.cell(shard_id).set_alive(true);
            let (tx, rx) = unbounded();
            senders.push(tx);
            let supervised = SupervisedShard {
                shard_id,
                service: Arc::clone(&service),
                incoming: rx,
                shutdown: Arc::clone(&shutdown),
                open_conns: Arc::clone(&open_conns),
                config: shard_config.clone(),
                health: Arc::clone(&health),
                injector: injector.clone(),
                waker_slot,
                restart: config.restart.clone(),
            };
            let handle = std::thread::Builder::new()
                .name(format!("icomm-net-shard-{shard_id}"))
                .spawn(move || supervised.run(reactor))
                .map_err(|e| format!("spawn shard: {e}"))?;
            shard_handles.push(handle);
        }

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let open_conns = Arc::clone(&open_conns);
            let wakers = wakers.clone();
            let metrics = Arc::clone(service.metrics_handle());
            let health = Arc::clone(&health);
            let max_connections = config.max_connections;
            std::thread::Builder::new()
                .name("icomm-net-accept".to_string())
                .spawn(move || {
                    accept_loop(AcceptLoop {
                        listener,
                        senders,
                        wakers,
                        shutdown,
                        open_conns,
                        metrics,
                        health,
                        max_connections,
                    })
                })
                .map_err(|e| format!("spawn acceptor: {e}"))?
        };

        Ok(BinaryServer {
            service,
            local_addr,
            shutdown,
            wakers,
            acceptor: Some(acceptor),
            shard_handles,
            open_conns,
            health,
            injector,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The service this listener fronts.
    pub fn service(&self) -> &Arc<TuningService> {
        &self.service
    }

    /// Connections currently open across all shards.
    pub fn open_connections(&self) -> usize {
        self.open_conns.load(Ordering::Relaxed)
    }

    /// Point-in-time supervision-tree health (what the `Health` opcode
    /// reports on the wire).
    pub fn health(&self) -> HealthReport {
        self.health.report()
    }

    /// Injected panics fired so far (0 without a [`PanicPlan`]).
    pub fn injected_panics(&self) -> u64 {
        self.injector.as_ref().map_or(0, |i| i.fired())
    }

    /// Stops the acceptor and every shard, dropping open connections.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the acceptor with a throwaway connection; the flag is
        // checked before the connection would be served.
        let _ = TcpStream::connect(self.local_addr);
        for slot in &self.wakers {
            wake_slot(slot);
        }
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        for handle in self.shard_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Everything one supervised shard thread owns.
struct SupervisedShard {
    shard_id: usize,
    service: Arc<TuningService>,
    incoming: Receiver<TcpStream>,
    shutdown: Arc<AtomicBool>,
    open_conns: Arc<AtomicUsize>,
    config: ShardConfig,
    health: Arc<HealthBoard>,
    injector: Option<Arc<PanicInjector>>,
    waker_slot: WakerSlot,
    restart: RestartPolicy,
}

impl SupervisedShard {
    /// The supervisor loop: run the event loop under `catch_unwind`;
    /// on panic, reconcile orphaned connections, back off, build a
    /// fresh reactor, and go again — until the restart budget runs out
    /// or shutdown is requested. Connections queued on the incoming
    /// channel survive restarts (the receiver is cloned per attempt).
    fn run(self, first_reactor: Reactor) {
        let metrics = Arc::clone(self.service.metrics_handle());
        let mut supervisor = Supervisor::new(self.restart.clone());
        let mut reactor = Some(first_reactor);
        loop {
            let r = match reactor.take() {
                Some(r) => r,
                None => match Reactor::new() {
                    Ok(r) => r,
                    // Out of fds or similar: the shard stays dark, the
                    // acceptor routes around it via the health board.
                    Err(_) => {
                        metrics.conn_errors.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                },
            };
            set_waker(&self.waker_slot, r.waker());
            let cell = self.health.cell(self.shard_id);
            cell.set_alive(true);
            let shard = Shard::new(
                Arc::clone(&self.service),
                r,
                self.incoming.clone(),
                Arc::clone(&self.shutdown),
                Arc::clone(&self.open_conns),
                self.config.clone(),
                ShardSupervision {
                    health: Arc::clone(&self.health),
                    shard_id: self.shard_id,
                    injector: self.injector.clone(),
                },
            );
            let outcome = catch_unwind(AssertUnwindSafe(move || shard.run()));
            cell.set_alive(false);
            match outcome {
                // Clean exit: shutdown was requested.
                Ok(()) => break,
                Err(_) => {
                    metrics.shard_panics.fetch_add(1, Ordering::Relaxed);
                    // The panicked loop never ran `close` for its
                    // connections; their sockets dropped with the loop
                    // (clean EOF client-side). Give their capacity
                    // slots back and count the orphans.
                    let orphaned = cell.take_orphans();
                    if orphaned > 0 {
                        self.open_conns.fetch_sub(orphaned, Ordering::AcqRel);
                        metrics
                            .conns_orphaned
                            .fetch_add(orphaned as u64, Ordering::Relaxed);
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    match supervisor.on_crash() {
                        Some(backoff) => {
                            std::thread::sleep(backoff);
                            if self.shutdown.load(Ordering::Acquire) {
                                break;
                            }
                            metrics.shard_restarts.fetch_add(1, Ordering::Relaxed);
                            cell.record_restart();
                        }
                        // Budget exhausted: the shard stays down.
                        None => break,
                    }
                }
            }
        }
    }
}

/// State the acceptor thread owns.
struct AcceptLoop {
    listener: TcpListener,
    senders: Vec<Sender<TcpStream>>,
    wakers: Vec<WakerSlot>,
    shutdown: Arc<AtomicBool>,
    open_conns: Arc<AtomicUsize>,
    metrics: Arc<icomm_serve::Metrics>,
    health: Arc<HealthBoard>,
    max_connections: usize,
}

/// Accepts connections, enforcing the global cap, and deals them to
/// *live* shards round-robin. A shard mid-restart (or past its restart
/// budget) is skipped; with every shard down, clients get an explicit
/// refusal frame instead of a connection that never answers.
fn accept_loop(state: AcceptLoop) {
    let AcceptLoop {
        listener,
        senders,
        wakers,
        shutdown,
        open_conns,
        metrics,
        health,
        max_connections,
    } = state;
    let mut next_shard = 0usize;
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        metrics.conn_accepted.fetch_add(1, Ordering::Relaxed);
        if open_conns.load(Ordering::Acquire) >= max_connections {
            metrics.conn_rejected.fetch_add(1, Ordering::Relaxed);
            refuse(stream, "server at connection capacity");
            continue;
        }
        // Prefer the round-robin target but route around dead shards.
        let start = next_shard;
        next_shard = next_shard.wrapping_add(1);
        let shard = (0..senders.len())
            .map(|probe| (start + probe) % senders.len())
            .find(|s| health.cell(*s).is_alive());
        let Some(shard) = shard else {
            // Every shard is down (all mid-restart or out of budget).
            metrics.conn_rejected.fetch_add(1, Ordering::Relaxed);
            refuse(stream, "no shard event loops available");
            continue;
        };
        open_conns.fetch_add(1, Ordering::AcqRel);
        if senders[shard].send(stream).is_err() {
            // Shard is gone (shutdown race); release the slot.
            open_conns.fetch_sub(1, Ordering::AcqRel);
            return;
        }
        wake_slot(&wakers[shard]);
    }
}

/// Tells a refused client why it is being dropped. Best-effort and
/// blocking is fine: the frame is one small write on a fresh socket.
fn refuse(mut stream: TcpStream, reason: &str) {
    let frame = frame_bytes(Opcode::Error, &encode_error(reason));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = stream.write_all(&frame);
}
