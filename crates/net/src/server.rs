//! The binary TCP listener: acceptor thread + shard event loops.
//!
//! [`BinaryServer`] binds a listener, spins up `shards` event-loop
//! threads (one reactor each), and runs an acceptor thread that deals
//! new connections to shards round-robin. The acceptor enforces the
//! global connection cap *before* a connection reaches a shard: an
//! over-cap client gets a single `Error` frame and an immediate close,
//! so a saturated server degrades with explicit refusals instead of
//! accept-queue timeouts.
//!
//! The JSON line server ([`icomm_serve::Server`]) stays available as a
//! compatibility listener; both planes can serve the same
//! [`TuningService`] simultaneously, which is how the parity and
//! throughput harnesses compare them.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Sender};
use icomm_serve::TuningService;

use crate::reactor::{Reactor, Waker};
use crate::shard::{Shard, ShardConfig};
use crate::wire::{encode_error, frame_bytes, Opcode};

/// Configuration for the binary serving plane.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Number of shard event loops. Defaults to available parallelism.
    pub shards: usize,
    /// Global cap on concurrently open connections across all shards.
    pub max_connections: usize,
    /// Largest frame a client may send, in bytes.
    pub max_frame_bytes: u32,
    /// Mid-frame stall deadline (see [`ShardConfig::read_deadline`]).
    pub read_deadline: Option<Duration>,
    /// Enable the shard-local decision cache.
    pub decision_cache: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            shards: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            max_connections: 16_384,
            max_frame_bytes: crate::wire::DEFAULT_MAX_FRAME_LEN,
            read_deadline: Some(Duration::from_secs(30)),
            decision_cache: true,
        }
    }
}

impl NetConfig {
    /// Sets the shard count (clamped to at least 1).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the global connection cap.
    pub fn with_max_connections(mut self, cap: usize) -> Self {
        self.max_connections = cap;
        self
    }

    /// Sets the mid-frame stall deadline (`None` disables it).
    pub fn with_read_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.read_deadline = deadline;
        self
    }

    /// Enables or disables the shard-local decision cache.
    pub fn with_decision_cache(mut self, enabled: bool) -> Self {
        self.decision_cache = enabled;
        self
    }
}

/// Running binary server: acceptor + shard threads over a shared
/// [`TuningService`].
pub struct BinaryServer {
    service: Arc<TuningService>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    wakers: Vec<Waker>,
    acceptor: Option<JoinHandle<()>>,
    shard_handles: Vec<JoinHandle<()>>,
    open_conns: Arc<AtomicUsize>,
}

impl std::fmt::Debug for BinaryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BinaryServer")
            .field("local_addr", &self.local_addr)
            .field("shards", &self.shard_handles.len())
            .field("open_conns", &self.open_conns.load(Ordering::Relaxed))
            .finish()
    }
}

impl BinaryServer {
    /// Starts with default [`NetConfig`] on `addr` (port 0 picks a free
    /// port; see [`BinaryServer::local_addr`]).
    ///
    /// # Errors
    ///
    /// Returns a message when the listener cannot bind or a reactor
    /// cannot be created.
    pub fn start(service: Arc<TuningService>, addr: &str) -> Result<BinaryServer, String> {
        Self::start_with(service, addr, NetConfig::default())
    }

    /// Starts the acceptor and shard threads with an explicit config.
    ///
    /// # Errors
    ///
    /// Returns a message when the listener cannot bind or a reactor
    /// cannot be created.
    pub fn start_with(
        service: Arc<TuningService>,
        addr: &str,
        config: NetConfig,
    ) -> Result<BinaryServer, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let open_conns = Arc::new(AtomicUsize::new(0));
        let shard_config = ShardConfig {
            max_frame_bytes: config.max_frame_bytes,
            read_deadline: config.read_deadline,
            decision_cache: config.decision_cache,
        };

        let mut wakers = Vec::new();
        let mut senders: Vec<Sender<TcpStream>> = Vec::new();
        let mut shard_handles = Vec::new();
        for shard_id in 0..config.shards.max(1) {
            let reactor = Reactor::new().map_err(|e| format!("reactor: {e}"))?;
            wakers.push(reactor.waker());
            let (tx, rx) = unbounded();
            senders.push(tx);
            let shard = Shard::new(
                Arc::clone(&service),
                reactor,
                rx,
                Arc::clone(&shutdown),
                Arc::clone(&open_conns),
                shard_config.clone(),
            );
            let handle = std::thread::Builder::new()
                .name(format!("icomm-net-shard-{shard_id}"))
                .spawn(move || shard.run())
                .map_err(|e| format!("spawn shard: {e}"))?;
            shard_handles.push(handle);
        }

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let open_conns = Arc::clone(&open_conns);
            let wakers = wakers.clone();
            let metrics = Arc::clone(service.metrics_handle());
            let max_connections = config.max_connections;
            std::thread::Builder::new()
                .name("icomm-net-accept".to_string())
                .spawn(move || {
                    accept_loop(
                        listener,
                        senders,
                        wakers,
                        shutdown,
                        open_conns,
                        metrics,
                        max_connections,
                    )
                })
                .map_err(|e| format!("spawn acceptor: {e}"))?
        };

        Ok(BinaryServer {
            service,
            local_addr,
            shutdown,
            wakers,
            acceptor: Some(acceptor),
            shard_handles,
            open_conns,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The service this listener fronts.
    pub fn service(&self) -> &Arc<TuningService> {
        &self.service
    }

    /// Connections currently open across all shards.
    pub fn open_connections(&self) -> usize {
        self.open_conns.load(Ordering::Relaxed)
    }

    /// Stops the acceptor and every shard, dropping open connections.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the acceptor with a throwaway connection; the flag is
        // checked before the connection would be served.
        let _ = TcpStream::connect(self.local_addr);
        for waker in &self.wakers {
            let _ = waker.wake();
        }
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        for handle in self.shard_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Accepts connections, enforcing the global cap, and deals them to
/// shards round-robin.
#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    senders: Vec<Sender<TcpStream>>,
    wakers: Vec<Waker>,
    shutdown: Arc<AtomicBool>,
    open_conns: Arc<AtomicUsize>,
    metrics: Arc<icomm_serve::Metrics>,
    max_connections: usize,
) {
    let mut next_shard = 0usize;
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        metrics.conn_accepted.fetch_add(1, Ordering::Relaxed);
        if open_conns.load(Ordering::Acquire) >= max_connections {
            metrics.conn_rejected.fetch_add(1, Ordering::Relaxed);
            refuse(stream);
            continue;
        }
        open_conns.fetch_add(1, Ordering::AcqRel);
        let shard = next_shard % senders.len();
        next_shard = next_shard.wrapping_add(1);
        if senders[shard].send(stream).is_err() {
            // Shard is gone (shutdown race); release the slot.
            open_conns.fetch_sub(1, Ordering::AcqRel);
            return;
        }
        let _ = wakers[shard].wake();
    }
}

/// Tells an over-cap client why it is being dropped. Best-effort and
/// blocking is fine: the frame is one small write on a fresh socket.
fn refuse(mut stream: TcpStream) {
    let frame = frame_bytes(
        Opcode::Error,
        &encode_error("server at connection capacity"),
    );
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = stream.write_all(&frame);
}
