//! `icommwire v1` — the compact length-prefixed binary protocol.
//!
//! Every message on the wire is one frame:
//!
//! ```text
//! +----------+---------+----------+------------------+-----------+
//! | len: u32 | ver: u8 | op: u8   | body (len-2 B)   | crc: u32  |
//! +----------+---------+----------+------------------+-----------+
//! ```
//!
//! All integers are little-endian. `len` counts the version byte, the
//! opcode byte, and the body; the CRC32 trailer (IEEE polynomial, the
//! same [`icomm_persist::crc32`] the snapshot format uses) covers
//! exactly those `len` bytes, so a bit flip anywhere in a frame is
//! detected before the body is ever decoded. A frame whose `len` field
//! exceeds the negotiated bound is rejected *before* buffering the
//! body, so a hostile 4 GiB length never allocates 4 GiB.
//!
//! Bodies are field-by-field binary: fixed-width integers, `u16`-length-
//! prefixed UTF-8 strings, and one presence byte per optional field. The
//! stats and characterize replies carry JSON payloads — they are rare,
//! diagnostic, and their schemas churn; the hot tune/batch path never
//! touches JSON.

use icomm_serve::{TuneRequest, TuneResponse};

/// Protocol version carried in every frame.
pub const WIRE_VERSION: u8 = 1;

/// Bytes in the length prefix.
pub const LEN_BYTES: usize = 4;

/// Bytes in the CRC32 trailer.
pub const CRC_BYTES: usize = 4;

/// Minimum value of the `len` field: version byte + opcode byte.
pub const MIN_FRAME_LEN: u32 = 2;

/// Default bound on the `len` field (version + opcode + body).
pub const DEFAULT_MAX_FRAME_LEN: u32 = 256 * 1024;

/// Frame opcodes. Requests have the high bit clear; replies echo the
/// request opcode with the high bit set; `0xE0` is the transport-level
/// error reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// One [`TuneRequest`] body; answered by [`Opcode::TuneReply`].
    Tune = 0x01,
    /// Empty body; answered by [`Opcode::StatsReply`].
    Stats = 0x02,
    /// Board-name body; answered by [`Opcode::CharacterizeReply`].
    Characterize = 0x03,
    /// `u32` count + that many [`TuneRequest`] bodies; answered by one
    /// [`Opcode::BatchReply`] carrying every response.
    Batch = 0x04,
    /// Empty body; answered by [`Opcode::HealthReply`].
    Health = 0x05,
    /// One [`TuneResponse`] body.
    TuneReply = 0x81,
    /// JSON [`icomm_serve::StatsReport`] payload.
    StatsReply = 0x82,
    /// JSON `DeviceCharacterization` payload.
    CharacterizeReply = 0x83,
    /// `u32` count + that many [`TuneResponse`] bodies.
    BatchReply = 0x84,
    /// JSON [`crate::HealthReport`] payload: per-shard liveness and
    /// restart counts from the supervision tree.
    HealthReply = 0x85,
    /// UTF-8 message body: the transport could not serve the frame
    /// (malformed body, unknown board, connection capacity, ...).
    Error = 0xE0,
}

impl Opcode {
    /// Parses a wire opcode byte.
    pub fn from_u8(byte: u8) -> Option<Opcode> {
        match byte {
            0x01 => Some(Opcode::Tune),
            0x02 => Some(Opcode::Stats),
            0x03 => Some(Opcode::Characterize),
            0x04 => Some(Opcode::Batch),
            0x05 => Some(Opcode::Health),
            0x81 => Some(Opcode::TuneReply),
            0x82 => Some(Opcode::StatsReply),
            0x83 => Some(Opcode::CharacterizeReply),
            0x84 => Some(Opcode::BatchReply),
            0x85 => Some(Opcode::HealthReply),
            0xE0 => Some(Opcode::Error),
            _ => None,
        }
    }

    /// All opcodes, for exhaustive codec tests.
    pub const ALL: [Opcode; 11] = [
        Opcode::Tune,
        Opcode::Stats,
        Opcode::Characterize,
        Opcode::Batch,
        Opcode::Health,
        Opcode::TuneReply,
        Opcode::StatsReply,
        Opcode::CharacterizeReply,
        Opcode::BatchReply,
        Opcode::HealthReply,
        Opcode::Error,
    ];
}

/// Why a frame (or a frame body) was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The length field exceeds the frame bound.
    Oversized {
        /// Length the frame claimed.
        len: u32,
        /// Bound it violated.
        max: u32,
    },
    /// The length field is below [`MIN_FRAME_LEN`].
    TooShort {
        /// Length the frame claimed.
        len: u32,
    },
    /// The version byte is not [`WIRE_VERSION`].
    BadVersion(u8),
    /// The CRC32 trailer does not match the frame bytes.
    BadCrc {
        /// CRC computed from the received bytes.
        expected: u32,
        /// CRC carried in the trailer.
        found: u32,
    },
    /// The opcode byte is not assigned.
    BadOpcode(u8),
    /// The body failed to decode (truncated field, bad UTF-8, ...).
    BadBody(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte bound")
            }
            WireError::TooShort { len } => {
                write!(
                    f,
                    "frame length {len} is below the {MIN_FRAME_LEN}-byte minimum"
                )
            }
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadCrc { expected, found } => {
                write!(
                    f,
                    "frame checksum mismatch: computed {expected:08x}, trailer {found:08x}"
                )
            }
            WireError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::BadBody(what) => write!(f, "malformed frame body: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// One decoded frame: opcode plus raw body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame opcode.
    pub opcode: Opcode,
    /// The undecoded body.
    pub body: Vec<u8>,
}

/// Appends one complete frame (length prefix, version, opcode, body,
/// CRC32 trailer) for `body` to `out`.
pub fn encode_frame(opcode: Opcode, body: &[u8], out: &mut Vec<u8>) {
    let len = MIN_FRAME_LEN + body.len() as u32;
    out.extend_from_slice(&len.to_le_bytes());
    let covered_start = out.len();
    out.push(WIRE_VERSION);
    out.push(opcode as u8);
    out.extend_from_slice(body);
    let crc = icomm_persist::crc32(&out[covered_start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Convenience: one frame as an owned buffer.
pub fn frame_bytes(opcode: Opcode, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(LEN_BYTES + MIN_FRAME_LEN as usize + body.len() + CRC_BYTES);
    encode_frame(opcode, body, &mut out);
    out
}

/// Incremental frame parser over a byte stream.
///
/// Feed received bytes with [`FrameDecoder::extend`], then drain frames
/// with [`FrameDecoder::next_frame`]. A [`WireError`] means the stream
/// is unsynchronized — the connection should answer with an error frame
/// and close, because frame boundaries can no longer be trusted.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
    max_len: u32,
}

impl FrameDecoder {
    /// Creates a decoder enforcing `max_len` as the frame-length bound.
    pub fn new(max_len: u32) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
            max_len: max_len.max(MIN_FRAME_LEN),
        }
    }

    /// Creates a decoder with the default frame bound.
    pub fn with_default_limit() -> Self {
        FrameDecoder::new(DEFAULT_MAX_FRAME_LEN)
    }

    /// Appends received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: everything before `pos` is consumed.
        if self.pos > 0 && (self.pos == self.buf.len() || self.pos >= 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Whether a partial frame is buffered — true between the first byte
    /// of a frame and its CRC trailer. Drives the truncation counters:
    /// a connection that reaches EOF (or its read deadline) while this
    /// holds was cut off mid-frame.
    pub fn has_partial(&self) -> bool {
        self.pos < self.buf.len()
    }

    /// Bytes currently buffered but not yet consumed.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Extracts the next complete frame, `Ok(None)` if more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] leaves the decoder unsynchronized; the caller
    /// must drop the stream.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < LEN_BYTES {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]);
        if len < MIN_FRAME_LEN {
            return Err(WireError::TooShort { len });
        }
        if len > self.max_len {
            return Err(WireError::Oversized {
                len,
                max: self.max_len,
            });
        }
        let total = LEN_BYTES + len as usize + CRC_BYTES;
        if avail.len() < total {
            return Ok(None);
        }
        let covered = &avail[LEN_BYTES..LEN_BYTES + len as usize];
        let trailer = &avail[LEN_BYTES + len as usize..total];
        let found = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
        let expected = icomm_persist::crc32(covered);
        if expected != found {
            return Err(WireError::BadCrc { expected, found });
        }
        let version = covered[0];
        if version != WIRE_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let Some(opcode) = Opcode::from_u8(covered[1]) else {
            return Err(WireError::BadOpcode(covered[1]));
        };
        let body = covered[2..].to_vec();
        self.pos += total;
        Ok(Some(Frame { opcode, body }))
    }
}

// ---------------------------------------------------------------------
// Body codecs
// ---------------------------------------------------------------------

/// Body-field writer: fixed-width little-endian integers, `u16`-length-
/// prefixed strings, one presence byte per optional field.
#[derive(Debug, Default)]
pub struct BodyWriter {
    bytes: Vec<u8>,
}

impl BodyWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BodyWriter::default()
    }

    /// Finishes and returns the body bytes.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.bytes.push(v);
    }

    /// Writes a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Writes a `u16`-length-prefixed UTF-8 string. Strings longer than
    /// `u16::MAX` bytes are truncated at the last character boundary
    /// that fits — wire strings are names and rationale sentences, never
    /// bulk data.
    pub fn put_str(&mut self, s: &str) {
        let mut end = s.len().min(u16::MAX as usize);
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        self.bytes.extend_from_slice(&(end as u16).to_le_bytes());
        self.bytes.extend_from_slice(&s.as_bytes()[..end]);
    }

    /// Writes a presence byte, then the string when present.
    pub fn put_opt_str(&mut self, s: Option<&str>) {
        match s {
            Some(s) => {
                self.put_u8(1);
                self.put_str(s);
            }
            None => self.put_u8(0),
        }
    }

    /// Writes a presence byte, then the flag when present.
    pub fn put_opt_bool(&mut self, v: Option<bool>) {
        match v {
            Some(v) => {
                self.put_u8(1);
                self.put_u8(u8::from(v));
            }
            None => self.put_u8(0),
        }
    }

    /// Writes a presence byte, then the value when present.
    pub fn put_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(v) => {
                self.put_u8(1);
                self.put_f64(v);
            }
            None => self.put_u8(0),
        }
    }

    /// Writes a presence byte, then the value when present.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.put_u8(1);
                self.put_u64(v);
            }
            None => self.put_u8(0),
        }
    }
}

/// Body-field reader mirroring [`BodyWriter`].
#[derive(Debug)]
pub struct BodyReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    /// Wraps a body.
    pub fn new(bytes: &'a [u8]) -> Self {
        BodyReader { bytes, pos: 0 }
    }

    /// Whether every byte has been consumed — decoders require this so
    /// trailing garbage in a body is rejected, not silently ignored.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.bytes.len() - self.pos < n {
            return Err(WireError::BadBody("field truncated"));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64`.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `u16`-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        let b = self.take(2)?;
        let len = u16::from_le_bytes([b[0], b[1]]) as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadBody("string is not UTF-8"))
    }

    /// Reads a presence byte, then the string when present.
    pub fn get_opt_str(&mut self) -> Result<Option<String>, WireError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_str()?)),
            _ => Err(WireError::BadBody("presence byte out of range")),
        }
    }

    /// Reads a presence byte, then the flag when present.
    pub fn get_opt_bool(&mut self) -> Result<Option<bool>, WireError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => match self.get_u8()? {
                0 => Ok(Some(false)),
                1 => Ok(Some(true)),
                _ => Err(WireError::BadBody("bool byte out of range")),
            },
            _ => Err(WireError::BadBody("presence byte out of range")),
        }
    }

    /// Reads a presence byte, then the value when present.
    pub fn get_opt_f64(&mut self) -> Result<Option<f64>, WireError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_f64()?)),
            _ => Err(WireError::BadBody("presence byte out of range")),
        }
    }

    /// Reads a presence byte, then the value when present.
    pub fn get_opt_u64(&mut self) -> Result<Option<u64>, WireError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_u64()?)),
            _ => Err(WireError::BadBody("presence byte out of range")),
        }
    }
}

/// Encodes a [`TuneRequest`] body.
pub fn encode_tune_request(request: &TuneRequest) -> Vec<u8> {
    let mut w = BodyWriter::new();
    put_tune_request(&mut w, request);
    w.finish()
}

fn put_tune_request(w: &mut BodyWriter, request: &TuneRequest) {
    w.put_u64(request.id);
    w.put_str(&request.board);
    w.put_str(&request.app);
    w.put_opt_str(request.current.as_deref());
    w.put_opt_str(request.class.as_deref());
}

/// Decodes a [`TuneRequest`] body.
///
/// # Errors
///
/// [`WireError::BadBody`] on truncation, bad UTF-8, or trailing bytes.
pub fn decode_tune_request(body: &[u8]) -> Result<TuneRequest, WireError> {
    let mut r = BodyReader::new(body);
    let request = get_tune_request(&mut r)?;
    if !r.is_exhausted() {
        return Err(WireError::BadBody("trailing bytes after request"));
    }
    Ok(request)
}

fn get_tune_request(r: &mut BodyReader<'_>) -> Result<TuneRequest, WireError> {
    Ok(TuneRequest {
        id: r.get_u64()?,
        board: r.get_str()?,
        app: r.get_str()?,
        current: r.get_opt_str()?,
        class: r.get_opt_str()?,
    })
}

/// Encodes a [`TuneResponse`] body.
pub fn encode_tune_response(response: &TuneResponse) -> Vec<u8> {
    let mut w = BodyWriter::new();
    put_tune_response(&mut w, response);
    w.finish()
}

fn put_tune_response(w: &mut BodyWriter, response: &TuneResponse) {
    w.put_u64(response.id);
    w.put_u8(u8::from(response.ok));
    w.put_opt_str(response.error.as_deref());
    w.put_opt_str(response.board.as_deref());
    w.put_opt_str(response.app.as_deref());
    w.put_opt_str(response.current.as_deref());
    w.put_opt_str(response.recommended.as_deref());
    w.put_opt_bool(response.switch_suggested);
    w.put_opt_f64(response.estimated_speedup);
    w.put_opt_str(response.rationale.as_deref());
    w.put_opt_bool(response.cache_hit);
    w.put_opt_u64(response.latency_us);
    w.put_opt_str(response.overloaded.as_deref());
}

/// Decodes a [`TuneResponse`] body.
///
/// # Errors
///
/// [`WireError::BadBody`] on truncation, bad UTF-8, or trailing bytes.
pub fn decode_tune_response(body: &[u8]) -> Result<TuneResponse, WireError> {
    let mut r = BodyReader::new(body);
    let response = get_tune_response(&mut r)?;
    if !r.is_exhausted() {
        return Err(WireError::BadBody("trailing bytes after response"));
    }
    Ok(response)
}

fn get_tune_response(r: &mut BodyReader<'_>) -> Result<TuneResponse, WireError> {
    Ok(TuneResponse {
        id: r.get_u64()?,
        ok: match r.get_u8()? {
            0 => false,
            1 => true,
            _ => return Err(WireError::BadBody("ok byte out of range")),
        },
        error: r.get_opt_str()?,
        board: r.get_opt_str()?,
        app: r.get_opt_str()?,
        current: r.get_opt_str()?,
        recommended: r.get_opt_str()?,
        switch_suggested: r.get_opt_bool()?,
        estimated_speedup: r.get_opt_f64()?,
        rationale: r.get_opt_str()?,
        cache_hit: r.get_opt_bool()?,
        latency_us: r.get_opt_u64()?,
        overloaded: r.get_opt_str()?,
    })
}

/// Largest request count a batch body may carry — bounds the allocation
/// a hostile count field can trigger (the frame-length bound already
/// limits the real payload).
pub const MAX_BATCH_REQUESTS: u32 = 4096;

/// Encodes a batch body: `u32` count + the request bodies.
pub fn encode_batch_request(requests: &[TuneRequest]) -> Vec<u8> {
    let mut w = BodyWriter::new();
    w.put_u32(requests.len() as u32);
    for request in requests {
        put_tune_request(&mut w, request);
    }
    w.finish()
}

/// Decodes a batch body into its requests.
///
/// # Errors
///
/// [`WireError::BadBody`] on a hostile count, truncation, or trailing
/// bytes.
pub fn decode_batch_request(body: &[u8]) -> Result<Vec<TuneRequest>, WireError> {
    let mut r = BodyReader::new(body);
    let count = r.get_u32()?;
    if count > MAX_BATCH_REQUESTS {
        return Err(WireError::BadBody("batch count beyond bound"));
    }
    let mut requests = Vec::with_capacity(count as usize);
    for _ in 0..count {
        requests.push(get_tune_request(&mut r)?);
    }
    if !r.is_exhausted() {
        return Err(WireError::BadBody("trailing bytes after batch"));
    }
    Ok(requests)
}

/// Encodes a batch reply body: `u32` count + the response bodies.
pub fn encode_batch_response(responses: &[TuneResponse]) -> Vec<u8> {
    let mut w = BodyWriter::new();
    w.put_u32(responses.len() as u32);
    for response in responses {
        put_tune_response(&mut w, response);
    }
    w.finish()
}

/// Decodes a batch reply body into its responses.
///
/// # Errors
///
/// [`WireError::BadBody`] on a hostile count, truncation, or trailing
/// bytes.
pub fn decode_batch_response(body: &[u8]) -> Result<Vec<TuneResponse>, WireError> {
    let mut r = BodyReader::new(body);
    let count = r.get_u32()?;
    if count > MAX_BATCH_REQUESTS {
        return Err(WireError::BadBody("batch count beyond bound"));
    }
    let mut responses = Vec::with_capacity(count as usize);
    for _ in 0..count {
        responses.push(get_tune_response(&mut r)?);
    }
    if !r.is_exhausted() {
        return Err(WireError::BadBody("trailing bytes after batch"));
    }
    Ok(responses)
}

/// Encodes a characterize request body (the board name).
pub fn encode_characterize_request(board: &str) -> Vec<u8> {
    let mut w = BodyWriter::new();
    w.put_str(board);
    w.finish()
}

/// Decodes a characterize request body.
///
/// # Errors
///
/// [`WireError::BadBody`] on truncation, bad UTF-8, or trailing bytes.
pub fn decode_characterize_request(body: &[u8]) -> Result<String, WireError> {
    let mut r = BodyReader::new(body);
    let board = r.get_str()?;
    if !r.is_exhausted() {
        return Err(WireError::BadBody("trailing bytes after board name"));
    }
    Ok(board)
}

/// Encodes an error-frame body (the message).
pub fn encode_error(message: &str) -> Vec<u8> {
    let mut w = BodyWriter::new();
    w.put_str(message);
    w.finish()
}

/// Decodes an error-frame body.
///
/// # Errors
///
/// [`WireError::BadBody`] on truncation, bad UTF-8, or trailing bytes.
pub fn decode_error(body: &[u8]) -> Result<String, WireError> {
    let mut r = BodyReader::new(body);
    let message = r.get_str()?;
    if !r.is_exhausted() {
        return Err(WireError::BadBody("trailing bytes after message"));
    }
    Ok(message)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> TuneRequest {
        TuneRequest::new(42, "tx2", "orb")
            .with_current("zc")
            .with_class("bulk")
    }

    fn sample_response() -> TuneResponse {
        TuneResponse {
            id: 42,
            ok: true,
            error: None,
            board: Some("tx2".to_string()),
            app: Some("orb".to_string()),
            current: Some("ZC".to_string()),
            recommended: Some("SC".to_string()),
            switch_suggested: Some(true),
            estimated_speedup: Some(1.37),
            rationale: Some("cache zone".to_string()),
            cache_hit: Some(false),
            latency_us: Some(812),
            overloaded: None,
        }
    }

    #[test]
    fn frame_round_trips() {
        let body = encode_tune_request(&sample_request());
        let bytes = frame_bytes(Opcode::Tune, &body);
        let mut decoder = FrameDecoder::with_default_limit();
        decoder.extend(&bytes);
        let frame = decoder.next_frame().unwrap().unwrap();
        assert_eq!(frame.opcode, Opcode::Tune);
        assert_eq!(decode_tune_request(&frame.body).unwrap(), sample_request());
        assert!(decoder.next_frame().unwrap().is_none());
        assert!(!decoder.has_partial());
    }

    #[test]
    fn decoder_reassembles_split_frames() {
        let body = encode_tune_response(&sample_response());
        let bytes = frame_bytes(Opcode::TuneReply, &body);
        let mut decoder = FrameDecoder::with_default_limit();
        // Feed one byte at a time: no frame until the last byte.
        for (i, byte) in bytes.iter().enumerate() {
            if i + 1 < bytes.len() {
                decoder.extend(&[*byte]);
                assert!(decoder.next_frame().unwrap().is_none());
                assert!(decoder.has_partial());
            }
        }
        decoder.extend(&bytes[bytes.len() - 1..]);
        let frame = decoder.next_frame().unwrap().unwrap();
        assert_eq!(
            decode_tune_response(&frame.body).unwrap(),
            sample_response()
        );
    }

    #[test]
    fn two_frames_in_one_read_both_decode() {
        let mut bytes = frame_bytes(Opcode::Stats, &[]);
        bytes.extend_from_slice(&frame_bytes(
            Opcode::Characterize,
            &encode_characterize_request("nano"),
        ));
        let mut decoder = FrameDecoder::with_default_limit();
        decoder.extend(&bytes);
        assert_eq!(decoder.next_frame().unwrap().unwrap().opcode, Opcode::Stats);
        let second = decoder.next_frame().unwrap().unwrap();
        assert_eq!(second.opcode, Opcode::Characterize);
        assert_eq!(decode_characterize_request(&second.body).unwrap(), "nano");
    }

    #[test]
    fn oversized_length_is_rejected_before_buffering() {
        let mut decoder = FrameDecoder::new(1024);
        decoder.extend(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decoder.next_frame(),
            Err(WireError::Oversized { len: u32::MAX, .. })
        ));
    }

    #[test]
    fn short_length_is_rejected() {
        let mut decoder = FrameDecoder::with_default_limit();
        decoder.extend(&1u32.to_le_bytes());
        assert!(matches!(
            decoder.next_frame(),
            Err(WireError::TooShort { len: 1 })
        ));
    }

    #[test]
    fn crc_flip_is_detected() {
        let mut bytes = frame_bytes(Opcode::Tune, &encode_tune_request(&sample_request()));
        let flip = bytes.len() / 2;
        bytes[flip] ^= 0x40;
        let mut decoder = FrameDecoder::with_default_limit();
        decoder.extend(&bytes);
        assert!(matches!(
            decoder.next_frame(),
            Err(WireError::BadCrc { .. })
        ));
    }

    #[test]
    fn bad_version_and_opcode_are_rejected() {
        // Hand-build a frame with a bad version but a valid CRC.
        let covered = [9u8, Opcode::Tune as u8];
        let mut bytes = (covered.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&covered);
        bytes.extend_from_slice(&icomm_persist::crc32(&covered).to_le_bytes());
        let mut decoder = FrameDecoder::with_default_limit();
        decoder.extend(&bytes);
        assert_eq!(decoder.next_frame(), Err(WireError::BadVersion(9)));

        let covered = [WIRE_VERSION, 0x55];
        let mut bytes = (covered.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&covered);
        bytes.extend_from_slice(&icomm_persist::crc32(&covered).to_le_bytes());
        let mut decoder = FrameDecoder::with_default_limit();
        decoder.extend(&bytes);
        assert_eq!(decoder.next_frame(), Err(WireError::BadOpcode(0x55)));
    }

    #[test]
    fn batch_round_trips_and_bounds_the_count() {
        let requests: Vec<TuneRequest> = (0..5)
            .map(|i| TuneRequest::new(i, "nano", "shwfs"))
            .collect();
        let body = encode_batch_request(&requests);
        assert_eq!(decode_batch_request(&body).unwrap(), requests);

        let mut hostile = BodyWriter::new();
        hostile.put_u32(MAX_BATCH_REQUESTS + 1);
        assert!(matches!(
            decode_batch_request(&hostile.finish()),
            Err(WireError::BadBody(_))
        ));
    }

    #[test]
    fn trailing_bytes_in_a_body_are_rejected() {
        let mut body = encode_tune_request(&sample_request());
        body.push(0xAA);
        assert!(matches!(
            decode_tune_request(&body),
            Err(WireError::BadBody(_))
        ));
    }

    #[test]
    fn long_strings_truncate_at_char_boundaries() {
        let long = "é".repeat(40_000); // 80k bytes of 2-byte chars
        let mut w = BodyWriter::new();
        w.put_str(&long);
        let body = w.finish();
        let mut r = BodyReader::new(&body);
        let back = r.get_str().unwrap();
        assert!(back.len() <= u16::MAX as usize);
        assert!(back.chars().all(|c| c == 'é'));
    }

    #[test]
    fn error_frame_round_trips() {
        let body = encode_error("server at connection capacity");
        assert_eq!(
            decode_error(&body).unwrap(),
            "server at connection capacity"
        );
    }
}
