//! icomm-net — event-driven batched binary serving plane.
//!
//! The line-JSON server in `icomm-serve` burns a thread per
//! connection and a syscall-heavy text protocol per request. This
//! crate replaces that data plane for production-scale deployments
//! while keeping the JSON listener as a compatibility endpoint:
//!
//! * [`sys`] / [`reactor`] — a minimal level-triggered epoll reactor
//!   over nonblocking `std::net` sockets, built on direct `extern
//!   "C"` bindings (the workspace is offline; no `libc`/`mio`/`tokio`
//!   available).
//! * [`wire`] — `icommwire v1`: compact length-prefixed binary frames
//!   with a CRC32 trailer, reusing the snapshot CRC from
//!   `icomm-persist`.
//! * [`shard`] — shared-nothing per-core event loops that drain ready
//!   sockets into request batches and submit each sweep to the
//!   [`icomm_serve::TuningService`] worker pool in a single hop.
//! * [`server`] — the acceptor + shard assembly, with a global
//!   connection cap enforced before a socket reaches a shard.
//! * [`client`] / [`loadgen`] — a blocking wire client and a
//!   closed-loop load generator that drives both planes with the same
//!   workload for apples-to-apples comparison.
//!
//! Backpressure is inherited, not reinvented: engine-bound requests
//! flow through the same admission controller as the JSON plane, so a
//! saturated service sheds with `overloaded` responses on both wires.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod loadgen;
pub mod reactor;
pub mod resilient;
pub mod server;
pub mod shard;
pub mod supervise;
pub mod sys;
pub mod wire;

pub use client::{BinaryClient, ClientError};
pub use loadgen::{run_load, warmup, LoadReport, WireMode};
pub use reactor::{Event, Interest, Reactor, Waker};
pub use resilient::{ResilienceConfig, ResilienceCounters, ResilientClient};
pub use server::{BinaryServer, NetConfig};
pub use shard::{Shard, ShardConfig, ShardSupervision};
pub use supervise::{HealthBoard, HealthReport, PanicInjector, PanicPlan, ShardHealth};
pub use wire::{
    decode_batch_request, decode_batch_response, decode_tune_request, decode_tune_response,
    encode_batch_request, encode_batch_response, encode_frame, encode_tune_request,
    encode_tune_response, frame_bytes, Frame, FrameDecoder, Opcode, WireError,
};
