//! Closed-loop load generator for both serving planes.
//!
//! Drives either the line-JSON listener or the binary listener with
//! the same synthetic tune workload, so the two planes can be compared
//! on equal terms: same request mix, same connection count, same
//! closed-loop discipline. Per-request latencies feed p50/p99 in the
//! report; throughput is total completed requests over wall time.
//!
//! The JSON plane has no batching primitive, so `batch > 1` only
//! changes the binary plane (one `Batch` frame per round trip); the
//! JSON client always issues one request per round trip. That
//! asymmetry is the experiment, not a bug — it is exactly the protocol
//! difference the binary plane exists to exploit.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use icomm_serve::{TuneRequest, TuneResponse};

use crate::client::BinaryClient;

/// Which serving plane to drive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireMode {
    /// Line-delimited JSON against the compatibility listener.
    Json,
    /// `icommwire v1` frames against the binary listener.
    Binary,
}

impl WireMode {
    /// Parses a `--wire` flag value.
    ///
    /// # Errors
    ///
    /// Returns a usage message for anything but `json` / `binary`.
    pub fn parse(s: &str) -> Result<WireMode, String> {
        match s {
            "json" => Ok(WireMode::Json),
            "binary" => Ok(WireMode::Binary),
            other => Err(format!(
                "unknown wire mode '{other}' (expected json|binary)"
            )),
        }
    }

    /// The flag spelling for this mode.
    pub fn as_str(&self) -> &'static str {
        match self {
            WireMode::Json => "json",
            WireMode::Binary => "binary",
        }
    }
}

/// Boards the synthetic workload rotates through.
pub const LOAD_BOARDS: [&str; 3] = ["nano", "tx2", "xavier"];
/// Apps the synthetic workload rotates through.
pub const LOAD_APPS: [&str; 3] = ["shwfs", "lane", "orb"];

/// The i-th synthetic request of a connection's stream.
pub fn load_request(conn: usize, i: usize) -> TuneRequest {
    let board = LOAD_BOARDS[(conn + i) % LOAD_BOARDS.len()];
    let app = LOAD_APPS[i % LOAD_APPS.len()];
    TuneRequest::new(i as u64, board, app)
}

/// Outcome of one [`run_load`] invocation.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Plane that was driven.
    pub mode: WireMode,
    /// Concurrent connections (one thread each).
    pub conns: usize,
    /// Batch size used on the binary plane.
    pub batch: usize,
    /// Requests sent.
    pub sent: u64,
    /// Successful responses (`ok` or an explicit decision either way).
    pub ok: u64,
    /// Transport failures and server errors.
    pub failed: u64,
    /// Wall time for the whole run.
    pub elapsed: Duration,
    /// Completed requests per second of wall time.
    pub rps: f64,
    /// Median per-round-trip latency, microseconds (per request for
    /// JSON; per batch divided by batch size for binary).
    pub p50_us: u64,
    /// Tail per-round-trip latency, microseconds.
    pub p99_us: u64,
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drives `conns` closed-loop connections, each issuing
/// `requests_per_conn` requests, and reports aggregate throughput and
/// latency. `batch` groups requests into `Batch` frames on the binary
/// plane (use 1 for strict request/response symmetry with JSON).
pub fn run_load(
    addr: SocketAddr,
    mode: WireMode,
    conns: usize,
    requests_per_conn: usize,
    batch: usize,
) -> LoadReport {
    let conns = conns.max(1);
    let batch = batch.max(1);
    let started = Instant::now();
    let mut handles = Vec::with_capacity(conns);
    for conn in 0..conns {
        handles.push(std::thread::spawn(move || match mode {
            WireMode::Json => drive_json(addr, conn, requests_per_conn),
            WireMode::Binary => drive_binary(addr, conn, requests_per_conn, batch),
        }));
    }
    let mut sent = 0u64;
    let mut ok = 0u64;
    let mut failed = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    for handle in handles {
        match handle.join() {
            Ok(outcome) => {
                sent += outcome.sent;
                ok += outcome.ok;
                failed += outcome.failed;
                latencies.extend(outcome.latencies_us);
            }
            Err(_) => failed += requests_per_conn as u64,
        }
    }
    let elapsed = started.elapsed();
    latencies.sort_unstable();
    let secs = elapsed.as_secs_f64().max(1e-9);
    LoadReport {
        mode,
        conns,
        batch,
        sent,
        ok,
        failed,
        elapsed,
        rps: ok as f64 / secs,
        p50_us: quantile(&latencies, 0.50),
        p99_us: quantile(&latencies, 0.99),
    }
}

/// Warms the service through `mode` so characterization cost is paid
/// before measurement: one request per (board, app) combination.
pub fn warmup(addr: SocketAddr, mode: WireMode) -> Result<(), String> {
    match mode {
        WireMode::Json => {
            let stream = TcpStream::connect(addr).map_err(|e| format!("warmup connect: {e}"))?;
            let mut reader = BufReader::new(
                stream
                    .try_clone()
                    .map_err(|e| format!("warmup clone: {e}"))?,
            );
            let mut writer = stream;
            for (i, board) in LOAD_BOARDS.iter().enumerate() {
                for (j, app) in LOAD_APPS.iter().enumerate() {
                    let request = TuneRequest::new((i * LOAD_APPS.len() + j) as u64, board, app);
                    let json = icomm_persist::to_string(&request)
                        .map_err(|e| format!("warmup encode: {e:?}"))?;
                    writeln!(writer, "{json}").map_err(|e| format!("warmup write: {e}"))?;
                    let mut line = String::new();
                    reader
                        .read_line(&mut line)
                        .map_err(|e| format!("warmup read: {e}"))?;
                }
            }
            Ok(())
        }
        WireMode::Binary => {
            let mut client =
                BinaryClient::connect(addr).map_err(|e| format!("warmup connect: {e}"))?;
            for (i, board) in LOAD_BOARDS.iter().enumerate() {
                for (j, app) in LOAD_APPS.iter().enumerate() {
                    let request = TuneRequest::new((i * LOAD_APPS.len() + j) as u64, board, app);
                    client
                        .tune(&request)
                        .map_err(|e| format!("warmup tune: {e}"))?;
                }
            }
            Ok(())
        }
    }
}

struct ConnOutcome {
    sent: u64,
    ok: u64,
    failed: u64,
    latencies_us: Vec<u64>,
}

fn drive_json(addr: SocketAddr, conn: usize, requests: usize) -> ConnOutcome {
    let mut outcome = ConnOutcome {
        sent: 0,
        ok: 0,
        failed: 0,
        latencies_us: Vec::with_capacity(requests),
    };
    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(_) => {
            outcome.failed = requests as u64;
            return outcome;
        }
    };
    let _ = stream.set_nodelay(true);
    let reader = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => {
            outcome.failed = requests as u64;
            return outcome;
        }
    };
    let mut reader = BufReader::new(reader);
    let mut writer = stream;
    for i in 0..requests {
        let request = load_request(conn, i);
        let json = match icomm_persist::to_string(&request) {
            Ok(json) => json,
            Err(_) => {
                outcome.failed += 1;
                continue;
            }
        };
        let started = Instant::now();
        outcome.sent += 1;
        if writeln!(writer, "{json}").is_err() {
            outcome.failed += 1;
            break;
        }
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => {
                outcome.failed += 1;
                break;
            }
            Ok(_) => {}
        }
        match icomm_persist::from_str::<TuneResponse>(line.trim_end()) {
            Ok(_) => {
                outcome.ok += 1;
                outcome
                    .latencies_us
                    .push(started.elapsed().as_micros() as u64);
            }
            Err(_) => outcome.failed += 1,
        }
    }
    outcome
}

fn drive_binary(addr: SocketAddr, conn: usize, requests: usize, batch: usize) -> ConnOutcome {
    let mut outcome = ConnOutcome {
        sent: 0,
        ok: 0,
        failed: 0,
        latencies_us: Vec::with_capacity(requests / batch + 1),
    };
    let mut client = match BinaryClient::connect(addr) {
        Ok(c) => c,
        Err(_) => {
            outcome.failed = requests as u64;
            return outcome;
        }
    };
    let mut issued = 0usize;
    while issued < requests {
        let n = batch.min(requests - issued);
        let group: Vec<TuneRequest> = (0..n).map(|k| load_request(conn, issued + k)).collect();
        outcome.sent += n as u64;
        let started = Instant::now();
        if n == 1 {
            match client.tune(&group[0]) {
                Ok(_) => {
                    outcome.ok += 1;
                    outcome
                        .latencies_us
                        .push(started.elapsed().as_micros() as u64);
                }
                Err(_) => {
                    outcome.failed += 1;
                    break;
                }
            }
        } else {
            match client.tune_batch(&group) {
                Ok(responses) => {
                    outcome.ok += responses.len() as u64;
                    if responses.len() < n {
                        outcome.failed += (n - responses.len()) as u64;
                    }
                    let per_request = started.elapsed().as_micros() as u64 / n as u64;
                    outcome.latencies_us.push(per_request);
                }
                Err(_) => {
                    outcome.failed += n as u64;
                    break;
                }
            }
        }
        issued += n;
    }
    outcome
}
