//! Level-triggered epoll reactor.
//!
//! A thin safe wrapper over the [`crate::sys`] bindings: one epoll
//! instance per shard, with a built-in eventfd **waker** so other
//! threads (the acceptor, the shutdown path) can interrupt a blocked
//! [`Reactor::wait`]. Tokens are opaque `u64`s chosen by the caller;
//! token [`WAKER_TOKEN`] is reserved for the waker and never reported
//! back as a socket event.
//!
//! The reactor is deliberately level-triggered: shard event loops
//! re-arm nothing and simply read/write until `WouldBlock`, which
//! keeps the state machine trivial at the cost of a few spurious
//! wakeups — the right trade for a request/response workload.

use std::io;
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::sync::Arc;

use crate::sys::{
    sys_close, sys_epoll_create, sys_epoll_ctl, sys_epoll_wait, sys_eventfd, sys_eventfd_drain,
    sys_eventfd_write, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
    EPOLL_CTL_ADD, EPOLL_CTL_DEL, EPOLL_CTL_MOD,
};

/// Token reserved for the reactor's internal eventfd waker.
pub const WAKER_TOKEN: u64 = u64::MAX;

/// Interest set for a registered socket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the socket is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the socket is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state for an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read+write interest — used while response bytes are queued.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut m = EPOLLRDHUP;
        if self.readable {
            m |= EPOLLIN;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One readiness notification out of [`Reactor::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Caller-chosen token from registration.
    pub token: u64,
    /// Socket has bytes to read (or a pending hangup to observe).
    pub readable: bool,
    /// Socket can accept more outgoing bytes.
    pub writable: bool,
    /// Error or hangup condition; the connection should be torn down
    /// after a final drain.
    pub hangup: bool,
}

/// Cross-thread handle that interrupts a blocked [`Reactor::wait`].
///
/// Cloneable and cheap; safe to invoke from any thread.
#[derive(Clone, Debug)]
pub struct Waker {
    inner: Arc<WakerFd>,
}

#[derive(Debug)]
struct WakerFd {
    fd: i32,
}

impl Drop for WakerFd {
    fn drop(&mut self) {
        sys_close(self.fd);
    }
}

impl Waker {
    /// Interrupt the reactor's current (or next) `wait` call.
    pub fn wake(&self) -> io::Result<()> {
        sys_eventfd_write(self.inner.fd)
    }
}

/// Level-triggered epoll instance with an integrated waker.
#[derive(Debug)]
pub struct Reactor {
    epfd: i32,
    waker: Waker,
}

impl Reactor {
    /// Create a reactor and register its waker eventfd.
    pub fn new() -> io::Result<Reactor> {
        let epfd = sys_epoll_create()?;
        let efd = match sys_eventfd() {
            Ok(fd) => fd,
            Err(e) => {
                sys_close(epfd);
                return Err(e);
            }
        };
        if let Err(e) = sys_epoll_ctl(epfd, EPOLL_CTL_ADD, efd, EPOLLIN, WAKER_TOKEN) {
            sys_close(efd);
            sys_close(epfd);
            return Err(e);
        }
        Ok(Reactor {
            epfd,
            waker: Waker {
                inner: Arc::new(WakerFd { fd: efd }),
            },
        })
    }

    /// Handle other threads use to interrupt [`Reactor::wait`].
    pub fn waker(&self) -> Waker {
        self.waker.clone()
    }

    /// Register a stream under `token` with the given interest.
    pub fn register(&self, stream: &TcpStream, token: u64, interest: Interest) -> io::Result<()> {
        debug_assert_ne!(token, WAKER_TOKEN, "token collides with the waker");
        sys_epoll_ctl(
            self.epfd,
            EPOLL_CTL_ADD,
            stream.as_raw_fd(),
            interest.mask(),
            token,
        )
    }

    /// Change the interest set of an already-registered stream.
    pub fn reregister(&self, stream: &TcpStream, token: u64, interest: Interest) -> io::Result<()> {
        sys_epoll_ctl(
            self.epfd,
            EPOLL_CTL_MOD,
            stream.as_raw_fd(),
            interest.mask(),
            token,
        )
    }

    /// Remove a stream from the interest set. Errors are swallowed:
    /// the kernel auto-deregisters on close, so a racing close is not
    /// a fault worth surfacing.
    pub fn deregister(&self, stream: &TcpStream) {
        let _ = sys_epoll_ctl(self.epfd, EPOLL_CTL_DEL, stream.as_raw_fd(), 0, 0);
    }

    /// Block up to `timeout_ms` for readiness events, appending them
    /// to `out` (which is cleared first). Waker wakeups are drained
    /// internally and reported via the `bool` return (`true` when the
    /// waker fired). A negative timeout blocks indefinitely.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<bool> {
        out.clear();
        let mut raw = [EpollEvent::zeroed(); 256];
        let n = match sys_epoll_wait(self.epfd, &mut raw, timeout_ms) {
            Ok(n) => n,
            // A signal interrupting the wait is a spurious wakeup, not
            // an error: report "no events" and let the loop re-poll.
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        let mut woken = false;
        for ev in raw.iter().take(n) {
            // Copy out of the (potentially packed) struct before use.
            let events = ev.events;
            let token = ev.data;
            if token == WAKER_TOKEN {
                sys_eventfd_drain(self.waker.inner.fd);
                woken = true;
                continue;
            }
            out.push(Event {
                token,
                readable: events & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: events & EPOLLOUT != 0,
                hangup: events & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(woken)
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        sys_close(self.epfd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::TcpListener;

    #[test]
    fn waker_interrupts_wait() {
        let reactor = Reactor::new().expect("reactor");
        let waker = reactor.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            waker.wake().expect("wake");
        });
        let mut events = Vec::new();
        let woken = reactor.wait(&mut events, 5_000).expect("wait");
        assert!(woken);
        assert!(events.is_empty());
        handle.join().expect("join");
    }

    #[test]
    fn readable_socket_reports_its_token() {
        let reactor = Reactor::new().expect("reactor");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");
        reactor
            .register(&server, 42, Interest::READ)
            .expect("register");

        client.write_all(b"ping").expect("write");
        let mut events = Vec::new();
        // Level-triggered: the event persists until the bytes are read.
        for _ in 0..2 {
            reactor.wait(&mut events, 5_000).expect("wait");
            if !events.is_empty() {
                break;
            }
        }
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 42);
        assert!(events[0].readable);

        let mut buf = [0u8; 8];
        let mut server = server;
        let n = server.read(&mut buf).expect("read");
        assert_eq!(&buf[..n], b"ping");
        reactor.deregister(&server);
    }

    #[test]
    fn interest_mod_controls_writable_events() {
        let reactor = Reactor::new().expect("reactor");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let _client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");

        // Read-only interest: an idle writable socket stays silent.
        reactor
            .register(&server, 9, Interest::READ)
            .expect("register");
        let mut events = Vec::new();
        reactor.wait(&mut events, 50).expect("wait");
        assert!(events.iter().all(|e| !e.writable));

        // Read+write interest: writability is now reported.
        reactor
            .reregister(&server, 9, Interest::READ_WRITE)
            .expect("reregister");
        reactor.wait(&mut events, 5_000).expect("wait");
        assert!(events.iter().any(|e| e.token == 9 && e.writable));
        reactor.deregister(&server);
    }
}
