//! Property-based tests of the `icommwire v1` codec.
//!
//! The framing layer is the part of the serving plane that faces
//! arbitrary bytes from the network, so it gets the adversarial
//! treatment: every opcode must round-trip through encode → (chunked)
//! decode, and truncated / bit-flipped / oversized / garbage inputs
//! must be rejected or left pending — never panic, never mis-decode.

use proptest::prelude::*;

use icomm_net::wire::{
    decode_batch_request, decode_error, decode_tune_request, decode_tune_response,
    encode_batch_request, encode_batch_response, encode_error, encode_tune_request,
    encode_tune_response, frame_bytes, FrameDecoder, Opcode, WireError,
};
use icomm_serve::{TuneRequest, TuneResponse};

fn ascii_string() -> impl Strategy<Value = String> {
    prop::collection::vec(32u8..127, 0..24)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ASCII is valid UTF-8"))
}

fn opt_string() -> impl Strategy<Value = Option<String>> {
    (prop::bool::ANY, ascii_string()).prop_map(|(some, s)| if some { Some(s) } else { None })
}

fn opt_bool() -> impl Strategy<Value = Option<bool>> {
    (prop::bool::ANY, prop::bool::ANY).prop_map(|(some, v)| if some { Some(v) } else { None })
}

fn opt_f64() -> impl Strategy<Value = Option<f64>> {
    (prop::bool::ANY, prop::num::f64::NORMAL)
        .prop_map(|(some, v)| if some { Some(v) } else { None })
}

fn opt_u64() -> impl Strategy<Value = Option<u64>> {
    (prop::bool::ANY, any::<u64>()).prop_map(|(some, v)| if some { Some(v) } else { None })
}

fn tune_request() -> impl Strategy<Value = TuneRequest> {
    (
        any::<u64>(),
        ascii_string(),
        ascii_string(),
        opt_string(),
        opt_string(),
    )
        .prop_map(|(id, board, app, current, class)| {
            let mut request = TuneRequest::new(id, &board, &app);
            request.current = current;
            request.class = class;
            request
        })
}

fn tune_response() -> impl Strategy<Value = TuneResponse> {
    (
        (any::<u64>(), prop::bool::ANY, opt_string(), opt_string()),
        (opt_string(), opt_string(), opt_string(), opt_bool()),
        (opt_f64(), opt_string(), opt_bool(), opt_u64(), opt_string()),
    )
        .prop_map(
            |(
                (id, ok, error, board),
                (app, current, recommended, switch_suggested),
                (estimated_speedup, rationale, cache_hit, latency_us, overloaded),
            )| TuneResponse {
                id,
                ok,
                error,
                board,
                app,
                current,
                recommended,
                switch_suggested,
                estimated_speedup,
                rationale,
                cache_hit,
                latency_us,
                overloaded,
            },
        )
}

/// Splits `bytes` into decoder-feed chunks at pseudo-random points
/// derived from `salt`, and decodes exactly one frame.
fn decode_chunked(bytes: &[u8], salt: u64) -> Result<Option<icomm_net::Frame>, WireError> {
    let mut decoder = FrameDecoder::with_default_limit();
    let mut offset = 0usize;
    let mut state = salt | 1;
    while offset < bytes.len() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let take = 1 + (state % 7) as usize;
        let end = (offset + take).min(bytes.len());
        decoder.extend(&bytes[offset..end]);
        offset = end;
        // Mid-stream pulls must never produce a frame early or error.
        if offset < bytes.len() {
            match decoder.next_frame() {
                Ok(None) => {}
                Ok(Some(frame)) => return Ok(Some(frame)),
                Err(e) => return Err(e),
            }
        }
    }
    decoder.next_frame()
}

proptest! {
    #[test]
    fn every_opcode_round_trips_through_chunked_decode(
        request in tune_request(),
        response in tune_response(),
        message in ascii_string(),
        payload in prop::collection::vec(any::<u8>(), 0..64),
        salt in any::<u64>(),
    ) {
        // One representative body per opcode, exercising all eleven.
        let bodies: Vec<(Opcode, Vec<u8>)> = vec![
            (Opcode::Tune, encode_tune_request(&request)),
            (Opcode::Stats, Vec::new()),
            (Opcode::Characterize, icomm_net::wire::encode_characterize_request("tx2")),
            (Opcode::Batch, encode_batch_request(std::slice::from_ref(&request))),
            (Opcode::Health, Vec::new()),
            (Opcode::TuneReply, encode_tune_response(&response)),
            (Opcode::StatsReply, payload.clone()),
            (Opcode::CharacterizeReply, payload.clone()),
            (Opcode::BatchReply, encode_batch_response(std::slice::from_ref(&response))),
            (Opcode::HealthReply, payload.clone()),
            (Opcode::Error, encode_error(&message)),
        ];
        prop_assert_eq!(bodies.len(), Opcode::ALL.len());
        for (opcode, body) in bodies {
            let framed = frame_bytes(opcode, &body);
            let frame = decode_chunked(&framed, salt)
                .expect("valid frame rejected")
                .expect("valid frame left pending");
            prop_assert_eq!(frame.opcode, opcode);
            prop_assert_eq!(&frame.body, &body);
        }
    }

    #[test]
    fn tune_request_body_round_trips(request in tune_request()) {
        let body = encode_tune_request(&request);
        let decoded = decode_tune_request(&body).expect("decode");
        prop_assert_eq!(decoded, request);
    }

    #[test]
    fn tune_response_body_round_trips(response in tune_response()) {
        let body = encode_tune_response(&response);
        let decoded = decode_tune_response(&body).expect("decode");
        // NaN-safe comparison: the codec must preserve bits, and
        // PartialEq on f64 treats NaN != NaN.
        prop_assert_eq!(
            decoded.estimated_speedup.map(f64::to_bits),
            response.estimated_speedup.map(f64::to_bits)
        );
        let mut normalized = decoded;
        normalized.estimated_speedup = response.estimated_speedup;
        prop_assert_eq!(normalized, response);
    }

    #[test]
    fn batch_bodies_round_trip(
        requests in prop::collection::vec(tune_request(), 0..8),
    ) {
        let body = encode_batch_request(&requests);
        let decoded = decode_batch_request(&body).expect("decode");
        prop_assert_eq!(decoded, requests);
    }

    #[test]
    fn error_bodies_round_trip(message in ascii_string()) {
        let body = encode_error(&message);
        prop_assert_eq!(decode_error(&body).expect("decode"), message);
    }

    #[test]
    fn truncated_frames_stay_pending_and_never_decode(
        request in tune_request(),
        cut in any::<u64>(),
    ) {
        let framed = frame_bytes(Opcode::Tune, &encode_tune_request(&request));
        // Cut anywhere from the empty prefix to one byte short.
        let keep = (cut % framed.len() as u64) as usize;
        let mut decoder = FrameDecoder::with_default_limit();
        decoder.extend(&framed[..keep]);
        match decoder.next_frame() {
            Ok(None) => {}
            Ok(Some(_)) => prop_assert!(false, "decoded a frame from a strict prefix"),
            Err(e) => prop_assert!(false, "prefix of a valid frame errored: {e}"),
        }
        prop_assert_eq!(decoder.has_partial(), keep > 0);
    }

    #[test]
    fn bit_flips_in_the_covered_region_are_rejected(
        request in tune_request(),
        flip in any::<u64>(),
    ) {
        let mut framed = frame_bytes(Opcode::Tune, &encode_tune_request(&request));
        // Flip one bit past the length prefix: version, opcode, body,
        // or CRC trailer — all covered by the checksum.
        let covered_bits = (framed.len() - 4) * 8;
        let bit = (flip % covered_bits as u64) as usize;
        framed[4 + bit / 8] ^= 1 << (bit % 8);
        let mut decoder = FrameDecoder::with_default_limit();
        decoder.extend(&framed);
        match decoder.next_frame() {
            Err(WireError::BadCrc { .. }) => {}
            other => prop_assert!(false, "single bit flip not caught by CRC: {other:?}"),
        }
    }

    #[test]
    fn bit_flips_in_the_length_prefix_never_yield_the_frame(
        request in tune_request(),
        flip in any::<u64>(),
    ) {
        let framed = frame_bytes(Opcode::Tune, &encode_tune_request(&request));
        let mut corrupted = framed.clone();
        let bit = (flip % 32) as usize;
        corrupted[bit / 8] ^= 1 << (bit % 8);
        let mut decoder = FrameDecoder::with_default_limit();
        decoder.extend(&corrupted);
        match decoder.next_frame() {
            // Shorter advertised length: trailer misaligns, CRC fails.
            // Longer: the decoder waits (pending) or rejects the bound.
            Ok(None) | Err(_) => {}
            Ok(Some(frame)) => {
                let original = decode_tune_request(&encode_tune_request(&request)).expect("self");
                let reparsed = decode_tune_request(&frame.body);
                prop_assert!(
                    reparsed.map(|r| r != original).unwrap_or(true),
                    "length-prefix flip reproduced the original frame"
                );
            }
        }
    }

    #[test]
    fn oversized_lengths_are_rejected_before_the_body_arrives(
        excess in 1u32..1_000_000,
        tail in prop::collection::vec(any::<u8>(), 0..16),
    ) {
        let max = 4096;
        let mut decoder = FrameDecoder::new(max);
        let advertised = max + excess;
        let mut bytes = advertised.to_le_bytes().to_vec();
        bytes.extend_from_slice(&tail);
        decoder.extend(&bytes);
        match decoder.next_frame() {
            Err(WireError::Oversized { len, max: m }) => {
                prop_assert_eq!(len, advertised);
                prop_assert_eq!(m, max);
            }
            other => prop_assert!(false, "oversized length not rejected: {other:?}"),
        }
    }

    #[test]
    fn random_garbage_never_panics_the_decoder(
        garbage in prop::collection::vec(any::<u8>(), 0..512),
        salt in any::<u64>(),
    ) {
        let mut decoder = FrameDecoder::new(4096);
        let mut offset = 0usize;
        let mut state = salt | 1;
        while offset < garbage.len() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let end = (offset + 1 + (state % 17) as usize).min(garbage.len());
            decoder.extend(&garbage[offset..end]);
            offset = end;
            // Drain until pending or rejected; rejection ends the
            // stream (a real connection would close here).
            loop {
                match decoder.next_frame() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(_) => return,
                }
            }
        }
        // Memory stays bounded by the frame cap plus framing overhead.
        prop_assert!(decoder.pending_bytes() <= 4096 + 8);
    }
}
