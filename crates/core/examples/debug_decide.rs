use icomm_core::Tuner;
use icomm_microbench::mb2::{Mb2Config, ThresholdSweep};
use icomm_microbench::mb3::{Mb3Config, OverlapProbe};
use icomm_microbench::{DeviceCharacterization, PeakCacheThroughput, UpmProbe};
use icomm_models::{CommModelKind, CpuPhase, GpuPhase, Workload};
use icomm_soc::cache::AccessKind;
use icomm_soc::units::ByteSize;
use icomm_soc::DeviceProfile;
use icomm_trace::Pattern;

fn main() {
    let device = DeviceProfile::jetson_agx_xavier();
    let mb1 = PeakCacheThroughput::new().run(&device);
    let mb2 = ThresholdSweep::with_config(Mb2Config {
        denominators: vec![4096, 512, 64, 32, 24, 16, 8, 2],
        ..Mb2Config::default()
    })
    .run(&device);
    let mb3 = OverlapProbe::with_config(Mb3Config {
        array_bytes: 1 << 25,
        ..Default::default()
    })
    .run(&device);
    let upm = UpmProbe::new().run(&device);
    let c = DeviceCharacterization::from_results(&mb1, &mb2, &mb3, &upm);
    println!("{c:#?}");
    let bytes = 1u64 << 20;
    let w = Workload::builder("stream")
        .bytes_to_gpu(ByteSize(bytes))
        .bytes_from_gpu(ByteSize(bytes / 16))
        .cpu(CpuPhase {
            ops: vec![],
            shared_accesses: Pattern::Linear {
                start: 0,
                bytes: bytes / 4,
                txn_bytes: 64,
                kind: AccessKind::Write,
            },
            private_accesses: None,
        })
        .gpu(GpuPhase {
            compute_work: 1 << 26,
            shared_accesses: Pattern::Linear {
                start: 0,
                bytes,
                txn_bytes: 64,
                kind: AccessKind::Read,
            },
            private_accesses: None,
        })
        .overlappable(true)
        .iterations(2)
        .build();
    let tuner = Tuner::with_characterization(device, c);
    let o = tuner.recommend(&w, CommModelKind::StandardCopy);
    println!(
        "profile: kernel {} cpu {} copy {} total {} ll_tp {:.1} GB/s",
        o.profile.kernel_time,
        o.profile.cpu_time,
        o.profile.copy_time,
        o.profile.total_time,
        o.profile.gpu_ll_throughput() / 1e9
    );
    println!("{:#?}", o.recommendation);
}
