//! The decision flow of Fig. 2: classify the application by its cache
//! usage against the device thresholds and recommend a communication
//! model.

use std::fmt;

use serde::{Deserialize, Serialize};

use icomm_microbench::DeviceCharacterization;
use icomm_models::CommModelKind;
use icomm_profile::ProfileReport;
use icomm_soc::units::Picos;

use crate::speedup::{sc_to_zc, to_upm, zc_to_sc, SpeedupEstimate};
use crate::usage::{cpu_usage_of, gpu_usage_of};

/// Where the application's GPU cache usage falls relative to the device's
/// zone boundaries (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CacheZone {
    /// Usage below the threshold: ZC costs nothing on the GPU side.
    Free,
    /// Usage between the threshold and the zone-2 limit: ZC degrades the
    /// kernel, but overlap and copy elimination may still compensate.
    Maybe,
    /// Usage beyond the zone-2 limit (>200 % kernel degradation): ZC is
    /// ruled out.
    RuledOut,
}

impl fmt::Display for CacheZone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CacheZone::Free => "zone 1 (ZC free)",
            CacheZone::Maybe => "zone 2 (ZC maybe)",
            CacheZone::RuledOut => "zone 3 (ZC ruled out)",
        };
        f.write_str(s)
    }
}

/// Whether CPU LLC usage (Eqn. 1, percent) classifies as cache-dependent.
///
/// Boundary semantics (shared by every caller, including the online
/// controller in `icomm-adapt`): the threshold itself is **not**
/// dependent — usage must strictly *exceed* it. Thresholds are measured
/// as "the usage at which ZC stops matching SC", so a value exactly at
/// the threshold still matches. Non-finite usage (a degenerate profile)
/// classifies as not dependent, the conservative no-switch reading.
pub fn is_cpu_cache_dependent(cpu_usage_pct: f64, device: &DeviceCharacterization) -> bool {
    cpu_usage_pct.is_finite() && cpu_usage_pct > device.cpu_cache_threshold_pct
}

/// Whether GPU LLC usage (Eqn. 2, percent) classifies as cache-dependent.
///
/// Same boundary rule as [`is_cpu_cache_dependent`]: strictly greater
/// than the threshold.
pub fn is_gpu_cache_dependent(gpu_usage_pct: f64, device: &DeviceCharacterization) -> bool {
    gpu_usage_pct.is_finite() && gpu_usage_pct > device.gpu_cache_threshold_pct
}

/// Classifies GPU usage into the Fig. 3 zones with explicit boundary
/// semantics:
///
/// - usage **≤ threshold** → [`CacheZone::Free`] (the threshold itself is
///   zone 1);
/// - threshold **< usage ≤ zone-2 limit** → [`CacheZone::Maybe`] (the
///   limit itself is still zone 2 — the limit is defined as the last
///   usage at which overlap can compensate the degradation);
/// - usage **> zone-2 limit** → [`CacheZone::RuledOut`].
///
/// A missing zone-2 limit, or a degenerate characterization whose limit
/// does not exceed its threshold, rules ZC out for any usage above the
/// threshold — the conservative choice the paper makes for
/// non-I/O-coherent devices.
///
/// Both comparisons are closed on the "keep the cheaper zone" side, so a
/// usage sitting exactly on a boundary always classifies into the lower
/// zone; an adaptation controller sampling a stationary phase therefore
/// cannot flap between zones on measurement ties alone.
pub fn classify_zone(gpu_usage_pct: f64, device: &DeviceCharacterization) -> CacheZone {
    if !is_gpu_cache_dependent(gpu_usage_pct, device) {
        return CacheZone::Free;
    }
    match device.gpu_cache_zone2_pct {
        Some(limit) if limit > device.gpu_cache_threshold_pct && gpu_usage_pct <= limit => {
            CacheZone::Maybe
        }
        _ => CacheZone::RuledOut,
    }
}

/// The framework's verdict for one application on one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Model the application currently uses.
    pub current: CommModelKind,
    /// Model the framework recommends.
    pub recommended: CommModelKind,
    /// Predicted speedup of switching, when a switch is recommended.
    pub estimated_speedup: Option<SpeedupEstimate>,
    /// Measured CPU LLC usage (Eqn. 1), percent.
    pub cpu_usage_pct: f64,
    /// Measured GPU LLC usage (Eqn. 2), percent.
    pub gpu_usage_pct: f64,
    /// Device CPU threshold, percent.
    pub cpu_threshold_pct: f64,
    /// Device GPU threshold, percent.
    pub gpu_threshold_pct: f64,
    /// Zone classification of the GPU usage.
    pub zone: CacheZone,
    /// Whether the CPU side is classified cache-dependent.
    pub cpu_cache_dependent: bool,
    /// Whether the GPU side is classified cache-dependent.
    pub gpu_cache_dependent: bool,
    /// Human-readable explanation of the verdict.
    pub rationale: String,
}

impl Recommendation {
    /// Whether the framework proposes changing the communication model.
    pub fn suggests_switch(&self) -> bool {
        self.recommended != self.current
    }
}

/// Runs the Fig. 2 decision flow.
///
/// Cache usage can only be observed with the caches *enabled*, so
/// `usage_profile` must come from a run under SC or UM (the "standard
/// profiling tool" step of Fig. 2) — even when the application's shipping
/// implementation is zero copy. `current_profile` is measured under the
/// model the application actually uses (`current`) and supplies the
/// runtime decomposition for the speedup estimators.
///
/// `copy_time_estimate` is the per-iteration copy time SC would pay; it is
/// required when the current model is ZC (where no copy exists to
/// measure). [`crate::tuner::Tuner`] computes it from the workload payload
/// and the device copy bandwidth.
pub fn recommend(
    usage_profile: &ProfileReport,
    current_profile: &ProfileReport,
    current: CommModelKind,
    device: &DeviceCharacterization,
    copy_time_estimate: Picos,
) -> Recommendation {
    let profile = current_profile;
    let cpu_usage = cpu_usage_of(usage_profile);
    let gpu_usage = gpu_usage_of(usage_profile, device);
    let cpu_dependent = is_cpu_cache_dependent(cpu_usage, device);
    let gpu_dependent = is_gpu_cache_dependent(gpu_usage, device);
    let zone = classify_zone(gpu_usage, device);

    let base = |recommended: CommModelKind, est, rationale: String| Recommendation {
        current,
        recommended,
        estimated_speedup: est,
        cpu_usage_pct: cpu_usage,
        gpu_usage_pct: gpu_usage,
        cpu_threshold_pct: device.cpu_cache_threshold_pct,
        gpu_threshold_pct: device.gpu_cache_threshold_pct,
        zone,
        cpu_cache_dependent: cpu_dependent,
        gpu_cache_dependent: gpu_dependent,
        rationale,
    };

    let is_zc = current == CommModelKind::ZeroCopy;

    // UPM refinement of the "stay cache-enabled" exits: when the flow
    // concludes the application should keep a cache-enabled model, a
    // hardware-coherent device can still drop the copies/migrations by
    // moving to coherent UPM — the caches stay on, so the cache-usage
    // classification that led here is unaffected. Inert on the Jetsons
    // (`upm_supported` false bounds the estimate at 1.0).
    let upm_refine = |keep: Recommendation| -> Recommendation {
        if !device.upm_supported || current == CommModelKind::CoherentUpm || is_zc {
            return keep;
        }
        let est = to_upm(profile, device);
        if est.estimated <= 1.0 {
            return keep;
        }
        Recommendation {
            recommended: CommModelKind::CoherentUpm,
            estimated_speedup: Some(est),
            rationale: format!(
                "{} The coherent fabric shares the allocation without \
                 copies or migrations at the current page size, for an \
                 estimated {:.0}% further speedup (UPM).",
                keep.rationale,
                est.as_percent()
            ),
            ..keep
        }
    };

    // GPU cache-dependent branch.
    if gpu_dependent {
        if zone == CacheZone::Maybe && is_zc {
            return base(
                CommModelKind::ZeroCopy,
                None,
                format!(
                    "GPU cache usage {gpu_usage:.1}% exceeds the threshold \
                     ({:.1}%) but stays inside zone 2 ({:.1}%): the kernel \
                     degradation can be compensated by copy elimination and \
                     task overlapping, so ZC is kept.",
                    device.gpu_cache_threshold_pct,
                    device.gpu_cache_zone2_pct.unwrap_or(100.0),
                ),
            );
        }
        if is_zc {
            let est = zc_to_sc(profile, copy_time_estimate, device);
            return base(
                CommModelKind::StandardCopy,
                Some(est),
                format!(
                    "GPU cache usage {gpu_usage:.1}% is deep in zone 3: the \
                     disabled GPU cache bottlenecks the kernel; switching to \
                     SC can recover up to {:.1}x.",
                    est.max_bound
                ),
            );
        }
        return upm_refine(base(
            current,
            None,
            format!(
                "GPU cache usage {gpu_usage:.1}% exceeds the device \
                 threshold ({:.1}%): the application is cache-dependent and \
                 already uses {current}, so no change is suggested.",
                device.gpu_cache_threshold_pct
            ),
        ));
    }

    // GPU usage low; CPU cache-dependent branch.
    if cpu_dependent {
        // Note: on I/O-coherent devices the CPU threshold is 100 %, so
        // this branch is unreachable there — matching the paper's flow
        // where an efficient coherence implementation keeps ZC viable.
        if is_zc {
            let est = zc_to_sc(profile, copy_time_estimate, device);
            return base(
                CommModelKind::StandardCopy,
                Some(est),
                format!(
                    "CPU cache usage {cpu_usage:.1}% exceeds the threshold \
                     ({:.1}%) and the device disables the CPU cache on \
                     pinned buffers: SC/UM will serve the CPU task from its \
                     caches.",
                    device.cpu_cache_threshold_pct
                ),
            );
        }
        return upm_refine(base(
            current,
            None,
            format!(
                "CPU cache usage {cpu_usage:.1}% exceeds the threshold \
                 ({:.1}%): the CPU task depends on caches the device would \
                 bypass under ZC, so {current} is kept.",
                device.cpu_cache_threshold_pct
            ),
        ));
    }

    // Both usages low: ZC preferred when the device's zero-copy path can
    // actually sustain it.
    if is_zc {
        return base(
            CommModelKind::ZeroCopy,
            None,
            "cache usage is low on both sides and the application already \
             uses zero copy; no change needed."
                .to_string(),
        );
    }
    if device.zc_viable() {
        let est = sc_to_zc(profile, device);
        base(
            CommModelKind::ZeroCopy,
            Some(est),
            format!(
                "cache usage is low on both sides (CPU {cpu_usage:.1}%, GPU \
                 {gpu_usage:.1}%): zero copy eliminates the copies and \
                 overlaps the tasks, for an estimated {:.0}% speedup (and \
                 lower energy).",
                est.as_percent()
            ),
        )
    } else {
        upm_refine(base(
            current,
            None,
            format!(
                "cache usage is low, but this device's zero-copy path is too \
                 slow to ever pay off (SC/ZC max speedup {:.2} < 1); \
                 {current} is kept.",
                device.sc_zc_max_speedup
            ),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device(io_coherent: bool) -> DeviceCharacterization {
        DeviceCharacterization {
            device: "test".into(),
            gpu_cache_max_throughput: 100e9,
            gpu_zc_throughput: if io_coherent { 30e9 } else { 1e9 },
            gpu_um_throughput: 100e9,
            gpu_cache_threshold_pct: 10.0,
            gpu_cache_zone2_pct: if io_coherent { Some(50.0) } else { None },
            cpu_cache_threshold_pct: if io_coherent { 100.0 } else { 15.0 },
            sc_zc_max_speedup: if io_coherent { 2.4 } else { 0.2 },
            zc_sc_max_speedup: if io_coherent { 3.7 } else { 70.0 },
            upm_supported: false,
            gpu_upm_throughput: 0.0,
            upm_kernel_penalty: 1.0,
            um_upm_max_speedup: 1.0,
        }
    }

    fn profile(
        model: CommModelKind,
        gpu_ll_gbps: f64,
        cpu_l1_miss: f64,
        cpu_ll_miss: f64,
    ) -> ProfileReport {
        // kernel_time 100us; transactions sized to hit the target LL rate.
        let kernel = Picos::from_micros(100);
        let bytes = gpu_ll_gbps * 1e9 * 100e-6;
        ProfileReport {
            workload: "t".into(),
            model,
            miss_rate_l1_cpu: cpu_l1_miss,
            miss_rate_ll_cpu: cpu_ll_miss,
            hit_rate_l1_gpu: 0.0,
            gpu_transactions: (bytes / 64.0) as u64,
            gpu_transaction_bytes: 64.0,
            kernel_time: kernel,
            cpu_time: Picos::from_micros(80),
            copy_time: Picos::from_micros(30),
            total_time: Picos::from_micros(210),
        }
    }

    #[test]
    fn low_low_on_viable_device_recommends_zc() {
        let p = profile(CommModelKind::StandardCopy, 2.0, 0.05, 0.9);
        let r = recommend(&p, &p, p.model, &device(true), Picos::from_micros(30));
        assert_eq!(r.recommended, CommModelKind::ZeroCopy);
        assert!(r.suggests_switch());
        assert_eq!(r.zone, CacheZone::Free);
        assert!(r.estimated_speedup.unwrap().estimated > 1.0);
    }

    #[test]
    fn low_low_on_slow_zc_device_keeps_sc() {
        let p = profile(CommModelKind::StandardCopy, 2.0, 0.05, 0.9);
        let r = recommend(&p, &p, p.model, &device(false), Picos::from_micros(30));
        assert_eq!(r.recommended, CommModelKind::StandardCopy);
        assert!(!r.suggests_switch());
    }

    #[test]
    fn gpu_dependent_zc_app_switches_to_sc() {
        let p = profile(CommModelKind::ZeroCopy, 60.0, 0.05, 0.9);
        let r = recommend(&p, &p, p.model, &device(false), Picos::from_micros(30));
        assert_eq!(r.recommended, CommModelKind::StandardCopy);
        assert!(r.gpu_cache_dependent);
        assert!(r.estimated_speedup.is_some());
    }

    #[test]
    fn gpu_dependent_sc_app_keeps_sc_no_estimate() {
        // Paper: "if an application is cache dependent and originally
        // implemented with SC, the framework does not suggest any change".
        let p = profile(CommModelKind::StandardCopy, 60.0, 0.05, 0.9);
        let r = recommend(&p, &p, p.model, &device(false), Picos::from_micros(30));
        assert_eq!(r.recommended, CommModelKind::StandardCopy);
        assert!(r.estimated_speedup.is_none());
    }

    #[test]
    fn zone2_zc_app_keeps_zc_on_io_coherent_device() {
        // Usage 20% on a device with threshold 10% and zone-2 limit 50%:
        // exactly the ORB-SLAM-on-Xavier situation.
        let p = profile(CommModelKind::ZeroCopy, 20.0, 0.05, 0.9);
        let r = recommend(&p, &p, p.model, &device(true), Picos::from_micros(2));
        assert_eq!(r.zone, CacheZone::Maybe);
        assert_eq!(r.recommended, CommModelKind::ZeroCopy);
    }

    #[test]
    fn zone3_detected_beyond_zone2_limit() {
        let p = profile(CommModelKind::ZeroCopy, 80.0, 0.05, 0.9);
        let r = recommend(&p, &p, p.model, &device(true), Picos::from_micros(2));
        assert_eq!(r.zone, CacheZone::RuledOut);
        assert_eq!(r.recommended, CommModelKind::StandardCopy);
    }

    #[test]
    fn cpu_dependent_on_non_coherent_device_keeps_sc() {
        // CPU usage: 0.4 * (1 - 0.2) = 32% > 15% threshold.
        let p = profile(CommModelKind::StandardCopy, 2.0, 0.4, 0.2);
        let r = recommend(&p, &p, p.model, &device(false), Picos::from_micros(30));
        assert!(r.cpu_cache_dependent);
        assert_eq!(r.recommended, CommModelKind::StandardCopy);
    }

    #[test]
    fn cpu_dependency_irrelevant_on_io_coherent_device() {
        let p = profile(CommModelKind::StandardCopy, 2.0, 0.4, 0.2);
        let r = recommend(&p, &p, p.model, &device(true), Picos::from_micros(30));
        assert!(!r.cpu_cache_dependent, "threshold is 100% on Xavier-class");
        assert_eq!(r.recommended, CommModelKind::ZeroCopy);
    }

    #[test]
    fn usage_exactly_at_thresholds_is_not_dependent() {
        // The threshold itself belongs to the "independent" side: a
        // stationary phase measuring exactly the threshold must classify
        // identically every window, and into the cheaper class.
        let dev = device(true); // gpu threshold 10, zone2 50, cpu 100
        assert!(!is_gpu_cache_dependent(10.0, &dev));
        assert!(is_gpu_cache_dependent(10.0 + 1e-9, &dev));
        assert!(!is_cpu_cache_dependent(100.0, &dev));
        assert_eq!(classify_zone(10.0, &dev), CacheZone::Free);
        assert_eq!(classify_zone(10.0 + 1e-9, &dev), CacheZone::Maybe);
    }

    #[test]
    fn usage_exactly_at_zone2_limit_is_still_maybe() {
        let dev = device(true); // zone2 limit 50
        assert_eq!(classify_zone(50.0, &dev), CacheZone::Maybe);
        assert_eq!(classify_zone(50.0 + 1e-9, &dev), CacheZone::RuledOut);
    }

    #[test]
    fn missing_or_degenerate_zone2_rules_out_above_threshold() {
        let mut dev = device(true);
        dev.gpu_cache_zone2_pct = None;
        assert_eq!(classify_zone(11.0, &dev), CacheZone::RuledOut);
        // A characterization whose zone-2 limit collapsed to (or below)
        // the threshold must not create an unreachable Maybe band.
        dev.gpu_cache_zone2_pct = Some(10.0);
        assert_eq!(classify_zone(10.0, &dev), CacheZone::Free);
        assert_eq!(classify_zone(10.5, &dev), CacheZone::RuledOut);
        dev.gpu_cache_zone2_pct = Some(5.0);
        assert_eq!(classify_zone(11.0, &dev), CacheZone::RuledOut);
    }

    #[test]
    fn non_finite_usage_classifies_conservatively() {
        let dev = device(true);
        assert!(!is_gpu_cache_dependent(f64::NAN, &dev));
        assert!(!is_cpu_cache_dependent(f64::NAN, &dev));
        assert_eq!(classify_zone(f64::NAN, &dev), CacheZone::Free);
        assert!(!is_gpu_cache_dependent(f64::INFINITY, &dev));
        assert_eq!(classify_zone(f64::INFINITY, &dev), CacheZone::Free);
    }

    #[test]
    fn recommend_agrees_with_classifiers_at_boundaries() {
        // A profile landing exactly on the GPU threshold keeps the
        // low-usage branch of the flow: SC is told to switch to ZC on an
        // I/O-coherent device rather than being classified dependent.
        let dev = device(true);
        // threshold 10% of 100 GB/s peak → 10 GB/s LL throughput.
        let p = profile(CommModelKind::StandardCopy, 10.0, 0.05, 0.9);
        let r = recommend(&p, &p, p.model, &dev, Picos::from_micros(30));
        assert!(!r.gpu_cache_dependent);
        assert_eq!(r.zone, CacheZone::Free);
        assert_eq!(r.zone, classify_zone(r.gpu_usage_pct, &dev));
        assert_eq!(r.recommended, CommModelKind::ZeroCopy);
    }

    fn upm_device() -> DeviceCharacterization {
        DeviceCharacterization {
            upm_supported: true,
            gpu_upm_throughput: 90e9,
            upm_kernel_penalty: 1.0,
            um_upm_max_speedup: 2.0,
            ..device(true)
        }
    }

    #[test]
    fn cache_dependent_sc_refines_to_upm_on_coherent_device() {
        // profile: total 210us, copy 30us, kernel 100us. With a unit
        // penalty the predicted UPM runtime is 180us -> ~1.17x.
        let p = profile(CommModelKind::StandardCopy, 60.0, 0.05, 0.9);
        let r = recommend(&p, &p, p.model, &upm_device(), Picos::from_micros(30));
        assert_eq!(r.recommended, CommModelKind::CoherentUpm);
        assert!(r.suggests_switch());
        let est = r.estimated_speedup.unwrap();
        assert!(est.estimated > 1.0 && est.estimated <= est.max_bound);
        assert!(r.rationale.contains("UPM"));
    }

    #[test]
    fn upm_refinement_suppressed_by_small_page_penalty() {
        // A 4K-page penalty of 1.5 adds 50us back to the 100us kernel,
        // overwhelming the 30us copy saving: SC is kept.
        let mut dev = upm_device();
        dev.upm_kernel_penalty = 1.5;
        let p = profile(CommModelKind::StandardCopy, 60.0, 0.05, 0.9);
        let r = recommend(&p, &p, p.model, &dev, Picos::from_micros(30));
        assert_eq!(r.recommended, CommModelKind::StandardCopy);
        assert!(r.estimated_speedup.is_none());
    }

    #[test]
    fn upm_current_is_kept_not_switched_to_itself() {
        let p = profile(CommModelKind::CoherentUpm, 60.0, 0.05, 0.9);
        let r = recommend(&p, &p, p.model, &upm_device(), Picos::from_micros(30));
        assert_eq!(r.recommended, CommModelKind::CoherentUpm);
        assert!(!r.suggests_switch());
    }

    #[test]
    fn upm_refinement_inert_on_jetson_class_devices() {
        // Byte-identical to the pre-UPM flow when the device has no
        // coherent fabric, whatever the profile shape.
        for model in [CommModelKind::StandardCopy, CommModelKind::UnifiedMemory] {
            for ll in [1.0, 20.0, 80.0] {
                let p = profile(model, ll, 0.4, 0.2);
                for dev in [device(true), device(false)] {
                    let r = recommend(&p, &p, p.model, &dev, Picos::from_micros(10));
                    assert_ne!(r.recommended, CommModelKind::CoherentUpm);
                }
            }
        }
    }

    #[test]
    fn rationale_is_never_empty() {
        for model in CommModelKind::ALL {
            for ll in [1.0, 20.0, 80.0] {
                let p = profile(model, ll, 0.3, 0.3);
                for dev in [device(true), device(false)] {
                    let r = recommend(&p, &p, p.model, &dev, Picos::from_micros(10));
                    assert!(!r.rationale.is_empty());
                }
            }
        }
    }
}
